//! Umbrella crate for the DataPrism reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. The actual
//! functionality lives in the member crates:
//!
//! - [`dp_frame`] — columnar dataframe substrate
//! - [`dp_stats`] — statistics, pattern learning, causal discovery
//! - [`dp_ml`] — from-scratch ML models and fairness metrics
//! - [`dataprism`] — the paper's contribution: PVT framework and
//!   intervention algorithms
//! - [`dp_scenarios`] — case studies and synthetic pipelines

pub use dataprism;
pub use dp_frame;
pub use dp_ml;
pub use dp_scenarios;
pub use dp_stats;
