//! The paper's running example, end to end: the biased discount
//! classifier of Example 1 / §4.1, on the *exact* tuples of
//! Figures 2 and 3.
//!
//! The walkthrough in §4.1: DataPrism discovers the discriminative
//! profiles of Fig 5, builds the PVT–attribute graph of Fig 4 (where
//! `high_expenditure` is the hub attribute), and intervenes first on
//! the PVTs attached to it — the Indep(race, high_expenditure) and
//! Selectivity(gender = F ∧ high_expenditure = yes) triplets — until
//! the trained classifier's disparate impact drops below the
//! threshold.
//!
//! Run: `cargo run --release --example paper_example1`
//!
//! Pass `--trace` to collect the structured event stream of the run
//! and print the decision log plus the run-metrics summary.

use dataprism::discovery::discriminative_pvts;
use dataprism::explain_greedy;
use dataprism::graph::PvtAttributeGraph;
use dataprism::{Event, TraceConfig};
use dp_scenarios::example1;

fn main() {
    let trace = std::env::args().any(|a| a == "--trace");
    let mut scenario = example1::scenario();
    if trace {
        scenario.config.trace = TraceConfig::Collect;
    }
    println!("People_fail (Fig 2):\n{}", scenario.d_fail);
    println!("People_pass (Fig 3):\n{}", scenario.d_pass);

    let fail_score = scenario.system.malfunction(&scenario.d_fail);
    let pass_score = scenario.system.malfunction(&scenario.d_pass);
    println!("malfunction(People_fail) = {fail_score:.3}  (paper: 0.75)");
    println!("malfunction(People_pass) = {pass_score:.3}  (paper: 0.15)\n");

    // Step 1 (§4.1): discriminative PVTs — Fig 5.
    let pvts = discriminative_pvts(
        &scenario.d_pass,
        &scenario.d_fail,
        &scenario.config.discovery,
    );
    println!("discriminative PVTs (Fig 5):");
    for pvt in &pvts {
        println!("  {}", pvt.profile);
    }

    // Step 2: the PVT–attribute graph — Fig 4.
    let graph = PvtAttributeGraph::new(&pvts);
    println!("\nattribute degrees (Fig 4):");
    for (attr, degree) in graph.attribute_degrees() {
        println!("  {attr}: {degree}");
    }

    // Steps 3–6: greedy interventions + Make-Minimal.
    let explanation = explain_greedy(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &scenario.config,
    )
    .expect("diagnosis runs");
    println!("\n{explanation}");
    println!(
        "matches the paper's expected causes (Indep/Selectivity on high_expenditure): {}",
        scenario.explains_ground_truth(&explanation)
    );

    if trace {
        println!(
            "\ntrace: {} events | run metrics: {}",
            explanation.trace_records.len(),
            explanation.metrics.summary_line()
        );
        for record in &explanation.trace_records {
            match &record.event {
                Event::GreedyPick {
                    pvt,
                    before,
                    after,
                    kept,
                } => println!(
                    "  pick PVT {pvt}: {before:.3} -> {after:.3} ({})",
                    if *kept { "kept" } else { "reverted" }
                ),
                Event::MinimalityDrop { pvt } => {
                    println!("  make-minimal dropped PVT {pvt}");
                }
                _ => {}
            }
        }
    }
}
