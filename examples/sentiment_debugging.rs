//! The §5.1 Sentiment Prediction case study, end to end.
//!
//! A frozen sentiment model (lexicon + naive Bayes, the repo's flair
//! substitute) scores IMDb-like reviews almost perfectly but scores
//! 1.0 malfunction on twitter-like data, because the twitter labels
//! are `{0, 4}` where the system expects `{-1, +1}`. DataPrism-GRD
//! exposes the Domain profile of `target` and the mapping fix in a
//! couple of interventions.
//!
//! The example also writes both datasets (and the repaired one) as
//! CSV files under a temp directory so you can inspect them.
//!
//! Run: `cargo run --release --example sentiment_debugging`

use dataprism::explain_greedy;
use dp_frame::csv::write_csv_path;
use dp_scenarios::sentiment;

fn main() {
    let mut scenario = sentiment::scenario_with_size(800, 7);
    println!("scenario: {scenario:?}\n");

    let pass_score = scenario.system.malfunction(&scenario.d_pass);
    let fail_score = scenario.system.malfunction(&scenario.d_fail);
    println!("malfunction on IMDb-like data:    {pass_score:.3}  (paper: 0.09)");
    println!("malfunction on twitter-like data: {fail_score:.3}  (paper: 1.00)\n");

    let explanation = explain_greedy(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &scenario.config,
    )
    .expect("diagnosis runs");
    println!("{explanation}");
    println!(
        "ground truth found: {}",
        scenario.explains_ground_truth(&explanation)
    );

    let dir = std::env::temp_dir().join("dataprism_sentiment");
    std::fs::create_dir_all(&dir).expect("temp dir");
    write_csv_path(&scenario.d_pass, dir.join("imdb_like.csv")).expect("write pass");
    write_csv_path(&scenario.d_fail, dir.join("twitter_like.csv")).expect("write fail");
    write_csv_path(&explanation.repaired, dir.join("twitter_repaired.csv"))
        .expect("write repaired");
    println!("\ndatasets written to {}", dir.display());
}
