//! Quickstart: diagnose why a system fails on one dataset but not
//! another, in ~40 lines.
//!
//! The "system" here is a label validator that assumes sentiment
//! labels are `-1`/`1`. The failing dataset encodes them as `0`/`4`
//! (the paper's Sentiment140 convention). DataPrism discovers the
//! discriminative profiles, intervenes, and reports the Domain
//! profile of `target` as the causally verified root cause, with the
//! order-preserving value mapping as the fix.
//!
//! Run: `cargo run --example quickstart`
//!
//! Pass `--trace` to collect the run's structured event stream and
//! print the run-metrics summary alongside the explanation.

use dataprism::{explain_greedy, PrismConfig, TraceConfig};
use dp_frame::{Column, DType, DataFrame};

fn labels(values: &[&str]) -> Column {
    Column::from_strings(
        "target",
        DType::Categorical,
        values.iter().map(|v| Some(v.to_string())).collect(),
    )
}

fn main() {
    // A black-box system: any closure DataFrame -> [0,1] works.
    let mut system = |df: &DataFrame| {
        let col = df.column("target").expect("target column");
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    };

    let d_pass = DataFrame::from_columns(vec![labels(&["-1", "1", "1", "-1", "1", "-1"])])
        .expect("valid frame");
    let d_fail = DataFrame::from_columns(vec![labels(&["0", "4", "4", "0", "4", "0"])])
        .expect("valid frame");

    let mut config = PrismConfig::with_threshold(0.2);
    if std::env::args().any(|a| a == "--trace") {
        config.trace = TraceConfig::Collect;
    }
    let explanation =
        explain_greedy(&mut system, &d_fail, &d_pass, &config).expect("diagnosis runs");

    println!("{explanation}");
    println!("repaired dataset:\n{}", explanation.repaired);
    if !explanation.trace_records.is_empty() {
        println!(
            "trace: {} events | run metrics: {}",
            explanation.trace_records.len(),
            explanation.metrics.summary_line()
        );
    }
    assert!(explanation.resolved);
    assert!(explanation.contains_template("domain_cat(target)"));
}
