//! The §5.1 Income Prediction case study: diagnosing unfairness.
//!
//! A Random Forest pipeline (sensitive attributes dropped before
//! training, like Anita's pipeline in the paper's Example 1) still
//! produces biased predictions on the failing dataset, because the
//! data itself carries a planted `sex → target` dependence and an
//! occupation proxy. The malfunction score is the normalized
//! disparate impact. Both DataPrism algorithms expose an `Indep`
//! profile whose shuffle transformation breaks the dependence.
//!
//! Run: `cargo run --release --example income_fairness`
//!
//! Pass `--trace` to collect the GT run's structured event stream and
//! print the reconstructed bisection search tree plus run metrics.

use dataprism::{explain_greedy, explain_group_test, PartitionStrategy, SearchTree, TraceConfig};
use dp_scenarios::income;

fn main() {
    let trace = std::env::args().any(|a| a == "--trace");
    let mut scenario = income::scenario_with_size(700, 13);
    let pass_score = scenario.system.malfunction(&scenario.d_pass);
    let fail_score = scenario.system.malfunction(&scenario.d_fail);
    println!("normalized disparate impact, unbiased census: {pass_score:.3} (paper: 0.195)");
    println!("normalized disparate impact, biased census:   {fail_score:.3} (paper: 0.580)\n");

    println!("--- DataPrism-GRD (Algorithm 1) ---");
    let greedy = explain_greedy(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &scenario.config,
    )
    .expect("diagnosis runs");
    println!("{greedy}");
    println!(
        "ground truth found: {} ({} interventions; paper: 1)\n",
        scenario.explains_ground_truth(&greedy),
        greedy.interventions
    );

    println!("--- DataPrism-GT (Algorithms 2-3) ---");
    let mut scenario2 = income::scenario_with_size(700, 13);
    if trace {
        scenario2.config.trace = TraceConfig::Collect;
    }
    let gt = explain_group_test(
        scenario2.system.as_mut(),
        &scenario2.d_fail,
        &scenario2.d_pass,
        &scenario2.config,
        PartitionStrategy::MinBisection,
    )
    .expect("A3 holds on the income study");
    println!("{gt}");
    println!(
        "ground truth found: {} ({} interventions; paper: 8)",
        scenario2.explains_ground_truth(&gt),
        gt.interventions
    );

    if trace {
        let tree = SearchTree::from_records(&gt.trace_records);
        println!("\nbisection search tree ({} nodes):", tree.node_count());
        print!("{}", tree.render_text(true));
        println!("run metrics: {}", gt.metrics.summary_line());
    }
}
