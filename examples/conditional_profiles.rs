//! The §3 conditional-profiles extension in action: diagnosing a
//! *partial* unit corruption that only affects one site's records.
//!
//! Hospital A reports heights in centimeters, hospital B switched to
//! inches. A global `Domain(height)` profile sees only a 50%
//! violation and its global rescale would distort hospital A's
//! correct values; the conditional profile
//! `⟨site = B ⟹ Domain(height, [150, 195])⟩` captures the slice
//! exactly and its row-scoped transformation repairs only hospital
//! B's rows.
//!
//! Run: `cargo run --release --example conditional_profiles`

use dataprism::{explain_greedy, DiscoveryConfig, PrismConfig};
use dp_frame::{Column, DType, DataFrame};

fn build(n: usize, inches_for_b: bool) -> DataFrame {
    let mut site = Vec::new();
    let mut height = Vec::new();
    let mut weight = Vec::new();
    for i in 0..n {
        let cm = 155.0 + (i % 40) as f64;
        if i % 2 == 0 {
            site.push(Some("A".to_string()));
            height.push(Some(cm));
        } else {
            site.push(Some("B".to_string()));
            height.push(Some(if inches_for_b { cm / 2.54 } else { cm }));
        }
        weight.push(Some(60.0 + (i % 30) as f64));
    }
    DataFrame::from_columns(vec![
        Column::from_strings("site", DType::Categorical, site),
        Column::from_floats("height", height),
        Column::from_floats("weight", weight),
    ])
    .unwrap()
}

fn main() {
    let d_pass = build(200, false);
    let d_fail = build(200, true);

    // The system: BMI-based screening that mistrusts implausible
    // heights. Malfunction = fraction of records it must reject.
    let mut system = |df: &DataFrame| {
        let height = df.column("height").unwrap();
        let rejected = height
            .f64_values()
            .iter()
            .filter(|(_, h)| !(100.0..=230.0).contains(h))
            .count();
        rejected as f64 / df.n_rows().max(1) as f64
    };

    let config = PrismConfig {
        threshold: 0.05,
        discovery: DiscoveryConfig {
            conditional_domains_on: Some("site".to_string()),
            ..DiscoveryConfig::default()
        },
        ..Default::default()
    };

    let explanation =
        explain_greedy(&mut system, &d_fail, &d_pass, &config).expect("diagnosis runs");
    println!("{explanation}");

    // Show that hospital A's records were untouched by the repair.
    let site = explanation.repaired.column("site").unwrap();
    let before = d_fail.column("height").unwrap();
    let after = explanation.repaired.column("height").unwrap();
    let mut a_unchanged = true;
    for i in 0..explanation.repaired.n_rows() {
        if site.get(i).to_string() == "A" && (before.get(i).as_f64() != after.get(i).as_f64()) {
            a_unchanged = false;
        }
    }
    println!(
        "hospital A rows untouched by the fix: {}",
        if a_unchanged {
            "yes"
        } else {
            "no (a global repair was chosen)"
        }
    );
}
