//! Build your own diagnosis problem: plant corruptions, choose a
//! (possibly conjunctive/disjunctive) root cause, and watch all five
//! techniques race.
//!
//! The pipeline here has 24 discriminative PVTs over 12 attributes;
//! the cause is the conjunction of PVTs 0 and 1 (a domain shift on
//! `a0` *and* missing values on `a1` must both be repaired).
//!
//! Note: several PVTs share attributes, so an algorithm may resolve
//! the malfunction through *different* PVT ids whose transformations
//! have the same effect (the paper's footnote 1: altering an
//! attribute w.r.t. one PVT passively repairs other PVTs on it). The
//! `cause?` column checks the planted ids specifically, so a `false`
//! next to `resolved = true` is exactly that aliasing.
//!
//! Run: `cargo run --release --example synthetic_playground`

use dataprism::baselines::anchor::{explain_anchor, AnchorConfig};
use dataprism::baselines::bugdoc::explain_bugdoc;
use dataprism::{explain_greedy_with_pvts, explain_group_test_with_pvts, PartitionStrategy};
use dp_scenarios::synthetic::{build, Plant, PlantKind, SyntheticSpec};

fn main() {
    let mut plants = vec![
        Plant {
            attr: 0,
            kind: PlantKind::Domain { severity: 1.0 },
        },
        Plant {
            attr: 1,
            kind: PlantKind::Missing { severity: 0.9 },
        },
    ];
    for i in 2..24 {
        plants.push(Plant {
            attr: i % 12,
            kind: if i % 2 == 0 {
                PlantKind::Domain { severity: 0.3 }
            } else {
                PlantKind::Missing { severity: 0.3 }
            },
        });
    }
    let spec = SyntheticSpec {
        n_rows: 150,
        n_attributes: 12,
        plants,
        cause: vec![vec![0, 1]],
        seed: 99,
    };

    println!("planted cause: fix PVT 0 (domain of a0) AND PVT 1 (missing in a1)\n");
    let header = format!(
        "{:<16} {:>13} {:>9} {:>13} {:>6}",
        "technique", "interventions", "resolved", "explanation", "cause?"
    );
    println!("{header}");

    let report = |name: &str, result: dataprism::Result<dataprism::Explanation>, covers: bool| {
        match result {
            Ok(exp) => println!(
                "{:<16} {:>13} {:>9} {:>13} {:>6}",
                name,
                exp.interventions,
                exp.resolved,
                format!("{:?}", exp.pvt_ids()),
                covers
            ),
            Err(e) => println!("{name:<16} {e}"),
        }
    };

    let mut s = build(&spec);
    let r = explain_greedy_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
    );
    let covers = r
        .as_ref()
        .map(|e| s.covers_cause(&e.pvt_ids()))
        .unwrap_or(false);
    report("DataPrism-GRD", r, covers);

    let mut s = build(&spec);
    let r = explain_group_test_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
        PartitionStrategy::MinBisection,
    );
    let covers = r
        .as_ref()
        .map(|e| s.covers_cause(&e.pvt_ids()))
        .unwrap_or(false);
    report("DataPrism-GT", r, covers);

    let mut s = build(&spec);
    let r = explain_group_test_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
        PartitionStrategy::Random,
    );
    let covers = r
        .as_ref()
        .map(|e| s.covers_cause(&e.pvt_ids()))
        .unwrap_or(false);
    report("GrpTest", r, covers);

    let mut s = build(&spec);
    let r = explain_bugdoc(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        &s.pvts.clone(),
        &s.config,
    );
    let covers = r
        .as_ref()
        .map(|e| s.covers_cause(&e.pvt_ids()))
        .unwrap_or(false);
    report("BugDoc", r, covers);

    let mut s = build(&spec);
    let r = explain_anchor(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        &s.pvts.clone(),
        &s.config,
        &AnchorConfig::default(),
    );
    let covers = r
        .as_ref()
        .map(|e| s.covers_cause(&e.pvt_ids()))
        .unwrap_or(false);
    report("Anchor", r, covers);
}
