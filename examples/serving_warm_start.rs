//! Serving with a warm oracle cache: the `dp_serve` daemon
//! end-to-end, in one process.
//!
//! Starts the daemon on an ephemeral port, registers the income
//! scenario, and shows all three ways a diagnosis gets warm:
//!
//! 1. a **second request** against the same system namespace,
//! 2. a fresh namespace **warm-started from a JSONL trace** of a
//!    prior (here: in-process) run,
//! 3. a namespace **restored from a cache snapshot** of another.
//!
//! Every warm diagnosis is bit-identical to the cold one — same
//! `Explanation::digest` — it just re-evaluates the system less.
//!
//! Run with: `cargo run --release --example serving_warm_start`

use dataprism::{explain_greedy_parallel, TraceConfig};
use dp_scenarios::income;
use dp_serve::{field_u64, is_ok, Client, ServeConfig, Server};
use dp_trace::to_jsonl;

fn main() -> std::io::Result<()> {
    let server = Server::start(ServeConfig::default())?;
    println!("daemon listening on {}", server.local_addr());
    let mut client = Client::connect(server.local_addr())?;

    // 1. Register + diagnose twice: the second request is served warm
    //    from the server-resident namespace.
    client.register("income", "income", None, None)?;
    let cold = client.diagnose("income", "greedy", None)?;
    let warm = client.diagnose("income", "greedy", None)?;
    assert!(is_ok(&cold) && is_ok(&warm));
    let digest = field_u64(&cold, "digest").unwrap();
    assert_eq!(field_u64(&warm, "digest"), Some(digest));
    println!(
        "cold:  digest {digest:#018x}, {} cache misses",
        field_u64(&cold, "cache_misses").unwrap()
    );
    println!(
        "warm:  digest {:#018x}, {} cache misses, {} warm hits",
        field_u64(&warm, "digest").unwrap(),
        field_u64(&warm, "cache_misses").unwrap(),
        field_u64(&warm, "warm_hits").unwrap()
    );

    // 2. Trace-warm a fresh namespace: replay a prior run's JSONL
    //    trace (every charged query carries fingerprint + score in
    //    exact encodings), then diagnose — warm on the *first*
    //    request.
    let scenario = income::scenario_with_size(300, 7);
    let mut config = scenario.config.clone();
    config.trace = TraceConfig::Collect;
    let traced = explain_greedy_parallel(
        scenario.factory.as_ref(),
        &scenario.d_fail,
        &scenario.d_pass,
        &config,
    )
    .expect("income resolves");
    client.register("income-replica", "income", None, None)?;
    let loaded = client.warm("income-replica", &to_jsonl(&traced.trace_records))?;
    let first = client.diagnose("income-replica", "greedy", None)?;
    assert_eq!(field_u64(&first, "digest"), Some(digest));
    println!(
        "trace: {} spans replayed, first diagnosis already {} warm hits, digest identical",
        field_u64(&loaded, "spans_loaded").unwrap(),
        field_u64(&first, "warm_hits").unwrap()
    );

    // 3. Snapshot one namespace, restore into another.
    let snapshot = client.snapshot("income")?;
    client.register("income-restored", "income", None, None)?;
    client.restore("income-restored", &snapshot)?;
    let restored = client.diagnose("income-restored", "greedy", None)?;
    assert_eq!(field_u64(&restored, "digest"), Some(digest));
    println!(
        "snap:  restored namespace served {} warm hits, digest identical",
        field_u64(&restored, "warm_hits").unwrap()
    );

    client.shutdown()?;
    server.join();
    println!("daemon drained and shut down cleanly");
    Ok(())
}
