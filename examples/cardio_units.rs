//! The §5.1 Cardiovascular case study: a unit mismatch and a failed
//! assumption.
//!
//! The pipeline assumes heights in centimeters; the failing dataset
//! reports them in inches, so the cleaning stage clamps every height
//! and the derived BMI — the classifier's main signal — is destroyed.
//! Recall collapses. DataPrism-GRD repairs it with one intervention:
//! the monotonic linear rescale attached to the `Domain` profile of
//! `height` (Fig 1 row 2).
//!
//! Group testing, however, is **not applicable** here: the failing
//! dataset also differs in its `ap_hi ↔ ap_lo` correlation, and the
//! noise transformation attached to that `Indep` profile pushes
//! blood-pressure readings outside the medically plausible range,
//! aborting the pipeline. Composing all candidate transformations
//! therefore *raises* the malfunction — assumption A3 is violated,
//! and `explain_group_test` reports it instead of looping (the "NA"
//! cells of the paper's Fig 7).
//!
//! Run: `cargo run --release --example cardio_units`

use dataprism::{explain_greedy, explain_group_test, PartitionStrategy, PrismError};
use dp_scenarios::cardio;

fn main() {
    let mut scenario = cardio::scenario_with_size(800, 21);
    let pass_score = scenario.system.malfunction(&scenario.d_pass);
    let fail_score = scenario.system.malfunction(&scenario.d_fail);
    println!("1 - recall with cm heights:   {pass_score:.3} (paper: 0.29)");
    println!("1 - recall with inch heights: {fail_score:.3} (paper: 0.71)\n");

    println!("--- DataPrism-GRD ---");
    let greedy = explain_greedy(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &scenario.config,
    )
    .expect("diagnosis runs");
    println!("{greedy}");
    println!(
        "ground truth found: {} ({} interventions; paper: 1)\n",
        scenario.explains_ground_truth(&greedy),
        greedy.interventions
    );

    println!("--- DataPrism-GT ---");
    let mut scenario2 = cardio::scenario_with_size(800, 21);
    match explain_group_test(
        scenario2.system.as_mut(),
        &scenario2.d_fail,
        &scenario2.d_pass,
        &scenario2.config,
        PartitionStrategy::MinBisection,
    ) {
        Err(PrismError::AssumptionViolated(msg)) => {
            println!("not applicable, as in the paper's Fig 7 (\"NA\"):\n  {msg}");
        }
        Ok(exp) => println!("unexpectedly applicable: {exp}"),
        Err(e) => println!("error: {e}"),
    }
}
