//! Example 2 of the paper — the EZGo toll-batch timeout — end to end,
//! including a full markdown diagnosis report.
//!
//! The EZGo batch processor reserves one hour per 1000 vehicles; an
//! external OCR is pathologically slow on black plates photographed
//! in low light, so a batch skewed toward that combination overruns
//! the budget. DataPrism pins the **Selectivity** profile of the
//! pathological slice and re-balances it (Fig 1 row 6).
//!
//! Run: `cargo run --release --example ezgo_timeout`

use dataprism::explain_greedy;
use dataprism::report::markdown_report;
use dp_scenarios::ezgo;

fn main() {
    let mut scenario = ezgo::scenario_with_size(1000, 3);
    let pass_score = scenario.system.malfunction(&scenario.d_pass);
    let fail_score = scenario.system.malfunction(&scenario.d_fail);
    println!("budget overrun, normal batch: {pass_score:.3}");
    println!("budget overrun, skewed batch: {fail_score:.3}\n");

    let explanation = explain_greedy(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &scenario.config,
    )
    .expect("diagnosis runs");

    let report = markdown_report(
        &explanation,
        &scenario.d_pass,
        &scenario.d_fail,
        scenario.config.threshold,
        &scenario.config.discovery,
    );
    println!("{report}");
    println!(
        "pathological slice blamed: {}",
        scenario.explains_ground_truth(&explanation)
    );
}
