#!/usr/bin/env python3
"""Line-coverage ratchet gate for the analysis crates.

Reads a `cargo llvm-cov --json` export, computes the aggregate line
coverage over files under `crates/core/src/` and `crates/lint/src/`,
and compares it against `ci/coverage-baseline.txt`:

- below the baseline -> exit 1 (coverage regressed; add tests or,
  if lines were deliberately removed, justify lowering the baseline
  in review);
- above the baseline by more than the slack -> exit 0 but print a
  reminder to ratchet the baseline up, so gains are locked in.

Usage: check_coverage.py <coverage.json> [baseline-file]
"""

import json
import sys

SLACK = 2.0  # points above baseline before we nag to ratchet
GATED_PREFIXES = ("crates/core/src/", "crates/lint/src/")


def main() -> int:
    export_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) > 2 else "ci/coverage-baseline.txt"
    with open(baseline_path, encoding="utf-8") as f:
        baseline = float(f.read().strip())
    with open(export_path, encoding="utf-8") as f:
        export = json.load(f)

    covered = 0
    total = 0
    for datum in export["data"]:
        for file_cov in datum["files"]:
            if not any(p in file_cov["filename"] for p in GATED_PREFIXES):
                continue
            lines = file_cov["summary"]["lines"]
            covered += lines["covered"]
            total += lines["count"]

    if total == 0:
        print(f"no files under {GATED_PREFIXES} in {export_path}; wrong export?")
        return 1

    percent = 100.0 * covered / total
    gated = " + ".join(p.rstrip("/").rsplit("/src", 1)[0] for p in GATED_PREFIXES)
    print(f"{gated} line coverage: {percent:.2f}% ({covered}/{total} lines)")
    print(f"baseline (ci/coverage-baseline.txt): {baseline:.2f}%")

    if percent < baseline:
        print(f"FAIL: coverage dropped below the {baseline:.2f}% ratchet")
        return 1
    if percent > baseline + SLACK:
        print(
            f"note: coverage exceeds the baseline by more than {SLACK} points; "
            f"consider ratcheting ci/coverage-baseline.txt up to {percent:.1f}"
        )
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
