#!/usr/bin/env python3
"""Line-coverage ratchet gate for the analysis crates.

Computes the aggregate line coverage over files under
`crates/core/src/`, `crates/lint/src/`, `crates/frame/src/`,
`crates/trace/src/`, `crates/serve/src/`, `crates/stats/src/`, and
`crates/monitor/src/` from
a `cargo llvm-cov --json` export and compares it against the committed
`ci/coverage-baseline.txt` — the single source of truth for the
ratchet; there is no built-in fallback value:

- below the baseline -> exit 1 (coverage regressed; add tests or,
  if lines were deliberately removed, justify lowering the baseline
  in review);
- above the baseline by more than the slack -> exit 0 but print a
  reminder to ratchet the baseline up, so gains are locked in.

Usage: check_coverage.py [coverage.json] [baseline-file]

With no export path the script runs the instrumented suite itself via
`cargo llvm-cov`, and fails with an explicit message when the tool is
not installed — it never skips the gate just because the machine
can't measure.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

SLACK = 2.0  # points above baseline before we nag to ratchet
GATED_PREFIXES = (
    "crates/core/src/",
    "crates/lint/src/",
    "crates/frame/src/",
    "crates/trace/src/",
    "crates/serve/src/",
    "crates/stats/src/",
    "crates/monitor/src/",
)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COV_COMMAND = [
    "cargo",
    "llvm-cov",
    "test",
    "-p",
    "dataprism",
    "-p",
    "dp-lint",
    "-p",
    "dp-frame",
    "-p",
    "dp-trace",
    "-p",
    "dp-serve",
    "-p",
    "dp-stats",
    "-p",
    "dp-monitor",
    "-p",
    "dataprism-suite",
    "--json",
]


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def generate_export() -> str:
    """Run the instrumented suite, returning the export path."""
    if shutil.which("cargo") is None:
        sys.exit(fail("cargo not found on PATH; cannot measure coverage"))
    probe = subprocess.run(
        ["cargo", "llvm-cov", "--version"],
        capture_output=True,
        check=False,
    )
    if probe.returncode != 0:
        sys.exit(
            fail(
                "cargo-llvm-cov is not installed; the coverage ratchet "
                "cannot run. Install it (cargo install cargo-llvm-cov "
                "+ rustup component add llvm-tools-preview) or pass a "
                "pre-built coverage.json. Refusing to pass without a "
                "measurement."
            )
        )
    out_path = os.path.join(tempfile.mkdtemp(prefix="dp-cov-"), "coverage.json")
    print(f"running: {' '.join(COV_COMMAND)} --output-path {out_path}")
    result = subprocess.run(
        COV_COMMAND + ["--output-path", out_path],
        cwd=REPO_ROOT,
        check=False,
    )
    if result.returncode != 0:
        sys.exit(fail(f"cargo llvm-cov exited {result.returncode}"))
    return out_path


def main() -> int:
    export_path = sys.argv[1] if len(sys.argv) > 1 else generate_export()
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(REPO_ROOT, "ci", "coverage-baseline.txt")
    )

    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = float(f.read().strip())
    except OSError as e:
        return fail(f"cannot read baseline {baseline_path}: {e}")
    except ValueError:
        return fail(f"{baseline_path} must hold a single percentage")
    try:
        with open(export_path, encoding="utf-8") as f:
            export = json.load(f)
    except OSError as e:
        return fail(f"cannot read coverage export {export_path}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{export_path} is not a cargo llvm-cov JSON export: {e}")

    covered = 0
    total = 0
    for datum in export.get("data", []):
        for file_cov in datum["files"]:
            if not any(p in file_cov["filename"] for p in GATED_PREFIXES):
                continue
            lines = file_cov["summary"]["lines"]
            covered += lines["covered"]
            total += lines["count"]

    if total == 0:
        return fail(f"no files under {GATED_PREFIXES} in {export_path}; wrong export?")

    percent = 100.0 * covered / total
    gated = " + ".join(p.rstrip("/").rsplit("/src", 1)[0] for p in GATED_PREFIXES)
    print(f"{gated} line coverage: {percent:.2f}% ({covered}/{total} lines)")
    print(f"baseline ({baseline_path}): {baseline:.2f}%")

    if percent < baseline:
        return fail(f"coverage dropped below the {baseline:.2f}% ratchet")
    if percent > baseline + SLACK:
        print(
            f"note: coverage exceeds the baseline by more than {SLACK} points; "
            f"consider ratcheting ci/coverage-baseline.txt up to {percent:.1f}"
        )
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
