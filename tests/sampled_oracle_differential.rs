//! Differential suite for the confidence-bounded sampled oracle.
//!
//! The contract under test: `PrismConfig::oracle_sampling` is an
//! **observation-preserving** optimization. For every scenario, both
//! algorithms (GRD/GT), and every thread count, a run under
//! `OracleSampling::Bounded` produces an explanation bit-for-bit
//! identical to `OracleSampling::Off` — same PVTs, scores, trace,
//! intervention count, and repaired-dataset fingerprint. Only the
//! cache/metrics counters may differ (a settled sampled decision is
//! neither a hit nor a miss).
//!
//! Targeted tests pin the decision procedure itself: confident FAILs
//! settle on a stratified sample without touching the full dataset,
//! verdicts near the threshold escalate (the Hoeffding band refuses
//! to decide the boundary), and passing verdicts always escalate so
//! their exact score survives.

use dataprism::report::markdown_report;
use dataprism::{
    explain_greedy, explain_greedy_parallel, explain_group_test, explain_group_test_parallel,
    fingerprint, Explanation, Oracle, OracleSampling, ParOracle, PartitionStrategy, Result,
};
use dp_frame::{Column, DataFrame};
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn bounded() -> OracleSampling {
    OracleSampling::Bounded { confidence: 0.95 }
}

fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

/// Strip the runtime-dependent counter lines (see
/// `tests/parallel_conformance.rs`): sampling legitimately changes
/// hit/miss/settled counts, never anything else in the report.
fn normalize_report(report: &str) -> String {
    report
        .lines()
        .map(|line| {
            if line.starts_with("- oracle cache:") {
                "- oracle cache: <runtime-dependent counters>"
            } else if line.starts_with("- run metrics:") {
                "- run metrics: <runtime-dependent counters>"
            } else {
                line
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_identical(
    name: &str,
    cell: &str,
    reference: &Result<Explanation>,
    got: &Result<Explanation>,
) {
    match (reference, got) {
        (Ok(s), Ok(p)) => {
            assert_eq!(s.digest(), p.digest(), "{name}@{cell}: explanation digest");
            assert_eq!(s.pvt_ids(), p.pvt_ids(), "{name}@{cell}: explanation set");
            assert_eq!(
                s.interventions, p.interventions,
                "{name}@{cell}: intervention count"
            );
            assert_eq!(
                s.final_score.to_bits(),
                p.final_score.to_bits(),
                "{name}@{cell}: final score"
            );
            assert_eq!(s.trace, p.trace, "{name}@{cell}: trace");
            assert_eq!(
                fingerprint(&s.repaired),
                fingerprint(&p.repaired),
                "{name}@{cell}: repaired dataset"
            );
        }
        (Err(se), Err(pe)) => assert_eq!(se, pe, "{name}@{cell}: error value"),
        (s, p) => {
            panic!("{name}@{cell}: sampled and full runs disagree on success: {s:?} vs {p:?}")
        }
    }
}

#[test]
fn sampling_is_explanation_invariant_for_greedy() {
    for mut scenario in scenarios() {
        let reference = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
        );
        let mut serial_cfg = scenario.config.clone();
        serial_cfg.oracle_sampling = bounded();
        let sampled_serial = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &serial_cfg,
        );
        assert_identical(
            scenario.name,
            "grd/serial/bounded",
            &reference,
            &sampled_serial,
        );
        for threads in THREAD_COUNTS {
            for sampling in [OracleSampling::Off, bounded()] {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.oracle_sampling = sampling;
                let par = explain_greedy_parallel(
                    scenario.factory.as_ref(),
                    &scenario.d_fail,
                    &scenario.d_pass,
                    &config,
                );
                let cell = format!("grd/{threads}t/{sampling:?}");
                assert_identical(scenario.name, &cell, &reference, &par);
            }
        }
    }
}

#[test]
fn sampling_is_explanation_invariant_for_group_test() {
    for mut scenario in scenarios() {
        let reference = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::MinBisection,
        );
        let reference_report = reference.as_ref().ok().map(|exp| {
            normalize_report(&markdown_report(
                exp,
                &scenario.d_pass,
                &scenario.d_fail,
                scenario.config.threshold,
                &scenario.config.discovery,
            ))
        });
        let mut serial_cfg = scenario.config.clone();
        serial_cfg.oracle_sampling = bounded();
        let sampled_serial = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &serial_cfg,
            PartitionStrategy::MinBisection,
        );
        assert_identical(
            scenario.name,
            "gt/serial/bounded",
            &reference,
            &sampled_serial,
        );
        if let (Some(expected), Ok(exp)) = (&reference_report, &sampled_serial) {
            let got = normalize_report(&markdown_report(
                exp,
                &scenario.d_pass,
                &scenario.d_fail,
                serial_cfg.threshold,
                &serial_cfg.discovery,
            ));
            assert_eq!(
                expected, &got,
                "{}: sampled report must match modulo counter lines",
                scenario.name
            );
        }
        for threads in THREAD_COUNTS {
            for sampling in [OracleSampling::Off, bounded()] {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.oracle_sampling = sampling;
                let par = explain_group_test_parallel(
                    scenario.factory.as_ref(),
                    &scenario.d_fail,
                    &scenario.d_pass,
                    &config,
                    PartitionStrategy::MinBisection,
                );
                let cell = format!("gt/{threads}t/{sampling:?}");
                assert_identical(scenario.name, &cell, &reference, &par);
            }
        }
    }
}

/// `rows`-row frame with exactly `bad` flagged rows spread evenly
/// across the index range, so any stratified sample's flagged
/// fraction tracks `bad / rows` closely.
fn flagged_frame(rows: usize, bad: usize) -> DataFrame {
    let vals = (0..rows)
        .map(|i| Some((((i + 1) * bad / rows) > (i * bad / rows)) as i64))
        .collect();
    DataFrame::from_columns(vec![Column::from_ints("flag", vals)]).unwrap()
}

/// Malfunction = flagged fraction of the queried frame.
fn flagged_fraction(df: &DataFrame) -> f64 {
    let col = df.column("flag").unwrap();
    let flagged = (0..col.len())
        .filter(|&i| col.get(i) == dp_frame::Value::Int(1))
        .count();
    flagged as f64 / df.n_rows().max(1) as f64
}

#[test]
fn confident_fail_settles_on_a_sample() {
    // 90% flagged vs τ = 0.2: the very first 64-row probe puts the
    // estimate far outside the Hoeffding band, so the verdict settles
    // without ever scoring the full 4096 rows.
    let df = flagged_frame(4096, 3686);
    let mut evals: Vec<usize> = Vec::new();
    let mut system = |d: &DataFrame| {
        evals.push(d.n_rows());
        flagged_fraction(d)
    };
    let mut oracle = Oracle::new(&mut system, 0.2, 100).with_sampling(bounded(), 42);
    let (passes, score) = oracle.decide(&df);
    assert!(!passes, "90% flagged must fail at τ = 0.2");
    assert!(score.is_none(), "settled decisions carry no exact score");
    let m = oracle.run_metrics();
    assert_eq!(m.sampled_queries, 1);
    assert_eq!(m.escalations, 0);
    assert_eq!(m.rows_touched, 64, "one 64-row probe should suffice");
    assert_eq!(m.charged_queries, 1, "the act of asking is still charged");
    assert_eq!(m.cache_hits + m.cache_misses, 0, "no full evaluation");
    let span = oracle
        .last_sampled_query()
        .expect("settled decision recorded");
    assert_eq!(span.fingerprint, fingerprint(&df));
    assert_eq!(span.rows, 64);
    assert_eq!(span.total_rows, 4096);
    assert!(span.estimate > 0.2 + 0.169, "estimate clears the band");
    drop(oracle);
    assert_eq!(evals, vec![64], "the system only ever saw the sample");
}

#[test]
fn settled_verdicts_are_cached_per_fingerprint() {
    let df = flagged_frame(4096, 3686);
    let mut system = flagged_fraction;
    let mut oracle = Oracle::new(&mut system, 0.2, 100).with_sampling(bounded(), 42);
    let first = oracle.decide(&df);
    let second = oracle.decide(&df);
    assert_eq!(first, second);
    let m = oracle.run_metrics();
    assert_eq!(m.sampled_queries, 2, "both queries settled (and charged)");
    assert_eq!(m.charged_queries, 2);
    assert_eq!(
        m.rows_touched, 64,
        "the repeat re-used the verdict, scoring no rows"
    );
}

/// The boundary-case generator: flagged fractions inside the
/// confidence band of τ = 0.5 at every sample size, so sampling must
/// refuse to decide and escalate to a bit-exact full evaluation.
#[test]
fn boundary_scores_escalate_to_full_evaluation() {
    // ε(4096) = sqrt(ln(40)/8192) ≈ 0.0212: every fraction within
    // ~0.02 of τ sits inside the band even for a full-frame probe.
    for bad in [2048usize - 60, 2048, 2048 + 60] {
        let df = flagged_frame(4096, bad);
        let exact = bad as f64 / 4096.0;
        let mut system = flagged_fraction;
        let mut oracle = Oracle::new(&mut system, 0.5, 100).with_sampling(bounded(), 42);
        let (passes, score) = oracle.decide(&df);
        assert_eq!(passes, exact <= 0.5, "bad = {bad}");
        assert_eq!(score, Some(exact), "escalation returns the exact score");
        let m = oracle.run_metrics();
        assert_eq!(m.sampled_queries, 0, "bad = {bad}: nothing settled");
        assert_eq!(m.escalations, 1, "bad = {bad}: the boundary escalated");
        assert_eq!(m.cache_misses, 1, "the full evaluation really ran");
        assert!(m.rows_touched >= 64, "escalation still paid for its probes");
    }
}

#[test]
fn confident_pass_escalates_for_the_exact_score() {
    // 2% flagged vs τ = 0.5: the first probe is confidently on the
    // PASS side — but passing decisions feed exact scores downstream
    // (greedy composes them, Make-Minimal adopts them), so the
    // decision must escalate rather than settle.
    let df = flagged_frame(4096, 82);
    let mut system = flagged_fraction;
    let mut oracle = Oracle::new(&mut system, 0.5, 100).with_sampling(bounded(), 42);
    let (passes, score) = oracle.decide(&df);
    assert!(passes);
    assert_eq!(score, Some(82.0 / 4096.0));
    let m = oracle.run_metrics();
    assert_eq!(m.sampled_queries, 0);
    assert_eq!(m.escalations, 1);
}

#[test]
fn small_frames_never_sample() {
    // 100 rows < the 128-row eligibility floor: decide degenerates to
    // intervene + passes with no sampling bookkeeping at all.
    let df = flagged_frame(100, 90);
    let mut system = flagged_fraction;
    let mut oracle = Oracle::new(&mut system, 0.2, 100).with_sampling(bounded(), 42);
    let (passes, score) = oracle.decide(&df);
    assert!(!passes);
    assert_eq!(score, Some(0.9));
    let m = oracle.run_metrics();
    assert_eq!(
        (m.sampled_queries, m.escalations, m.rows_touched),
        (0, 0, 0)
    );
}

#[test]
fn known_scores_bypass_sampling() {
    // Once the exact score is cached (here: by a prior full
    // intervention), decide consumes the cache instead of sampling —
    // sampling an already-paid-for score could only lose information.
    let df = flagged_frame(4096, 3686);
    let mut system = flagged_fraction;
    let mut oracle = Oracle::new(&mut system, 0.2, 100).with_sampling(bounded(), 42);
    let full = oracle.intervene(&df);
    let (passes, score) = oracle.decide(&df);
    assert!(!passes);
    assert_eq!(score, Some(full));
    let m = oracle.run_metrics();
    assert_eq!(m.sampled_queries, 0);
    assert_eq!(m.cache_hits, 1, "decide consumed the cached score");
}

#[test]
fn sampling_off_is_plain_intervene() {
    let df = flagged_frame(4096, 3686);
    let mut system = flagged_fraction;
    let mut oracle = Oracle::new(&mut system, 0.2, 100);
    let (passes, score) = oracle.decide(&df);
    assert!(!passes);
    assert_eq!(score, Some(3686.0 / 4096.0));
    let m = oracle.run_metrics();
    assert_eq!(
        (m.sampled_queries, m.escalations, m.rows_touched),
        (0, 0, 0)
    );
    assert_eq!(m.cache_misses, 1);
}

#[test]
fn serial_and_parallel_deciders_sample_identically() {
    // The decider's sample stream is keyed by seed ^ fingerprint, so
    // the serial Oracle and a width-1 ParOracle must draw the same
    // probes, touch the same rows, and settle the same verdicts.
    let df = flagged_frame(4096, 3686);
    let mut system = flagged_fraction;
    let mut serial = Oracle::new(&mut system, 0.2, 100).with_sampling(bounded(), 42);
    let serial_out = serial.decide(&df);
    let serial_m = serial.run_metrics();

    let factory = || flagged_fraction;
    let mut par = ParOracle::new(&factory, 0.2, 100, 1).with_sampling(bounded(), 42);
    let par_out = dataprism::InterventionRuntime::decide(&mut par, &df);
    let par_m = dataprism::InterventionRuntime::run_metrics(&par);
    assert_eq!(serial_out, par_out);
    assert_eq!(serial_m.sampled_queries, par_m.sampled_queries);
    assert_eq!(serial_m.rows_touched, par_m.rows_touched);
    assert_eq!(
        serial.last_sampled_query(),
        dataprism::InterventionRuntime::last_sampled_query(&par)
    );
}
