//! Integration tests over the §5.2 / appendix D synthetic pipelines:
//! the intervention-complexity claims that Figs 8–9 visualize.

use dataprism::{explain_greedy_with_pvts, explain_group_test_with_pvts, PartitionStrategy};
use dp_scenarios::synthetic::{
    adversarial_rank, conjunctive_cause, disjunctive_cause, single_cause, toy_fig6,
};

#[test]
fn greedy_interventions_stay_flat_as_pvts_grow() {
    // Fig 9(b): with O1-O3 satisfied, GRD's intervention count does
    // not grow with the number of discriminative PVTs.
    let mut counts = Vec::new();
    for k in [10usize, 40, 120] {
        let mut s = single_cause(k.div_ceil(2), k, 5);
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .unwrap();
        assert!(exp.resolved);
        counts.push(exp.interventions);
    }
    assert!(
        counts.iter().all(|&c| c <= 5),
        "GRD must stay < 5 (paper Fig 9(b)): {counts:?}"
    );
}

#[test]
fn group_testing_interventions_grow_logarithmically() {
    // The paper's O(t log |X|) bound with t = 1.
    for (k, bound) in [(16usize, 14), (64, 20), (256, 26)] {
        let mut s = single_cause(k.div_ceil(2), k, 6);
        let exp = explain_group_test_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
            PartitionStrategy::MinBisection,
        )
        .unwrap();
        assert!(exp.resolved);
        assert!(
            exp.interventions <= bound,
            "k={k}: {} interventions exceeds the O(log) bound {bound}",
            exp.interventions
        );
    }
}

#[test]
fn conjunctive_causes_are_fully_recovered() {
    for size in [2usize, 5, 8] {
        let mut s = conjunctive_cause(16, 32, size, 7);
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .unwrap();
        assert!(exp.resolved, "size {size}");
        assert!(
            s.is_exact_cause(&exp.pvt_ids()),
            "size {size}: got {:?}",
            exp.pvt_ids()
        );
    }
}

#[test]
fn disjunctive_causes_yield_one_alternative() {
    for groups in [2usize, 4, 8] {
        let mut s = disjunctive_cause(16, 32, groups, 8);
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .unwrap();
        assert!(exp.resolved, "groups {groups}");
        assert_eq!(
            exp.pvts.len(),
            1,
            "minimality picks exactly one alternative, got {:?}",
            exp.pvt_ids()
        );
        assert!(s.covers_cause(&exp.pvt_ids()));
    }
}

#[test]
fn rank54_reproduces_the_sec52_gap() {
    // §5.2: the cause is benefit-ranked 54th → GRD needs exactly 54
    // interventions; GT needs O(log 54) (paper: 9).
    let mut s = adversarial_rank(54, 3);
    let greedy = explain_greedy_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
    )
    .unwrap();
    assert!(greedy.resolved);
    assert_eq!(greedy.interventions, 54);

    let mut s = adversarial_rank(54, 3);
    let gt = explain_group_test_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
        PartitionStrategy::MinBisection,
    )
    .unwrap();
    assert!(gt.resolved);
    assert!(
        gt.interventions <= 15,
        "GT should be ~9 (paper), got {}",
        gt.interventions
    );
}

#[test]
fn toy_fig6_explanations_are_valid_disjuncts() {
    for seed in 0..5 {
        for strategy in [PartitionStrategy::MinBisection, PartitionStrategy::Random] {
            let mut s = toy_fig6(seed);
            let exp = explain_group_test_with_pvts(
                &mut s.system,
                &s.d_fail,
                &s.d_pass,
                s.pvts.clone(),
                &s.config,
                strategy,
            )
            .unwrap();
            assert!(exp.resolved, "seed {seed} {strategy:?}");
            assert!(
                s.covers_cause(&exp.pvt_ids()),
                "seed {seed} {strategy:?}: {:?}",
                exp.pvt_ids()
            );
        }
    }
}

#[test]
fn repaired_synthetic_data_satisfies_cause_profiles() {
    let mut s = conjunctive_cause(10, 20, 3, 9);
    let exp = explain_greedy_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
    )
    .unwrap();
    for pvt in &exp.pvts {
        assert!(
            pvt.violation(&exp.repaired) < 0.06,
            "repaired data still violates {}: {}",
            pvt.profile,
            pvt.violation(&exp.repaired)
        );
    }
}

#[test]
fn budget_exhaustion_is_a_typed_error() {
    // A budget too small to reach the (findable) cause: the algorithms
    // surface `BudgetExhausted` instead of quietly giving up.
    let mut s = dp_scenarios::synthetic::adversarial_rank(20, 3);
    s.config.max_interventions = 5; // cause is benefit-ranked 20th
    let err = explain_greedy_with_pvts(
        &mut s.system,
        &s.d_fail,
        &s.d_pass,
        s.pvts.clone(),
        &s.config,
    )
    .unwrap_err();
    match err {
        dataprism::PrismError::BudgetExhausted { used, best_score } => {
            assert!(used >= 5);
            assert!(best_score > s.config.threshold);
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
}
