//! Integration tests of the user-facing surfaces around a diagnosis:
//! the markdown report, CSV round-trips of scenario data, the
//! `DataPrism` facade, and the frame-description utilities — the
//! pieces a downstream user touches right after the algorithms.

use dataprism::DataPrism;
use dp_frame::csv::{read_csv, write_csv};
use dp_frame::describe::{describe, describe_table, sort_by, top_k, value_histogram};
use dp_scenarios::{example1, ezgo, sentiment};

/// Compare `actual` against the checked-in golden file
/// `tests/golden/<name>`; regenerate with `UPDATE_GOLDEN=1 cargo test`.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "report drifted from {path:?}; run with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn greedy_report_matches_golden_file() {
    // The running example of the paper's §1 is fully deterministic:
    // a serial diagnosis renders byte-identical markdown (including
    // the oracle cache-stats block) on every run.
    let mut scenario = example1::scenario();
    let prism = DataPrism::new(scenario.config.clone());
    let exp = prism
        .diagnose(scenario.system.as_mut(), &scenario.d_fail, &scenario.d_pass)
        .unwrap();
    let report = prism.report(&exp, &scenario.d_pass, &scenario.d_fail);
    assert!(report.contains("- oracle cache: **"));
    assert_golden("example1_greedy_report.md", &report);
}

#[test]
fn group_test_report_matches_golden_file() {
    let mut scenario = example1::scenario();
    let prism = DataPrism::new(scenario.config.clone());
    let exp = prism
        .diagnose_auto(scenario.system.as_mut(), &scenario.d_fail, &scenario.d_pass)
        .unwrap();
    let report = prism.report(&exp, &scenario.d_pass, &scenario.d_fail);
    assert_golden("example1_auto_report.md", &report);
}

#[test]
fn parallel_width_one_report_matches_serial_golden() {
    // num_threads = 1 on the parallel runtime materializes serially,
    // so even the cache counters (the only scheduling-dependent
    // output) must reproduce the serial golden file exactly.
    let scenario = example1::scenario();
    let mut config = scenario.config.clone();
    config.num_threads = 1;
    let prism = DataPrism::new(config);
    let exp = prism
        .diagnose_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
        )
        .unwrap();
    let report = prism.report(&exp, &scenario.d_pass, &scenario.d_fail);
    assert_golden("example1_greedy_report.md", &report);
}

#[test]
fn facade_report_covers_a_real_case_study() {
    let mut scenario = sentiment::scenario_with_size(300, 11);
    let prism = DataPrism::new(scenario.config.clone());
    let exp = prism
        .diagnose(scenario.system.as_mut(), &scenario.d_fail, &scenario.d_pass)
        .unwrap();
    assert!(exp.resolved);
    let report = prism.report(&exp, &scenario.d_pass, &scenario.d_fail);
    assert!(report.contains("# DataPrism diagnosis report"));
    assert!(report.contains("⟨Domain, target"));
    assert!(report.contains("**yes**"), "the cause row is flagged");
    assert!(report.contains("Intervention trace"));
}

#[test]
fn auto_strategy_resolves_case_studies() {
    let mut scenario = ezgo::scenario_with_size(600, 2);
    let prism = DataPrism::new(scenario.config.clone());
    let exp = prism
        .diagnose_auto(scenario.system.as_mut(), &scenario.d_fail, &scenario.d_pass)
        .unwrap();
    assert!(exp.resolved, "{exp}");
}

#[test]
fn scenario_data_roundtrips_through_csv() {
    let scenario = ezgo::scenario_with_size(120, 2);
    let mut buf = Vec::new();
    write_csv(&scenario.d_fail, &mut buf).unwrap();
    let back = read_csv(&buf[..]).unwrap();
    assert_eq!(back.n_rows(), scenario.d_fail.n_rows());
    assert_eq!(back.n_cols(), scenario.d_fail.n_cols());
    // Cell-level fidelity for a few sampled positions.
    for row in [0usize, 17, 119] {
        for col in ["has_toll_pass", "plate_color", "axles"] {
            assert_eq!(
                back.cell(row, col).unwrap().to_string(),
                scenario.d_fail.cell(row, col).unwrap().to_string(),
                "row {row} col {col}"
            );
        }
    }
}

#[test]
fn describe_utilities_work_on_scenario_frames() {
    let scenario = sentiment::scenario_with_size(150, 3);
    let summaries = describe(&scenario.d_fail);
    assert_eq!(summaries.len(), scenario.d_fail.n_cols());
    let target = summaries.iter().find(|s| s.name == "target").unwrap();
    assert_eq!(target.distinct, 2, "labels are {{0, 4}}");
    assert_eq!(target.nulls, 0);

    let table = describe_table(&scenario.d_fail);
    assert!(table.contains("target") && table.contains("retweets"));

    let sorted = sort_by(&scenario.d_fail, "retweets", true).unwrap();
    let first = sorted.cell(0, "retweets").unwrap().as_i64().unwrap();
    let last = sorted
        .cell(sorted.n_rows() - 1, "retweets")
        .unwrap()
        .as_i64()
        .unwrap();
    assert!(first >= last);

    let top = top_k(&scenario.d_fail, "retweets", 5).unwrap();
    assert_eq!(top.n_rows(), 5);
    assert_eq!(top.cell(0, "retweets").unwrap().as_i64().unwrap(), first);

    let hist = value_histogram(&scenario.d_fail, "target", 5).unwrap();
    assert!(hist.contains('0') && hist.contains('4'));
}
