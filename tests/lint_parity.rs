//! Parity and savings guarantees of the static lint pass (`dp_lint`).
//!
//! The contract under test, from two directions:
//!
//! 1. **Parity** — `Lint::Prune` never changes the final explanation.
//!    On discovery-produced candidate sets the Error rules never fire
//!    (a discriminative PVT has positive violation and coverage by
//!    construction), so pruning is a bit-identical no-op: same PVTs,
//!    same scores, same trace, same intervention count, same repaired
//!    dataset — on every bundled scenario, both algorithms (GRD/GT),
//!    and every thread count in {1, 2, 8}.
//! 2. **Savings** — on candidate sets that *do* contain provably
//!    futile PVTs (here: hand-built fixes that write an attribute
//!    disjoint from their profile, rule L2), pruning removes them
//!    before ranking and measurably reduces the charged oracle
//!    queries, while the explanation, scores, and repaired dataset
//!    stay identical.
//!
//! Degenerate inputs (empty candidate set, all candidates pruned)
//! must exit through the documented error paths, never panic.

use dataprism::report::markdown_report;
use dataprism::{
    explain_greedy, explain_greedy_parallel, explain_greedy_with_pvts, explain_group_test,
    explain_group_test_parallel, explain_group_test_with_pvts, fingerprint, Explanation, Lint,
    PartitionStrategy, PrismConfig, PrismError, Profile, Pvt, Result, Severity, Transform,
};
use dp_frame::{Column, DType, DataFrame};
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};
use std::collections::BTreeSet;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

/// Bit-level equality of two diagnosis outcomes: explanation set,
/// intervention count, score bits, resolution, trace, and repaired
/// fingerprint (cache counters excluded — scheduling-dependent).
fn assert_identical(name: &str, serial: &Result<Explanation>, other: &Result<Explanation>) {
    match (serial, other) {
        (Ok(s), Ok(p)) => {
            assert_eq!(s.pvt_ids(), p.pvt_ids(), "{name}: explanation set");
            assert_eq!(s.interventions, p.interventions, "{name}: interventions");
            assert_eq!(
                s.initial_score.to_bits(),
                p.initial_score.to_bits(),
                "{name}: initial score"
            );
            assert_eq!(
                s.final_score.to_bits(),
                p.final_score.to_bits(),
                "{name}: final score"
            );
            assert_eq!(s.resolved, p.resolved, "{name}: resolved flag");
            assert_eq!(s.trace, p.trace, "{name}: trace");
            assert_eq!(
                fingerprint(&s.repaired),
                fingerprint(&p.repaired),
                "{name}: repaired dataset"
            );
        }
        (Err(se), Err(pe)) => assert_eq!(se, pe, "{name}: error value"),
        (s, p) => panic!("{name}: outcomes disagree on success: {s:?} vs {p:?}"),
    }
}

#[test]
fn prune_is_bit_identical_on_every_scenario_grd() {
    for mut scenario in scenarios() {
        let mut off = scenario.config.clone();
        off.lint = Lint::Off;
        let baseline = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &off,
        );
        let mut prune = scenario.config.clone();
        prune.lint = Lint::Prune;
        let pruned = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &prune,
        );
        assert_identical(scenario.name, &baseline, &pruned);
        if let Ok(exp) = &pruned {
            assert!(
                exp.lint.analyzed,
                "{}: prune run was analyzed",
                scenario.name
            );
            assert!(
                exp.lint.pruned.is_empty(),
                "{}: nothing prunable",
                scenario.name
            );
            assert_eq!(exp.cache.lint_pruned, 0);
        }
        for threads in THREAD_COUNTS {
            let mut config = prune.clone();
            config.num_threads = threads;
            let par = explain_greedy_parallel(
                scenario.factory.as_ref(),
                &scenario.d_fail,
                &scenario.d_pass,
                &config,
            );
            assert_identical(scenario.name, &baseline, &par);
        }
    }
}

#[test]
fn prune_is_bit_identical_on_every_scenario_gt() {
    for mut scenario in scenarios() {
        let mut off = scenario.config.clone();
        off.lint = Lint::Off;
        let baseline = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &off,
            PartitionStrategy::MinBisection,
        );
        let mut prune = scenario.config.clone();
        prune.lint = Lint::Prune;
        let pruned = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &prune,
            PartitionStrategy::MinBisection,
        );
        assert_identical(scenario.name, &baseline, &pruned);
        for threads in THREAD_COUNTS {
            let mut config = prune.clone();
            config.num_threads = threads;
            let par = explain_group_test_parallel(
                scenario.factory.as_ref(),
                &scenario.d_fail,
                &scenario.d_pass,
                &config,
                PartitionStrategy::MinBisection,
            );
            assert_identical(scenario.name, &baseline, &par);
        }
    }
}

#[test]
fn discovery_candidates_never_trip_error_rules() {
    // The parity guarantee rests on this: a discriminative PVT has
    // positive violation and positive coverage on D_fail by
    // construction, so L1–L3 can never reach Error severity on
    // discovery output (L4/L5 emit at most Warn/Info).
    for mut scenario in scenarios() {
        let config = scenario.config.clone(); // default Lint::Report
        assert_eq!(config.lint, Lint::Report);
        if let Ok(exp) = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
        ) {
            assert!(exp.lint.analyzed, "{}: report mode analyzes", scenario.name);
            assert_eq!(
                exp.lint.count(Severity::Error),
                0,
                "{}: no Error-level diagnostics on discovery output: {:?}",
                scenario.name,
                exp.lint.diagnostics
            );
            assert!(exp.lint.pruned.is_empty(), "report mode never prunes");
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-built candidate sets: measurable savings and degenerate exits.
// ---------------------------------------------------------------------------

/// The miniature sentiment system: malfunction = fraction of labels
/// outside {-1, 1}. Only the "target" column matters.
fn label_system(df: &DataFrame) -> f64 {
    let col = df.column("target").unwrap();
    let bad = col
        .str_values()
        .iter()
        .filter(|(_, s)| *s != "-1" && *s != "1")
        .count();
    bad as f64 / df.n_rows().max(1) as f64
}

fn cat(name: &str, vals: &[&str]) -> Column {
    Column::from_strings(
        name,
        DType::Categorical,
        vals.iter().map(|s| Some(s.to_string())).collect(),
    )
}

fn floats(name: &str, vals: &[f64]) -> Column {
    Column::from_floats(name, vals.iter().map(|&v| Some(v)).collect())
}

fn pass_fail() -> (DataFrame, DataFrame) {
    let pass = DataFrame::from_columns(vec![
        cat("target", &["-1", "1", "1", "-1"]),
        floats("len", &[4.0, 9.0, 6.0, 11.0]),
        floats("aux", &[40.0, 90.0, 60.0, 110.0]),
    ])
    .unwrap();
    let fail = DataFrame::from_columns(vec![
        cat("target", &["0", "4", "4", "0"]),
        floats("len", &[3.0, 15.0, 7.0, 12.0]),
        floats("aux", &[30.0, 150.0, 70.0, 120.0]),
    ])
    .unwrap();
    (pass, fail)
}

/// One real cause plus three provably futile candidates. The junk
/// profiles sit on "len" (violated — every value is outside [0, 1])
/// and their fixes write "aux": rule L2 proves the fix cannot move the
/// profile parameter, so `Prune` drops them. Left in (`Off`), their
/// shared attributes make {len, aux} the highest-degree nodes of the
/// PVT–attribute graph, so greedy's O1 prioritization explores and
/// rejects every one of them — each a charged oracle query — before
/// reaching the real cause on degree-1 "target". Every transform is
/// deterministic, so RNG streams cannot perturb the comparison.
fn candidates_with_junk() -> Vec<Pvt> {
    let domain: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
    let junk = |id: usize, ub: f64| Pvt {
        id,
        profile: Profile::DomainNumeric {
            attr: "len".into(),
            lb: 0.0,
            ub: 1.0,
        },
        transform: Transform::Winsorize {
            attr: "aux".into(),
            lb: 0.0,
            ub,
        },
    };
    vec![
        junk(0, 50.0),
        junk(1, 60.0),
        junk(2, 65.0),
        Pvt {
            id: 3,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: domain.clone(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values: domain,
            },
        },
    ]
}

fn config_with(lint: Lint) -> PrismConfig {
    let mut config = PrismConfig::with_threshold(0.2);
    config.lint = lint;
    config
}

#[test]
fn prune_saves_oracle_queries_grd() {
    let (pass, fail) = pass_fail();
    let run = |lint: Lint| {
        let mut system = label_system;
        explain_greedy_with_pvts(
            &mut system,
            &fail,
            &pass,
            candidates_with_junk(),
            &config_with(lint),
        )
        .unwrap()
    };
    let off = run(Lint::Off);
    let pruned = run(Lint::Prune);
    // Same diagnosis...
    assert_eq!(off.pvt_ids(), pruned.pvt_ids());
    assert_eq!(pruned.pvt_ids(), vec![3], "only the real cause survives");
    assert_eq!(off.final_score.to_bits(), pruned.final_score.to_bits());
    assert!(off.resolved && pruned.resolved);
    assert_eq!(fingerprint(&off.repaired), fingerprint(&pruned.repaired));
    // ...for measurably fewer charged queries.
    assert!(
        pruned.interventions < off.interventions,
        "pruning must save oracle queries: {} (prune) vs {} (off)",
        pruned.interventions,
        off.interventions
    );
    assert_eq!(pruned.cache.lint_pruned, 3, "three junk candidates dropped");
    assert_eq!(pruned.lint.pruned, vec![0, 1, 2]);
    assert_eq!(off.cache.lint_pruned, 0);
    assert!(!off.lint.analyzed, "Lint::Off skips the analysis");
}

#[test]
fn prune_saves_oracle_queries_gt() {
    let (pass, fail) = pass_fail();
    let run = |lint: Lint| {
        let mut system = label_system;
        explain_group_test_with_pvts(
            &mut system,
            &fail,
            &pass,
            candidates_with_junk(),
            &config_with(lint),
            PartitionStrategy::MinBisection,
        )
        .unwrap()
    };
    let off = run(Lint::Off);
    let pruned = run(Lint::Prune);
    assert_eq!(off.pvt_ids(), pruned.pvt_ids());
    assert_eq!(pruned.pvt_ids(), vec![3]);
    assert_eq!(off.final_score.to_bits(), pruned.final_score.to_bits());
    assert!(off.resolved && pruned.resolved);
    assert_eq!(fingerprint(&off.repaired), fingerprint(&pruned.repaired));
    assert!(
        pruned.interventions < off.interventions,
        "pruning must shrink the GT search: {} (prune) vs {} (off)",
        pruned.interventions,
        off.interventions
    );
    assert_eq!(pruned.cache.lint_pruned, 3);
}

#[test]
fn pruned_savings_render_in_the_report() {
    let (pass, fail) = pass_fail();
    let mut system = label_system;
    let config = config_with(Lint::Prune);
    let exp = explain_greedy_with_pvts(&mut system, &fail, &pass, candidates_with_junk(), &config)
        .unwrap();
    let report = markdown_report(&exp, &pass, &fail, config.threshold, &config.discovery);
    assert!(report.contains("- lint: **"), "lint summary line");
    assert!(
        report.contains("3 candidates pruned before ranking"),
        "pruning savings surfaced: {report}"
    );
    assert!(report.contains("[L2/error]"), "the findings are itemized");
}

#[test]
fn all_error_candidate_set_exits_cleanly() {
    let (pass, fail) = pass_fail();
    let junk_only: Vec<Pvt> = candidates_with_junk().into_iter().take(3).collect();

    // Prune drops everything: both algorithms report the documented
    // no-candidates error rather than panicking.
    let mut system = label_system;
    let err = explain_greedy_with_pvts(
        &mut system,
        &fail,
        &pass,
        junk_only.clone(),
        &config_with(Lint::Prune),
    )
    .unwrap_err();
    assert_eq!(err, PrismError::NoDiscriminativePvts);
    let err = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        junk_only.clone(),
        &config_with(Lint::Prune),
        PartitionStrategy::MinBisection,
    )
    .unwrap_err();
    assert_eq!(err, PrismError::NoDiscriminativePvts);

    // Unpruned, GT's A3 check catches the same futility the hard way:
    // the full composition cannot reduce the malfunction.
    let err = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        junk_only,
        &config_with(Lint::Off),
        PartitionStrategy::MinBisection,
    )
    .unwrap_err();
    assert!(
        matches!(err, PrismError::AssumptionViolated(_)),
        "unpruned junk-only set must fail A3: {err:?}"
    );
}

#[test]
fn empty_candidate_set_exits_cleanly_under_every_mode() {
    let (pass, fail) = pass_fail();
    for lint in [Lint::Off, Lint::Report, Lint::Prune] {
        let mut system = label_system;
        let err =
            explain_greedy_with_pvts(&mut system, &fail, &pass, Vec::new(), &config_with(lint))
                .unwrap_err();
        assert_eq!(err, PrismError::NoDiscriminativePvts, "{lint:?}");
        let err = explain_group_test_with_pvts(
            &mut system,
            &fail,
            &pass,
            Vec::new(),
            &config_with(lint),
            PartitionStrategy::MinBisection,
        )
        .unwrap_err();
        assert_eq!(err, PrismError::NoDiscriminativePvts, "{lint:?}");
    }
}
