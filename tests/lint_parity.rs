//! Parity and savings guarantees of the static lint pass (`dp_lint`).
//!
//! The contract under test, from two directions:
//!
//! 1. **Parity** — `Lint::Prune` never changes the final explanation.
//!    On discovery-produced candidate sets the Error rules never fire
//!    (a discriminative PVT has positive violation and coverage by
//!    construction), so pruning is a bit-identical no-op: same PVTs,
//!    same scores, same trace, same intervention count, same repaired
//!    dataset — on every bundled scenario, both algorithms (GRD/GT),
//!    and every thread count in {1, 2, 8}.
//! 2. **Savings** — on candidate sets that *do* contain provably
//!    futile PVTs (here: hand-built fixes that write an attribute
//!    disjoint from their profile, rule L2), pruning removes them
//!    before ranking and measurably reduces the charged oracle
//!    queries, while the explanation, scores, and repaired dataset
//!    stay identical.
//!
//! Degenerate inputs (empty candidate set, all candidates pruned)
//! must exit through the documented error paths, never panic.

use dataprism::report::markdown_report;
use dataprism::{
    explain_greedy, explain_greedy_parallel, explain_greedy_with_pvts, explain_group_test,
    explain_group_test_parallel, explain_group_test_with_pvts, fingerprint, Explanation, Lint,
    PartitionStrategy, PrismConfig, PrismError, Profile, Pvt, Result, Severity, Transform,
};
use dp_frame::{Column, DType, DataFrame};
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};
use proptest::prelude::*;
use std::collections::BTreeSet;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

/// Bit-level equality of two diagnosis outcomes: explanation set,
/// intervention count, score bits, resolution, trace, and repaired
/// fingerprint (cache counters excluded — scheduling-dependent).
fn assert_identical(name: &str, serial: &Result<Explanation>, other: &Result<Explanation>) {
    match (serial, other) {
        (Ok(s), Ok(p)) => {
            assert_eq!(s.pvt_ids(), p.pvt_ids(), "{name}: explanation set");
            assert_eq!(s.interventions, p.interventions, "{name}: interventions");
            assert_eq!(
                s.initial_score.to_bits(),
                p.initial_score.to_bits(),
                "{name}: initial score"
            );
            assert_eq!(
                s.final_score.to_bits(),
                p.final_score.to_bits(),
                "{name}: final score"
            );
            assert_eq!(s.resolved, p.resolved, "{name}: resolved flag");
            assert_eq!(s.trace, p.trace, "{name}: trace");
            assert_eq!(
                fingerprint(&s.repaired),
                fingerprint(&p.repaired),
                "{name}: repaired dataset"
            );
        }
        (Err(se), Err(pe)) => assert_eq!(se, pe, "{name}: error value"),
        (s, p) => panic!("{name}: outcomes disagree on success: {s:?} vs {p:?}"),
    }
}

#[test]
fn prune_is_bit_identical_on_every_scenario_grd() {
    for mut scenario in scenarios() {
        let mut off = scenario.config.clone();
        off.lint = Lint::Off;
        let baseline = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &off,
        );
        let mut prune = scenario.config.clone();
        prune.lint = Lint::Prune;
        let pruned = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &prune,
        );
        assert_identical(scenario.name, &baseline, &pruned);
        if let Ok(exp) = &pruned {
            assert!(
                exp.lint.analyzed,
                "{}: prune run was analyzed",
                scenario.name
            );
            assert!(
                exp.lint.pruned.is_empty(),
                "{}: nothing prunable",
                scenario.name
            );
            assert_eq!(exp.cache.lint_pruned, 0);
        }
        for threads in THREAD_COUNTS {
            let mut config = prune.clone();
            config.num_threads = threads;
            let par = explain_greedy_parallel(
                scenario.factory.as_ref(),
                &scenario.d_fail,
                &scenario.d_pass,
                &config,
            );
            assert_identical(scenario.name, &baseline, &par);
        }
    }
}

#[test]
fn prune_is_bit_identical_on_every_scenario_gt() {
    for mut scenario in scenarios() {
        let mut off = scenario.config.clone();
        off.lint = Lint::Off;
        let baseline = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &off,
            PartitionStrategy::MinBisection,
        );
        let mut prune = scenario.config.clone();
        prune.lint = Lint::Prune;
        let pruned = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &prune,
            PartitionStrategy::MinBisection,
        );
        assert_identical(scenario.name, &baseline, &pruned);
        for threads in THREAD_COUNTS {
            let mut config = prune.clone();
            config.num_threads = threads;
            let par = explain_group_test_parallel(
                scenario.factory.as_ref(),
                &scenario.d_fail,
                &scenario.d_pass,
                &config,
                PartitionStrategy::MinBisection,
            );
            assert_identical(scenario.name, &baseline, &par);
        }
    }
}

#[test]
fn discovery_candidates_never_trip_error_rules() {
    // The parity guarantee rests on this: a discriminative PVT has
    // positive violation and positive coverage on D_fail by
    // construction, so L1–L3 can never reach Error severity on
    // discovery output (L4/L5 emit at most Warn/Info).
    for mut scenario in scenarios() {
        let config = scenario.config.clone(); // default Lint::Report
        assert_eq!(config.lint, Lint::Report);
        if let Ok(exp) = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
        ) {
            assert!(exp.lint.analyzed, "{}: report mode analyzes", scenario.name);
            assert_eq!(
                exp.lint.count(Severity::Error),
                0,
                "{}: no Error-level diagnostics on discovery output: {:?}",
                scenario.name,
                exp.lint.diagnostics
            );
            assert!(exp.lint.pruned.is_empty(), "report mode never prunes");
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-built candidate sets: measurable savings and degenerate exits.
// ---------------------------------------------------------------------------

/// The miniature sentiment system: malfunction = fraction of labels
/// outside {-1, 1}. Only the "target" column matters.
fn label_system(df: &DataFrame) -> f64 {
    let col = df.column("target").unwrap();
    let bad = col
        .str_values()
        .iter()
        .filter(|(_, s)| *s != "-1" && *s != "1")
        .count();
    bad as f64 / df.n_rows().max(1) as f64
}

fn cat(name: &str, vals: &[&str]) -> Column {
    Column::from_strings(
        name,
        DType::Categorical,
        vals.iter().map(|s| Some(s.to_string())).collect(),
    )
}

fn floats(name: &str, vals: &[f64]) -> Column {
    Column::from_floats(name, vals.iter().map(|&v| Some(v)).collect())
}

fn pass_fail() -> (DataFrame, DataFrame) {
    let pass = DataFrame::from_columns(vec![
        cat("target", &["-1", "1", "1", "-1"]),
        floats("len", &[4.0, 9.0, 6.0, 11.0]),
        floats("aux", &[40.0, 90.0, 60.0, 110.0]),
    ])
    .unwrap();
    let fail = DataFrame::from_columns(vec![
        cat("target", &["0", "4", "4", "0"]),
        floats("len", &[3.0, 15.0, 7.0, 12.0]),
        floats("aux", &[30.0, 150.0, 70.0, 120.0]),
    ])
    .unwrap();
    (pass, fail)
}

/// One real cause plus three provably futile candidates. The junk
/// profiles sit on "len" (violated — every value is outside [0, 1])
/// and their fixes write "aux": rule L2 proves the fix cannot move the
/// profile parameter, so `Prune` drops them. Left in (`Off`), their
/// shared attributes make {len, aux} the highest-degree nodes of the
/// PVT–attribute graph, so greedy's O1 prioritization explores and
/// rejects every one of them — each a charged oracle query — before
/// reaching the real cause on degree-1 "target". Every transform is
/// deterministic, so RNG streams cannot perturb the comparison.
fn candidates_with_junk() -> Vec<Pvt> {
    let domain: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
    let junk = |id: usize, ub: f64| Pvt {
        id,
        profile: Profile::DomainNumeric {
            attr: "len".into(),
            lb: 0.0,
            ub: 1.0,
        },
        transform: Transform::Winsorize {
            attr: "aux".into(),
            lb: 0.0,
            ub,
        },
    };
    vec![
        junk(0, 50.0),
        junk(1, 60.0),
        junk(2, 65.0),
        Pvt {
            id: 3,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: domain.clone(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values: domain,
            },
        },
    ]
}

fn config_with(lint: Lint) -> PrismConfig {
    let mut config = PrismConfig::with_threshold(0.2);
    config.lint = lint;
    config
}

#[test]
fn prune_saves_oracle_queries_grd() {
    let (pass, fail) = pass_fail();
    let run = |lint: Lint| {
        let mut system = label_system;
        explain_greedy_with_pvts(
            &mut system,
            &fail,
            &pass,
            candidates_with_junk(),
            &config_with(lint),
        )
        .unwrap()
    };
    let off = run(Lint::Off);
    let pruned = run(Lint::Prune);
    // Same diagnosis...
    assert_eq!(off.pvt_ids(), pruned.pvt_ids());
    assert_eq!(pruned.pvt_ids(), vec![3], "only the real cause survives");
    assert_eq!(off.final_score.to_bits(), pruned.final_score.to_bits());
    assert!(off.resolved && pruned.resolved);
    assert_eq!(fingerprint(&off.repaired), fingerprint(&pruned.repaired));
    // ...for measurably fewer charged queries.
    assert!(
        pruned.interventions < off.interventions,
        "pruning must save oracle queries: {} (prune) vs {} (off)",
        pruned.interventions,
        off.interventions
    );
    assert_eq!(pruned.cache.lint_pruned, 3, "three junk candidates dropped");
    assert_eq!(pruned.lint.pruned, vec![0, 1, 2]);
    assert_eq!(off.cache.lint_pruned, 0);
    assert!(!off.lint.analyzed, "Lint::Off skips the analysis");
}

#[test]
fn prune_saves_oracle_queries_gt() {
    let (pass, fail) = pass_fail();
    let run = |lint: Lint| {
        let mut system = label_system;
        explain_group_test_with_pvts(
            &mut system,
            &fail,
            &pass,
            candidates_with_junk(),
            &config_with(lint),
            PartitionStrategy::MinBisection,
        )
        .unwrap()
    };
    let off = run(Lint::Off);
    let pruned = run(Lint::Prune);
    assert_eq!(off.pvt_ids(), pruned.pvt_ids());
    assert_eq!(pruned.pvt_ids(), vec![3]);
    assert_eq!(off.final_score.to_bits(), pruned.final_score.to_bits());
    assert!(off.resolved && pruned.resolved);
    assert_eq!(fingerprint(&off.repaired), fingerprint(&pruned.repaired));
    assert!(
        pruned.interventions < off.interventions,
        "pruning must shrink the GT search: {} (prune) vs {} (off)",
        pruned.interventions,
        off.interventions
    );
    assert_eq!(pruned.cache.lint_pruned, 3);
}

#[test]
fn pruned_savings_render_in_the_report() {
    let (pass, fail) = pass_fail();
    let mut system = label_system;
    let config = config_with(Lint::Prune);
    let exp = explain_greedy_with_pvts(&mut system, &fail, &pass, candidates_with_junk(), &config)
        .unwrap();
    let report = markdown_report(&exp, &pass, &fail, config.threshold, &config.discovery);
    assert!(report.contains("- lint: **"), "lint summary line");
    assert!(
        report.contains("3 candidates pruned before ranking"),
        "pruning savings surfaced: {report}"
    );
    assert!(report.contains("[L2/error]"), "the findings are itemized");
}

#[test]
fn all_error_candidate_set_exits_cleanly() {
    let (pass, fail) = pass_fail();
    let junk_only: Vec<Pvt> = candidates_with_junk().into_iter().take(3).collect();

    // Prune drops everything: both algorithms report the documented
    // no-candidates error rather than panicking.
    let mut system = label_system;
    let err = explain_greedy_with_pvts(
        &mut system,
        &fail,
        &pass,
        junk_only.clone(),
        &config_with(Lint::Prune),
    )
    .unwrap_err();
    assert_eq!(err, PrismError::NoDiscriminativePvts);
    let err = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        junk_only.clone(),
        &config_with(Lint::Prune),
        PartitionStrategy::MinBisection,
    )
    .unwrap_err();
    assert_eq!(err, PrismError::NoDiscriminativePvts);

    // Unpruned, GT's A3 check catches the same futility the hard way:
    // the full composition cannot reduce the malfunction.
    let err = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        junk_only,
        &config_with(Lint::Off),
        PartitionStrategy::MinBisection,
    )
    .unwrap_err();
    assert!(
        matches!(err, PrismError::AssumptionViolated(_)),
        "unpruned junk-only set must fail A3: {err:?}"
    );
}

// ---------------------------------------------------------------------------
// L6–L9 (abstract interpretation): mode matrix, duplicate/unreachable
// savings, chunked-frame agreement, and transfer-function soundness.
// ---------------------------------------------------------------------------

/// Every scenario × algorithm × thread count × lint mode lands on the
/// same explanation digest: the analysis may merge and prune, never
/// steer. (Digest covers pvt_ids, score bits, resolution, and the
/// repaired fingerprint.)
#[test]
fn lint_mode_matrix_agrees_on_digest() {
    for mut scenario in scenarios() {
        for (algo, serial_digest) in [("grd", None::<u64>), ("gt", None)] {
            let mut reference: Option<u64> = serial_digest;
            let mut check = |label: String, result: Result<Explanation>| {
                let digest = result.as_ref().ok().map(|e| e.digest());
                let Some(d) = digest else {
                    return; // error outcomes are covered by assert_identical tests
                };
                match reference {
                    None => reference = Some(d),
                    Some(r) => assert_eq!(r, d, "{}: {label} digest drifted", scenario.name),
                }
            };
            for lint in [Lint::Off, Lint::Report, Lint::Prune] {
                let mut config = scenario.config.clone();
                config.lint = lint;
                let serial = match algo {
                    "grd" => explain_greedy(
                        scenario.system.as_mut(),
                        &scenario.d_fail,
                        &scenario.d_pass,
                        &config,
                    ),
                    _ => explain_group_test(
                        scenario.system.as_mut(),
                        &scenario.d_fail,
                        &scenario.d_pass,
                        &config,
                        PartitionStrategy::MinBisection,
                    ),
                };
                check(format!("{algo}/{lint:?}/serial"), serial);
                for threads in [1usize, 8] {
                    let mut par_config = config.clone();
                    par_config.num_threads = threads;
                    let par = match algo {
                        "grd" => explain_greedy_parallel(
                            scenario.factory.as_ref(),
                            &scenario.d_fail,
                            &scenario.d_pass,
                            &par_config,
                        ),
                        _ => explain_group_test_parallel(
                            scenario.factory.as_ref(),
                            &scenario.d_fail,
                            &scenario.d_pass,
                            &par_config,
                            PartitionStrategy::MinBisection,
                        ),
                    };
                    check(format!("{algo}/{lint:?}/threads={threads}"), par);
                }
            }
        }
    }
}

/// A triplicated junk candidate (one L6 equivalence class), two
/// τ-unreachable candidates (L7 certificates), and the real cause.
/// The junk sits on "len", the highest-degree attribute, so greedy's
/// O1 prioritization explores every copy — one charged query each —
/// before reaching the real cause on degree-1 "target". `Prune`
/// collapses the class to its representative and drops the
/// unreachable pair, paying measurably fewer queries for the same
/// explanation. All transforms are deterministic, so RNG streams
/// cannot perturb the comparison.
fn candidates_with_duplicates_and_unreachable() -> Vec<Pvt> {
    let domain: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
    // Repairs its own profile ("len" into [0, 1]) but not the labels:
    // a clean L6-only class, charged three times unpruned.
    let dup = |id: usize| Pvt {
        id,
        profile: Profile::DomainNumeric {
            attr: "len".into(),
            lb: 0.0,
            ub: 1.0,
        },
        transform: Transform::Winsorize {
            attr: "len".into(),
            lb: 0.0,
            ub: 1.0,
        },
    };
    // "len" sits in [3, 15] with no nulls, so winsorizing into
    // [20, 30] lands the whole column outside the profile's [0, 1]
    // region: the violation provably stays above any τ < 1.
    let unreachable = |id: usize| Pvt {
        id,
        profile: Profile::DomainNumeric {
            attr: "len".into(),
            lb: 0.0,
            ub: 1.0,
        },
        transform: Transform::Winsorize {
            attr: "len".into(),
            lb: 20.0,
            ub: 30.0,
        },
    };
    vec![
        dup(0),
        dup(1),
        dup(2),
        unreachable(3),
        unreachable(4),
        Pvt {
            id: 5,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: domain.clone(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values: domain,
            },
        },
    ]
}

#[test]
fn subsumption_and_unreachability_save_queries_grd() {
    let (pass, fail) = pass_fail();
    let run = |lint: Lint| {
        let mut system = label_system;
        explain_greedy_with_pvts(
            &mut system,
            &fail,
            &pass,
            candidates_with_duplicates_and_unreachable(),
            &config_with(lint),
        )
        .unwrap()
    };
    let off = run(Lint::Off);
    let pruned = run(Lint::Prune);
    assert_eq!(off.pvt_ids(), pruned.pvt_ids());
    assert_eq!(pruned.pvt_ids(), vec![5], "only the real cause survives");
    assert_eq!(off.final_score.to_bits(), pruned.final_score.to_bits());
    assert_eq!(fingerprint(&off.repaired), fingerprint(&pruned.repaired));
    assert!(
        pruned.interventions < off.interventions,
        "merging + unreachability pruning must save queries: {} vs {}",
        pruned.interventions,
        off.interventions
    );
    assert_eq!(pruned.lint.subsumed, vec![1, 2], "duplicates merged (L6)");
    assert_eq!(
        pruned.lint.unreachable_ids(),
        [3, 4].into_iter().collect::<BTreeSet<usize>>(),
        "τ-unreachability certified (L7)"
    );
    assert_eq!(pruned.cache.lint_subsumed, 2);
    assert_eq!(pruned.cache.lint_pruned, 2);
    assert_eq!(pruned.metrics.lint_subsumed, 2);
    assert_eq!(pruned.metrics.lint_unreachable, 2);
}

#[test]
fn subsumption_and_unreachability_save_queries_gt() {
    let (pass, fail) = pass_fail();
    let run = |lint: Lint| {
        let mut system = label_system;
        explain_group_test_with_pvts(
            &mut system,
            &fail,
            &pass,
            candidates_with_duplicates_and_unreachable(),
            &config_with(lint),
            PartitionStrategy::MinBisection,
        )
        .unwrap()
    };
    let off = run(Lint::Off);
    let pruned = run(Lint::Prune);
    assert_eq!(off.pvt_ids(), pruned.pvt_ids());
    assert_eq!(pruned.pvt_ids(), vec![5]);
    assert_eq!(off.final_score.to_bits(), pruned.final_score.to_bits());
    assert_eq!(fingerprint(&off.repaired), fingerprint(&pruned.repaired));
    assert!(
        pruned.interventions < off.interventions,
        "the GT tree over one representative must be smaller: {} vs {}",
        pruned.interventions,
        off.interventions
    );
    assert_eq!(pruned.cache.lint_subsumed, 2);
    assert_eq!(pruned.cache.lint_pruned, 2);
}

#[test]
fn subsumption_savings_render_in_the_report() {
    let (pass, fail) = pass_fail();
    let mut system = label_system;
    let config = config_with(Lint::Prune);
    let exp = explain_greedy_with_pvts(
        &mut system,
        &fail,
        &pass,
        candidates_with_duplicates_and_unreachable(),
        &config,
    )
    .unwrap();
    let report = markdown_report(&exp, &pass, &fail, config.threshold, &config.discovery);
    assert!(
        report.contains("2 candidates subsumed into equivalence-class representatives"),
        "merge savings surfaced: {report}"
    );
    assert!(report.contains("[L7/error]"), "certificates itemized");
}

#[test]
fn empty_candidate_set_exits_cleanly_under_every_mode() {
    let (pass, fail) = pass_fail();
    for lint in [Lint::Off, Lint::Report, Lint::Prune] {
        let mut system = label_system;
        let err =
            explain_greedy_with_pvts(&mut system, &fail, &pass, Vec::new(), &config_with(lint))
                .unwrap_err();
        assert_eq!(err, PrismError::NoDiscriminativePvts, "{lint:?}");
        let err = explain_group_test_with_pvts(
            &mut system,
            &fail,
            &pass,
            Vec::new(),
            &config_with(lint),
            PartitionStrategy::MinBisection,
        )
        .unwrap_err();
        assert_eq!(err, PrismError::NoDiscriminativePvts, "{lint:?}");
    }
}

// ---------------------------------------------------------------------------
// Chunked-frame agreement: the abstract-interpretation pass reads
// D_fail only through dp_stats column summaries, so candidate facts
// and diagnostics must be identical whether the frame's chunks are
// live-aliased copy-on-write overlays or eagerly materialized
// refcount-1 storage — including on frames wide enough to straddle
// the CHUNK_ROWS boundary.
// ---------------------------------------------------------------------------

/// Rebuild `df` value-by-value: the eager-materialization oracle
/// sharing no chunks with the source.
fn deep_copy(df: &DataFrame) -> DataFrame {
    let cols = df
        .columns()
        .iter()
        .map(|c| {
            Column::from_values(
                c.name(),
                c.dtype(),
                (0..c.len()).map(|i| c.get(i)).collect(),
            )
            .expect("deep copy preserves dtypes")
        })
        .collect();
    DataFrame::from_columns(cols).expect("deep copy rebuilds")
}

/// Every concrete value of `post` lies inside the abstract post-state
/// of its column: interval membership for numerics, support
/// membership for strings, and the observed null fraction inside the
/// certified `[null_lo, null_hi]` band.
fn assert_concrete_contained(post: &DataFrame, abs: &dp_lint::domains::AbsState, what: &str) {
    for col in post.columns() {
        let a = abs.col(col.name());
        if col.dtype().is_numeric() {
            for (row, v) in col.f64_values() {
                assert!(
                    a.interval.contains(v),
                    "{what}: {}[{row}] = {v} escapes {:?}",
                    col.name(),
                    a.interval
                );
            }
        } else if col.dtype().is_string() {
            for (row, s) in col.str_values() {
                assert!(
                    a.support.contains(s),
                    "{what}: {}[{row}] = {s:?} outside support {:?}",
                    col.name(),
                    a.support
                );
            }
        }
        let nulls = col.null_count() as f64 / col.len().max(1) as f64;
        assert!(
            a.admits_null_fraction(nulls),
            "{what}: {} null fraction {nulls} outside [{}, {}]",
            col.name(),
            a.null_lo,
            a.null_hi
        );
    }
}

#[test]
fn lint_facts_agree_on_chunk_straddling_cow_frames() {
    use dataprism::lint::{candidate_facts, lint_pvts, seed_state};
    use dp_lint::absint::apply_chain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Two chunks in every column, with the second only partly full.
    const ROWS: usize = dp_frame::CHUNK_ROWS + 1000;
    let nums: Vec<Option<f64>> = (0..ROWS)
        .map(|i| {
            if i % 97 == 0 {
                None
            } else {
                Some((i % 200) as f64 - 50.0)
            }
        })
        .collect();
    let aux: Vec<Option<f64>> = (0..ROWS).map(|i| Some((i % 37) as f64 * 10.0)).collect();
    let base = DataFrame::from_columns(vec![
        Column::from_floats("num", nums),
        Column::from_floats("aux", aux),
    ])
    .unwrap();

    // A live alias: the overlay initially shares every chunk with
    // `base`; the vectorized winsorize kernel then copy-on-writes the
    // "num" chunks while "aux" stays shared — exactly the state the
    // PR 8 kernels leave behind mid-diagnosis.
    let overlay = base.clone();
    let mut rng = StdRng::seed_from_u64(7);
    let winsorize = Transform::Winsorize {
        attr: "num".into(),
        lb: -20.0,
        ub: 120.0,
    };
    let (cow_fail, _) = winsorize.apply(&overlay, &mut rng).unwrap();
    assert!(
        cow_fail
            .column("aux")
            .unwrap()
            .shares_chunks_with(base.column("aux").unwrap()),
        "untouched column must keep aliasing the base frame"
    );
    assert!(
        !cow_fail
            .column("num")
            .unwrap()
            .shares_chunks_with(base.column("num").unwrap()),
        "written column must have been un-shared"
    );
    let eager_fail = deep_copy(&cow_fail);

    // Winsorize / rescale / impute write-sets, plus one L2 candidate
    // whose fix writes an attribute disjoint from its profile.
    let pvts = vec![
        Pvt {
            id: 0,
            profile: Profile::DomainNumeric {
                attr: "num".into(),
                lb: -20.0,
                ub: 100.0,
            },
            transform: Transform::Winsorize {
                attr: "num".into(),
                lb: -20.0,
                ub: 100.0,
            },
        },
        Pvt {
            id: 1,
            profile: Profile::DomainNumeric {
                attr: "aux".into(),
                lb: 0.0,
                ub: 1.0,
            },
            transform: Transform::LinearRescale {
                attr: "aux".into(),
                lb: 0.0,
                ub: 1.0,
            },
        },
        Pvt {
            id: 2,
            profile: Profile::Missing {
                attr: "num".into(),
                theta: 0.001,
            },
            transform: Transform::Impute {
                attr: "num".into(),
                strategy: dataprism::transform::ImputeStrategy::Central,
            },
        },
        Pvt {
            id: 3,
            profile: Profile::DomainNumeric {
                attr: "num".into(),
                lb: 0.0,
                ub: 1.0,
            },
            transform: Transform::Winsorize {
                attr: "aux".into(),
                lb: 0.0,
                ub: 1.0,
            },
        },
    ];

    // Facts and diagnostics are chunk-layout-independent.
    for pvt in &pvts {
        assert_eq!(
            candidate_facts(pvt, &cow_fail),
            candidate_facts(pvt, &eager_fail),
            "facts drifted on PVT {}",
            pvt.id
        );
    }
    let cow_diag = lint_pvts(&pvts, &cow_fail, 0.2);
    let eager_diag = lint_pvts(&pvts, &eager_fail, 0.2);
    assert_eq!(cow_diag.diagnostics, eager_diag.diagnostics);
    assert!(
        cow_diag
            .diagnostics
            .iter()
            .any(|d| d.rule == dp_lint::RuleId::TransformConsistency && d.pvt_ids == vec![3]),
        "the L2 candidate is flagged on the chunked frame: {:?}",
        cow_diag.diagnostics
    );

    // Soundness on the straddling frame: each deterministic
    // candidate's concrete post-frame is contained in the abstract
    // post-state of its lowered transfer chain.
    let state = seed_state(&cow_fail);
    for pvt in pvts.iter().take(3) {
        let facts = candidate_facts(pvt, &cow_fail);
        let abs_post = apply_chain(&state, &facts.transfer);
        let mut rng = StdRng::seed_from_u64(11);
        let (concrete_post, _) = pvt.transform.apply(&cow_fail, &mut rng).unwrap();
        assert_concrete_contained(&concrete_post, &abs_post, &format!("pvt {}", pvt.id));
    }
}

// ---------------------------------------------------------------------------
// Transfer-function soundness (proptest): for random frames and
// random deterministic transforms, the abstract post-state computed
// by the lowered transfer chain contains the concrete post-frame —
// the certificate rules L6/L7/L9 are only as sound as this containment.
// ---------------------------------------------------------------------------

proptest! {

    #[test]
    fn abstract_post_contains_concrete_post(
        vals in prop::collection::vec(
            prop_oneof![
                4 => (-1e3f64..1e3).prop_map(Some),
                1 => Just(None),
            ],
            1..120,
        ),
        kind in 0usize..4,
        a in -50f64..50.0,
        b in 0f64..100.0,
        seed in 0u64..1000,
    ) {
        use dataprism::lint::{candidate_facts, seed_state};
        use dp_lint::absint::apply_chain;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let lb = a.min(a + b);
        let ub = a.max(a + b);
        let df = DataFrame::from_columns(vec![Column::from_floats("x", vals)]).unwrap();
        let transform = match kind {
            0 => Transform::Winsorize { attr: "x".into(), lb, ub },
            1 => Transform::LinearRescale { attr: "x".into(), lb, ub },
            2 => Transform::Impute {
                attr: "x".into(),
                strategy: dataprism::transform::ImputeStrategy::Central,
            },
            _ => Transform::Impute {
                attr: "x".into(),
                strategy: dataprism::transform::ImputeStrategy::Mode,
            },
        };
        let pvt = Pvt {
            id: 0,
            profile: Profile::DomainNumeric { attr: "x".into(), lb, ub },
            transform,
        };
        let state = seed_state(&df);
        let facts = candidate_facts(&pvt, &df);
        let abs_post = apply_chain(&state, &facts.transfer);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok((post, _)) = pvt.transform.apply(&df, &mut rng) {
            assert_concrete_contained(&post, &abs_post, "random transform");
        }
    }
}
