//! Parity suite for the sketch-based discovery pre-filter.
//!
//! The contract under test: [`Prefilter::On`] (and the cautious
//! [`Prefilter::Threshold`] variant) may only *skip* exact
//! independence tests whose outcome is already decided — it must
//! never change what discovery returns. For every case-study
//! scenario and the wide synthetic schemas, profile discovery on
//! both datasets and the discriminative PVT set must be **identical**
//! with the pre-filter off and on, while the wide schemas must also
//! show the filter actually screening pairs (otherwise the parity
//! claim is vacuous).

use dataprism::discovery::{discover_profiles_stats, discriminative_pvts_stats};
use dataprism::{DiscoveryConfig, Prefilter};
use dp_frame::DataFrame;
use dp_scenarios::wide::wide_schema;
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};

fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

fn with_prefilter(cfg: &DiscoveryConfig, prefilter: Prefilter) -> DiscoveryConfig {
    DiscoveryConfig {
        prefilter,
        ..cfg.clone()
    }
}

/// Assert off/on parity of single-frame discovery and of the
/// discriminative PVT set; returns the number of screened pair tests
/// so callers can additionally demand screening happened.
fn assert_parity(
    name: &str,
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    cfg: &DiscoveryConfig,
    prefilter: Prefilter,
) -> usize {
    let off = with_prefilter(cfg, Prefilter::Off);
    let on = with_prefilter(cfg, prefilter);
    for (side, df) in [("d_pass", d_pass), ("d_fail", d_fail)] {
        let (p_off, s_off) = discover_profiles_stats(df, &off, 1);
        let (p_on, s_on) = discover_profiles_stats(df, &on, 1);
        assert_eq!(p_off, p_on, "{name}/{side}: profile parity");
        assert_eq!(s_off.screened(), 0, "{name}/{side}: Off never screens");
        assert_eq!(
            s_off.tests(),
            s_on.tests(),
            "{name}/{side}: same pair tests considered"
        );
    }
    let (pvts_off, _) = discriminative_pvts_stats(d_pass, d_fail, &off, 1);
    let (pvts_on, stats_on) = discriminative_pvts_stats(d_pass, d_fail, &on, 1);
    assert_eq!(pvts_off, pvts_on, "{name}: discriminative PVT parity");
    stats_on.screened()
}

#[test]
fn case_studies_prefilter_parity() {
    for scenario in scenarios() {
        assert_parity(
            scenario.name,
            &scenario.d_pass,
            &scenario.d_fail,
            &scenario.config.discovery,
            Prefilter::On,
        );
    }
}

#[test]
fn case_studies_threshold_parity() {
    // The cautious variant adds slack on top of the exact-equivalent
    // estimates; it screens fewer pairs but must preserve parity too.
    for scenario in scenarios() {
        assert_parity(
            scenario.name,
            &scenario.d_pass,
            &scenario.d_fail,
            &scenario.config.discovery,
            Prefilter::Threshold(2.0),
        );
    }
}

#[test]
fn wide_schema_parity_with_screening() {
    for (attrs, rows, seed) in [(40usize, 200usize, 3u64), (55, 120, 11)] {
        let w = wide_schema(attrs, rows, seed);
        let screened = assert_parity(
            &format!("wide({attrs}x{rows})"),
            &w.d_pass,
            &w.d_fail,
            &DiscoveryConfig::default(),
            Prefilter::On,
        );
        assert!(
            screened > 0,
            "wide({attrs}x{rows}): a wide schema must screen pairs"
        );
    }
}

#[test]
fn wide_schema_parity_with_causal_profiles() {
    // Causal (SEM) profiles have no significance gate, so the
    // pre-filter must leave them alone: parity with `indep_causal`
    // on proves screened pairs still get their causal profile.
    let w = wide_schema(12, 100, 5);
    let cfg = DiscoveryConfig {
        indep_causal: true,
        ..Default::default()
    };
    let screened = assert_parity("wide-causal", &w.d_pass, &w.d_fail, &cfg, Prefilter::On);
    assert!(screened > 0, "independence tests still screen");
}

#[test]
fn wide_schema_parity_across_thread_counts() {
    // Screening decisions are per pair and the counters are atomic:
    // profiles, PVTs, and stats must be identical at any fan-out.
    let w = wide_schema(30, 150, 8);
    let cfg = DiscoveryConfig::default();
    let (base_pvts, base_stats) = discriminative_pvts_stats(&w.d_pass, &w.d_fail, &cfg, 1);
    assert!(base_stats.screened() > 0);
    for threads in [2, 8] {
        let (pvts, stats) = discriminative_pvts_stats(&w.d_pass, &w.d_fail, &cfg, threads);
        assert_eq!(base_pvts, pvts, "@{threads}: PVT parity");
        assert_eq!(base_stats, stats, "@{threads}: deterministic counters");
    }
}
