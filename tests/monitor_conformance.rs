//! Conformance for the continuous-monitoring layer (`dp_monitor`).
//!
//! Two contracts under test, across every case-study scenario:
//!
//! 1. **Stream/batch sketch parity.** The live per-column sketches a
//!    [`Watcher`] maintains by merging per-batch sketches are
//!    *bit-identical* (by fingerprint) to sketches rebuilt from
//!    scratch over the concatenation of everything ingested — the
//!    merge layer is exact, not approximate.
//! 2. **Triggered/offline digest identity.** A drift-triggered
//!    re-diagnosis — seeded with only the drifted profiles'
//!    candidates and warmed from a resident cache — produces the same
//!    explanation, bit for bit, as an offline run handed the same
//!    candidate set. Pinned across scenarios × GRD/GT × thread
//!    widths {1, 8} × warmth, and once more end-to-end through an
//!    in-process `dp_serve` daemon (watch → ingest CSV → drift).
//!
//! The drift *detection* side (lag, screen rates, targeted-vs-full
//! query cost) is measured and gated by `drift_detection --smoke`.

use dataprism::{
    explain_greedy_parallel_with_pvts, explain_group_test_parallel_with_pvts, fingerprint,
    Explanation, PartitionStrategy, Result, ScoreCache,
};
use dp_frame::csv::write_csv;
use dp_monitor::{MonitorConfig, Watcher};
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};
use dp_serve::{field_u64, is_ok, Client, ServeConfig, Server};
use dp_stats::sketch::{CategoricalSketch, ColumnSummary, NumericSketch, DEFAULT_BUCKETS};
use dp_trace::Tracer;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Loose enough that every scenario's injected disconnect registers
/// (the weakest, ezgo's shifted stars, violates its domain profile on
/// only part of the window).
const TAU_DRIFT: f64 = 0.05;

/// The moderate-size case-study set (same sizes as
/// `serve_conformance.rs`).
fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        tau_drift: TAU_DRIFT,
        window_batches: 2,
    }
}

/// A watcher over the scenario's passing dataset that has ingested
/// the failing dataset as one streamed batch (so the scoring window
/// is exactly `d_fail`), plus the drifted profile indices.
fn drifted_watcher(scenario: &Scenario, threads: usize) -> (Watcher, Vec<usize>) {
    let mut config = scenario.config.clone();
    config.num_threads = threads;
    let mut watcher = Watcher::new(scenario.d_pass.clone(), config, monitor_config());
    watcher
        .ingest(scenario.d_fail.clone(), &Tracer::off())
        .expect("d_fail shares d_pass's schema in every case study");
    let report = watcher.check_drift(&Tracer::off());
    assert!(
        report.any_drifted(),
        "{}: the injected disconnect must register as drift (max score {:?})",
        scenario.name,
        report.scores.iter().map(|s| s.score).fold(0.0f64, f64::max),
    );
    let drifted = report.drifted();
    (watcher, drifted)
}

#[derive(Clone, Copy)]
enum Algo {
    Greedy,
    GroupTest,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Greedy => "GRD",
            Algo::GroupTest => "GT",
        }
    }
}

fn run_triggered(
    watcher: &Watcher,
    scenario: &Scenario,
    algo: Algo,
    drifted: &[usize],
    cache: &mut ScoreCache,
) -> Result<Explanation> {
    match algo {
        Algo::Greedy => {
            watcher.diagnose_greedy(scenario.factory.as_ref(), drifted, cache, &Tracer::off())
        }
        Algo::GroupTest => watcher.diagnose_group_test(
            scenario.factory.as_ref(),
            drifted,
            PartitionStrategy::MinBisection,
            cache,
            &Tracer::off(),
        ),
    }
}

/// The offline leg: the plain (uncached) parallel entry points handed
/// the watcher's window and candidate set verbatim.
fn run_offline(
    watcher: &Watcher,
    scenario: &Scenario,
    algo: Algo,
    drifted: &[usize],
    threads: usize,
) -> Result<Explanation> {
    let window = watcher.window_frame().expect("a batch was ingested");
    let pvts = watcher.candidates(drifted);
    let mut config = scenario.config.clone();
    config.num_threads = threads;
    match algo {
        Algo::Greedy => explain_greedy_parallel_with_pvts(
            scenario.factory.as_ref(),
            &window,
            &scenario.d_pass,
            pvts,
            &config,
        ),
        Algo::GroupTest => explain_group_test_parallel_with_pvts(
            scenario.factory.as_ref(),
            &window,
            &scenario.d_pass,
            pvts,
            &config,
            PartitionStrategy::MinBisection,
        ),
    }
}

/// Bit-indistinguishability, cache counters excluded by design.
fn assert_identical(label: &str, offline: &Result<Explanation>, triggered: &Result<Explanation>) {
    match (offline, triggered) {
        (Ok(o), Ok(t)) => {
            assert_eq!(o.pvt_ids(), t.pvt_ids(), "{label}: explanation set");
            assert_eq!(o.interventions, t.interventions, "{label}: interventions");
            assert_eq!(
                o.initial_score.to_bits(),
                t.initial_score.to_bits(),
                "{label}: initial score"
            );
            assert_eq!(
                o.final_score.to_bits(),
                t.final_score.to_bits(),
                "{label}: final score"
            );
            assert_eq!(o.resolved, t.resolved, "{label}: resolved flag");
            assert_eq!(o.trace, t.trace, "{label}: trace");
            assert_eq!(
                fingerprint(&o.repaired),
                fingerprint(&t.repaired),
                "{label}: repaired dataset"
            );
            assert_eq!(o.digest(), t.digest(), "{label}: digest");
        }
        (Err(oe), Err(te)) => assert_eq!(oe, te, "{label}: error value"),
        (o, t) => {
            panic!("{label}: triggering changed the outcome: offline {o:?} vs triggered {t:?}")
        }
    }
}

#[test]
fn live_sketches_are_bit_identical_to_scratch_rebuilds() {
    for scenario in scenarios() {
        // Stream two batches (the passing distribution, then the
        // disconnect) so merges actually happen, and rebuild every
        // sketch from the concatenation.
        let mut config = scenario.config.clone();
        config.num_threads = 1;
        let mut watcher = Watcher::new(scenario.d_pass.clone(), config, monitor_config());
        let tracer = Tracer::off();
        watcher.ingest(scenario.d_pass.clone(), &tracer).unwrap();
        watcher.ingest(scenario.d_fail.clone(), &tracer).unwrap();
        let whole = scenario.d_pass.concat(&scenario.d_fail).unwrap();
        for col in whole.columns() {
            let label = format!("{} column {}", scenario.name, col.name());
            let live = watcher
                .live_summary(col.name())
                .unwrap_or_else(|| panic!("{label}: no live summary"));
            assert_eq!(
                live.fingerprint(),
                ColumnSummary::build(col).fingerprint(),
                "{label}: summary diverged from scratch rebuild"
            );
            if col.dtype().is_numeric() {
                assert_eq!(
                    watcher
                        .live_numeric_sketch(col.name())
                        .unwrap()
                        .fingerprint(),
                    NumericSketch::build(col.len(), &col.f64_values()).fingerprint(),
                    "{label}: numeric sketch diverged"
                );
            } else if col.dtype().is_string() {
                let mut cells: Vec<Option<&str>> = vec![None; col.len()];
                for (i, s) in col.str_values() {
                    cells[i] = Some(s);
                }
                assert_eq!(
                    watcher
                        .live_categorical_sketch(col.name())
                        .unwrap()
                        .fingerprint(),
                    CategoricalSketch::from_values(&cells, DEFAULT_BUCKETS).fingerprint(),
                    "{label}: categorical sketch diverged"
                );
            }
        }
    }
}

#[test]
fn triggered_rediagnosis_matches_offline_across_the_matrix() {
    for scenario in scenarios() {
        for algo in [Algo::Greedy, Algo::GroupTest] {
            for threads in THREAD_COUNTS {
                let label = format!("{} {}@{threads}t", scenario.name, algo.name());
                let (watcher, drifted) = drifted_watcher(&scenario, threads);

                let offline = run_offline(&watcher, &scenario, algo, &drifted, threads);
                let mut cache = ScoreCache::new();
                let cold = run_triggered(&watcher, &scenario, algo, &drifted, &mut cache);
                assert_identical(&format!("{label} cold-triggered"), &offline, &cold);

                // Second trigger over the same window, warmed by the
                // first: identical, and served from the cache.
                let warm = run_triggered(&watcher, &scenario, algo, &drifted, &mut cache);
                assert_identical(&format!("{label} warm-triggered"), &offline, &warm);
                if let (Ok(c), Ok(w)) = (&cold, &warm) {
                    assert_eq!(
                        c.metrics.charged_queries, w.metrics.charged_queries,
                        "{label}: warmth must not change what the algorithm asks"
                    );
                    assert!(
                        w.metrics.warm_hits > 0,
                        "{label}: warm trigger never touched the seeded cache"
                    );
                }
            }
        }
    }
}

#[test]
fn targeted_candidates_are_a_strict_subset_of_full_discovery() {
    // The targeted run must charge no more oracle queries than a full
    // diagnosis of the same window — the whole point of seeding with
    // only the drifted profiles. (The bench gates the margin; here we
    // pin the non-strict invariant cheaply at one width.)
    let scenario = income::scenario_with_size(300, 7);
    let (watcher, drifted) = drifted_watcher(&scenario, 1);
    let full_profiles = watcher.profiles().len();
    assert!(
        drifted.len() < full_profiles,
        "drift must localize: {} of {full_profiles} profiles drifted",
        drifted.len()
    );
    let targeted = watcher.candidates(&drifted);
    assert!(!targeted.is_empty());
    let all: Vec<usize> = (0..full_profiles).collect();
    let every = watcher.candidates(&all);
    assert!(targeted.len() < every.len());
}

/// End-to-end over real TCP: watch → ingest (CSV round-trip) → drift
/// with escalation, digest-identical to the in-process watcher fed
/// the same frames.
#[test]
fn daemon_drift_escalation_matches_in_process_watcher() {
    let rows = 300;
    let seed = 7;
    let scenario = income::scenario_with_size(rows, seed);

    // In-process reference: same tau/window the daemon will run.
    let mut watcher = Watcher::new(
        scenario.d_pass.clone(),
        scenario.config.clone(),
        monitor_config(),
    );
    watcher
        .ingest(scenario.d_fail.clone(), &Tracer::off())
        .unwrap();
    let report = watcher.check_drift(&Tracer::off());
    let drifted = report.drifted();
    assert!(!drifted.is_empty());
    let mut cache = ScoreCache::new();
    let reference = watcher
        .diagnose_greedy(
            scenario.factory.as_ref(),
            &drifted,
            &mut cache,
            &Tracer::off(),
        )
        .expect("reference escalation");

    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reg = client
        .register("inc", "income", Some(rows), Some(seed))
        .unwrap();
    assert!(is_ok(&reg));

    // Monitoring ops require a watcher.
    let premature = client.ingest("inc", "x\n1\n").unwrap();
    assert_eq!(
        premature.get("code").and_then(|c| c.as_str()),
        Some("not_watching")
    );

    let watch = client.watch("inc", Some(TAU_DRIFT), Some(2)).unwrap();
    assert!(is_ok(&watch), "{watch:?}");
    assert_eq!(
        field_u64(&watch, "profiles"),
        Some(watcher.profiles().len() as u64)
    );

    // A batch that does not parse against the watched schema is a
    // typed error, not a poisoned namespace.
    let bad = client
        .ingest("inc", "totally,wrong\nschema,here\n")
        .unwrap();
    assert_eq!(bad.get("code").and_then(|c| c.as_str()), Some("bad_batch"));

    let mut csv = Vec::new();
    write_csv(&scenario.d_fail, &mut csv).unwrap();
    let ingest = client
        .ingest("inc", std::str::from_utf8(&csv).unwrap())
        .unwrap();
    assert!(is_ok(&ingest), "{ingest:?}");
    assert_eq!(
        field_u64(&ingest, "rows_total"),
        Some(scenario.d_fail.n_rows() as u64)
    );

    let drift = client.drift("inc", true, "greedy").unwrap();
    assert!(is_ok(&drift), "{drift:?}");
    assert_eq!(drift.get("diagnosed").and_then(|b| b.as_bool()), Some(true));
    let wire_drifted: Vec<u64> = match drift.get("drifted") {
        Some(dp_trace::JsonValue::Arr(items)) => items.iter().filter_map(|v| v.as_u64()).collect(),
        other => panic!("drifted is not an array: {other:?}"),
    };
    assert_eq!(
        wire_drifted,
        drifted.iter().map(|&i| i as u64).collect::<Vec<_>>(),
        "daemon and in-process watcher must agree on what drifted"
    );
    assert_eq!(
        field_u64(&drift, "digest"),
        Some(reference.digest()),
        "daemon escalation must be digest-identical to the in-process run"
    );

    // The scrape reflects the session.
    let body = client.metrics().unwrap();
    assert!(
        body.contains("dp_monitor_watching{system=\"inc\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("dp_monitor_batches_ingested_total{system=\"inc\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("dp_monitor_drift_triggers_total{system=\"inc\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("dp_monitor_ingest_latency_seconds_count{system=\"inc\"} 1"),
        "{body}"
    );

    // Per-system stats carry the cumulative totals.
    let stats = client.stats(Some("inc")).unwrap();
    assert_eq!(stats.get("watching").and_then(|b| b.as_bool()), Some(true));
    assert_eq!(field_u64(&stats, "drift_checks_total"), Some(1));
    assert_eq!(field_u64(&stats, "drift_triggers_total"), Some(1));

    client.shutdown().unwrap();
    server.join();
}
