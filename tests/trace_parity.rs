//! Parity, round-trip, and reconstruction tests for the `dp_trace`
//! observability layer.
//!
//! The contract under test: attaching any trace sink is **pure
//! observation**. With the in-memory `Collector` or the buffered
//! JSONL writer, a diagnosis returns the bit-identical explanation a
//! `NullSink` (trace off) run returns — same PVTs, scores,
//! intervention counts, audit trail, and repaired-dataset fingerprint
//! — at every `num_threads` in {1, 2, 8} crossed with every
//! `gt_speculation_depth` in {0, 1, 2}, for both GRD and GT.
//!
//! Separately, the JSONL schema must round-trip bit-for-bit (u64
//! fingerprints and f64 score bits survive), the search tree folded
//! from a deserialized stream must match the tree folded from the
//! live `Collector` records, and a serial GT trace renders a stable
//! golden tree.

use dataprism::{
    explain_greedy_parallel, explain_group_test, explain_group_test_parallel, fingerprint,
    Explanation, PartitionStrategy, PrismConfig, Result, SearchTree, SpeculationMode, TraceConfig,
};
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};
use dp_trace::{parse_jsonl, to_jsonl, Event};
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const DEPTHS: [usize; 3] = [0, 1, 2];

/// The case-study set, sized down from the conformance suite: the
/// parity matrix multiplies every scenario by algorithms × sinks ×
/// threads × depths.
fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(160, 11),
        income::scenario_with_size(200, 7),
        cardio::scenario_with_size(200, 5),
        ezgo::scenario_with_size(240, 2),
        sensors::scenario_with_size(150, 4),
    ]
}

#[derive(Clone, Copy)]
enum Algo {
    Grd,
    Gt,
}

fn run(algo: Algo, scenario: &Scenario, config: &PrismConfig) -> Result<Explanation> {
    match algo {
        Algo::Grd => explain_greedy_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            config,
        ),
        Algo::Gt => explain_group_test_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            config,
            PartitionStrategy::MinBisection,
        ),
    }
}

/// A fresh path under the cargo-managed test temp dir.
fn temp_jsonl(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("trace_{tag}_{}.jsonl", std::process::id()))
}

/// Assert the deterministic surface of two outcomes is bit-identical.
/// Cache counters and latency metrics are excluded by design: they
/// vary with scheduling, not with the sink.
fn assert_same_outcome(label: &str, base: &Result<Explanation>, traced: &Result<Explanation>) {
    match (base, traced) {
        (Ok(b), Ok(t)) => {
            assert_eq!(b.pvt_ids(), t.pvt_ids(), "{label}: explanation set");
            assert_eq!(b.interventions, t.interventions, "{label}: interventions");
            assert_eq!(
                b.initial_score.to_bits(),
                t.initial_score.to_bits(),
                "{label}: initial score"
            );
            assert_eq!(
                b.final_score.to_bits(),
                t.final_score.to_bits(),
                "{label}: final score"
            );
            assert_eq!(b.resolved, t.resolved, "{label}: resolved");
            assert_eq!(b.trace, t.trace, "{label}: audit trail");
            assert_eq!(
                fingerprint(&b.repaired),
                fingerprint(&t.repaired),
                "{label}: repaired dataset"
            );
        }
        (Err(be), Err(te)) => assert_eq!(be, te, "{label}: error value"),
        (b, t) => panic!("{label}: sink changed the outcome: off {b:?} vs traced {t:?}"),
    }
}

fn parity_matrix(algo: Algo, algo_name: &str) {
    for scenario in scenarios() {
        for threads in THREAD_COUNTS {
            for depth in DEPTHS {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.gt_speculation_depth = depth;

                config.trace = TraceConfig::Off;
                let off = run(algo, &scenario, &config);

                config.trace = TraceConfig::Collect;
                let collected = run(algo, &scenario, &config);

                let path = temp_jsonl(&format!(
                    "{algo_name}_{}_{threads}t_d{depth}",
                    scenario.name.replace(' ', "_")
                ));
                config.trace = TraceConfig::Jsonl(path.clone());
                let jsonl = run(algo, &scenario, &config);

                let label = format!("{}/{algo_name}@{threads}t/d{depth}", scenario.name);
                assert_same_outcome(&label, &off, &collected);
                assert_same_outcome(&label, &off, &jsonl);

                if let Ok(exp) = &off {
                    assert!(
                        exp.trace_records.is_empty(),
                        "{label}: off-run must collect nothing"
                    );
                }
                if let Ok(exp) = &collected {
                    assert!(
                        !exp.trace_records.is_empty(),
                        "{label}: collect-run must have records"
                    );
                    assert!(
                        matches!(exp.trace_records[0].event, Event::DiagnosisBegin(_)),
                        "{label}: stream opens with DiagnosisBegin"
                    );
                    assert!(
                        matches!(
                            exp.trace_records.last().unwrap().event,
                            Event::DiagnosisEnd { .. }
                        ),
                        "{label}: stream closes with DiagnosisEnd"
                    );
                }
                if jsonl.is_ok() {
                    let raw = std::fs::read_to_string(&path).unwrap();
                    let parsed = parse_jsonl(&raw)
                        .unwrap_or_else(|e| panic!("{label}: file must parse: {e}"));
                    assert!(!parsed.is_empty(), "{label}: file must have records");
                }
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

#[test]
fn greedy_explanations_are_sink_invariant() {
    parity_matrix(Algo::Grd, "grd");
}

#[test]
fn group_test_explanations_are_sink_invariant() {
    parity_matrix(Algo::Gt, "gt");
}

#[test]
fn adaptive_mode_is_sink_invariant_and_plans_round_trip() {
    // Adaptive cell of the parity matrix: with the adaptive executor
    // on, every sink still returns the static off-run's explanation
    // bit-for-bit, the collected stream carries the controller's
    // `speculation_plan` decisions (depth never above the configured
    // cap), and the records survive the JSONL round trip exactly.
    for scenario in [
        income::scenario_with_size(200, 7),
        sensors::scenario_with_size(150, 4),
    ] {
        for threads in [2usize, 8] {
            let cap = 2;
            let mut config = scenario.config.clone();
            config.num_threads = threads;
            config.gt_speculation_depth = cap;
            config.trace = TraceConfig::Off;
            let static_off = run(Algo::Gt, &scenario, &config);

            config.speculation = SpeculationMode::Adaptive;
            let adaptive_off = run(Algo::Gt, &scenario, &config);
            config.trace = TraceConfig::Collect;
            let adaptive_collected = run(Algo::Gt, &scenario, &config);

            let label = format!("{}/adaptive@{threads}t", scenario.name);
            assert_same_outcome(&label, &static_off, &adaptive_off);
            assert_same_outcome(&label, &static_off, &adaptive_collected);

            let Ok(exp) = &adaptive_collected else {
                continue;
            };
            let mut plans = 0;
            for record in &exp.trace_records {
                if let Event::SpeculationPlan(plan) = &record.event {
                    plans += 1;
                    assert_eq!(plan.cap, cap, "{label}: plan cap");
                    assert!(
                        plan.depth <= plan.cap,
                        "{label}: controller chose depth {} above cap {}",
                        plan.depth,
                        plan.cap
                    );
                    assert!(plan.budget.is_some(), "{label}: adaptive runs are bounded");
                }
            }
            assert!(plans > 0, "{label}: no controller decisions were traced");
            let text = to_jsonl(&exp.trace_records);
            assert_eq!(
                parse_jsonl(&text).unwrap(),
                exp.trace_records,
                "{label}: speculation_plan records must round-trip"
            );
        }
    }
}

#[test]
fn jsonl_round_trips_bit_for_bit_and_reconstructs_the_tree() {
    // Satellite 3: serialize the full event stream of real runs,
    // deserialize, and reconstruct — everything must survive exactly,
    // for all scenarios × GRD/GT × threads {1, 8}.
    for scenario in scenarios() {
        for algo in [Algo::Grd, Algo::Gt] {
            for threads in [1usize, 8] {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.trace = TraceConfig::Collect;
                let Ok(exp) = run(algo, &scenario, &config) else {
                    continue; // error parity is covered by the matrix above
                };
                let records = &exp.trace_records;
                let text = to_jsonl(records);
                let parsed = parse_jsonl(&text).unwrap();
                assert_eq!(&parsed, records, "{}@{threads}t: records", scenario.name);
                let live = SearchTree::from_records(records);
                let rebuilt = SearchTree::from_records(&parsed);
                assert_eq!(
                    live, rebuilt,
                    "{}@{threads}t: reconstructed tree",
                    scenario.name
                );
                if matches!(algo, Algo::Gt) {
                    assert!(
                        live.node_count() > 0,
                        "{}@{threads}t: GT run must produce a tree",
                        scenario.name
                    );
                }
            }
        }
    }
}

#[test]
fn jsonl_file_stream_rebuilds_the_collector_tree() {
    // A JSONL-sink run is a *different* run than a Collector run, so
    // wall times and speculative-hit flags may differ; everything
    // structural (nodes, candidate sets, partitions, probe scores,
    // selections) is deterministic and must match after
    // `strip_volatile`.
    let scenario = income::scenario_with_size(200, 7);
    for threads in [1usize, 8] {
        let mut config = scenario.config.clone();
        config.num_threads = threads;

        config.trace = TraceConfig::Collect;
        let collected = run(Algo::Gt, &scenario, &config).unwrap();

        let path = temp_jsonl(&format!("file_tree_{threads}t"));
        config.trace = TraceConfig::Jsonl(path.clone());
        let _ = run(Algo::Gt, &scenario, &config).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_jsonl(&raw).unwrap();
        let _ = std::fs::remove_file(&path);

        let live = SearchTree::from_records(&collected.trace_records).strip_volatile();
        let from_file = SearchTree::from_records(&parsed).strip_volatile();
        assert_eq!(live, from_file, "{threads}t: structural tree");
    }
}

#[test]
fn serial_gt_tree_matches_golden_rendering() {
    // Serial GT on the income case study (example 1's GT run reports
    // an A3 violation, so it has no tree): the reconstructed search
    // tree renders byte-identically on every run (no wall times in
    // the text rendering).
    let mut scenario = income::scenario_with_size(200, 7);
    let mut config = scenario.config.clone();
    config.trace = TraceConfig::Collect;
    let exp = explain_group_test(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &config,
        PartitionStrategy::MinBisection,
    )
    .unwrap();
    let tree = SearchTree::from_records(&exp.trace_records);
    let rendered = tree.render_text(false);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("income_gt_tree.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        rendered, expected,
        "tree drifted from {path:?}; run with UPDATE_GOLDEN=1 to regenerate"
    );
}
