//! End-to-end integration tests over the three §5.1 case studies:
//! full discovery-driven diagnosis against the real (retraining)
//! pipelines, checking the paper's headline claims:
//!
//! - DataPrism-GRD resolves every study with < 5 interventions and
//!   finds the planted ground truth;
//! - group testing works on Sentiment/Income but reports an A3
//!   violation (not applicable) on Cardiovascular;
//! - the baselines need (often far) more interventions than GRD.

use dataprism::baselines::all_candidate_pvts;
use dataprism::baselines::bugdoc::explain_bugdoc;
use dataprism::{explain_greedy, explain_group_test, PartitionStrategy, PrismError};
use dp_scenarios::{cardio, income, sentiment, Scenario};

fn scenarios() -> Vec<Scenario> {
    vec![
        sentiment::scenario_with_size(400, 42),
        income::scenario_with_size(300, 42),
        cardio::scenario_with_size(400, 42),
    ]
}

#[test]
fn problem_inputs_are_valid() {
    for mut s in scenarios() {
        let pass = s.system.malfunction(&s.d_pass);
        let fail = s.system.malfunction(&s.d_fail);
        assert!(
            pass <= s.config.threshold,
            "{}: D_pass must pass (score {pass}, τ {})",
            s.name,
            s.config.threshold
        );
        assert!(
            fail > s.config.threshold,
            "{}: D_fail must fail (score {fail}, τ {})",
            s.name,
            s.config.threshold
        );
    }
}

#[test]
fn greedy_resolves_all_studies_with_few_interventions() {
    for mut s in scenarios() {
        let exp = explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        assert!(exp.resolved, "{}: {exp}", s.name);
        assert!(
            exp.interventions < 5,
            "{}: paper claims < 5, got {}",
            s.name,
            exp.interventions
        );
        assert!(
            s.explains_ground_truth(&exp),
            "{}: explanation missed the planted cause: {exp}",
            s.name
        );
        assert!(
            exp.final_score <= s.config.threshold,
            "{}: repaired score {}",
            s.name,
            exp.final_score
        );
    }
}

#[test]
fn greedy_explanations_are_minimal() {
    for mut s in scenarios() {
        let name = s.name;
        let exp = explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // Definition 11: dropping any PVT from the explanation must
        // leave the malfunction above τ. Re-check by recomputing the
        // reduced compositions.
        if exp.pvts.len() <= 1 {
            continue; // singleton explanations are trivially minimal
        }
        use dataprism::pvt::apply_composition;
        use rand::SeedableRng;
        for drop in 0..exp.pvts.len() {
            let subset: Vec<&dataprism::Pvt> = exp
                .pvts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, p)| p)
                .collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let (reduced, _) = apply_composition(&subset, &s.d_fail, &mut rng).unwrap();
            let score = s.system.malfunction(&reduced);
            assert!(
                score > s.config.threshold,
                "{name}: dropping PVT {} still passes ({score})",
                exp.pvts[drop].profile
            );
        }
    }
}

#[test]
fn group_testing_matches_fig7_applicability() {
    // Sentiment and Income: applicable and resolving.
    for mut s in [
        sentiment::scenario_with_size(400, 42),
        income::scenario_with_size(300, 42),
    ] {
        let name = s.name;
        for strategy in [PartitionStrategy::MinBisection, PartitionStrategy::Random] {
            let exp =
                explain_group_test(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config, strategy)
                    .unwrap_or_else(|e| panic!("{name} ({strategy:?}): {e}"));
            assert!(exp.resolved, "{name} ({strategy:?}): {exp}");
        }
    }
    // Cardiovascular: the A3 check must fire (Fig 7's "NA").
    let mut s = cardio::scenario_with_size(400, 42);
    let err = explain_group_test(
        s.system.as_mut(),
        &s.d_fail,
        &s.d_pass,
        &s.config,
        PartitionStrategy::MinBisection,
    )
    .expect_err("cardio violates A3");
    assert!(matches!(err, PrismError::AssumptionViolated(_)), "{err}");
}

#[test]
fn greedy_beats_bugdoc_on_interventions() {
    for make in [
        || sentiment::scenario_with_size(400, 42),
        || income::scenario_with_size(300, 42),
    ] {
        let mut s = make();
        let name = s.name;
        let greedy = explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut s2 = make();
        let candidates = all_candidate_pvts(&s2.d_pass, &s2.config.discovery);
        let bugdoc = explain_bugdoc(
            s2.system.as_mut(),
            &s2.d_fail,
            &s2.d_pass,
            &candidates,
            &s2.config,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            greedy.interventions < bugdoc.interventions,
            "{name}: GRD {} vs BugDoc {}",
            greedy.interventions,
            bugdoc.interventions
        );
    }
}

#[test]
fn repaired_dataset_keeps_schema() {
    for mut s in scenarios() {
        let name = s.name;
        let exp = explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            exp.repaired.schema(),
            s.d_fail.schema(),
            "{name}: transformations must preserve the schema"
        );
        assert!(exp.repaired.n_rows() > 0);
    }
}
