//! Property tests locking down the copy-on-write chunked frame
//! against an eager-materialization oracle:
//!
//! - any composed transform sequence applied to a CoW frame (whose
//!   chunks are aliased by live clones, forcing the copy-on-write
//!   path) is bit-identical — values, validity bitmaps, fingerprints,
//!   contingency tables — to the same sequence applied to an eager
//!   deep copy that shares no chunks (refcount-1, mutate-in-place
//!   path);
//! - the original frame and its clones are never corrupted by writes
//!   through an overlay;
//! - two overlays over the same shared chunks can be mutated
//!   independently without leaking writes into each other or the base;
//! - untouched columns keep sharing chunks with the base (the CoW
//!   refactor's memory guarantee), while deep copies share none;
//! - exact `CHUNK_ROWS` and bitmap-word boundary lengths round-trip.

use dataprism::profile::OutlierSpec;
use dataprism::transform::{ImputeStrategy, OutlierRepair, Transform};
use dataprism::{fingerprint, fingerprint_reference};
use dp_frame::groupby::ContingencyTable;
use dp_frame::{CmpOp, Column, DType, DataFrame, Predicate, CHUNK_ROWS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic mixed-dtype frame: one column per storage dtype,
/// with nulls sprinkled into each.
fn build_frame(len: usize, seed: u64) -> DataFrame {
    let mut rng = StdRng::seed_from_u64(seed);
    let nums: Vec<Option<f64>> = (0..len)
        .map(|_| {
            if rng.gen_range(0..5usize) == 0 {
                None
            } else {
                Some(rng.gen_range(-100.0f64..100.0))
            }
        })
        .collect();
    let counts: Vec<Option<i64>> = (0..len)
        .map(|_| {
            if rng.gen_range(0..7usize) == 0 {
                None
            } else {
                Some(rng.gen_range(-50i64..50))
            }
        })
        .collect();
    let flags: Vec<Option<bool>> = (0..len)
        .map(|_| match rng.gen_range(0..4usize) {
            0 => None,
            n => Some(n == 1),
        })
        .collect();
    let cats = ["x", "y", "z", "w"];
    let cat = |rng: &mut StdRng| -> Vec<Option<String>> {
        (0..len)
            .map(|_| match rng.gen_range(0..6usize) {
                0 => None,
                n => Some(cats[(n - 1) % cats.len()].to_string()),
            })
            .collect()
    };
    let cat_a = cat(&mut rng);
    let cat_b = cat(&mut rng);
    let texts: Vec<Option<String>> = (0..len)
        .map(|_| {
            if rng.gen_range(0..8usize) == 0 {
                None
            } else {
                Some(format!("t{}", rng.gen_range(0..1000usize)))
            }
        })
        .collect();
    DataFrame::from_columns(vec![
        Column::from_floats("num", nums),
        Column::from_ints("count", counts),
        Column::from_bools("flag", flags),
        Column::from_strings("cat", DType::Categorical, cat_a),
        Column::from_strings("cat2", DType::Categorical, cat_b),
        Column::from_strings("txt", DType::Text, texts),
    ])
    .expect("mixed frame builds")
}

/// Rebuild `df` value-by-value: the eager-materialization oracle.
/// The result holds refcount-1 chunks and shares nothing with `df`,
/// so subsequent writes take the mutate-in-place fast path rather
/// than copy-on-write.
fn deep_copy(df: &DataFrame) -> DataFrame {
    let cols = df
        .columns()
        .iter()
        .map(|c| {
            Column::from_values(
                c.name(),
                c.dtype(),
                (0..c.len()).map(|i| c.get(i)).collect(),
            )
            .expect("deep copy preserves dtypes")
        })
        .collect();
    DataFrame::from_columns(cols).expect("deep copy rebuilds")
}

fn shares_any_chunk(a: &Column, b: &Column) -> bool {
    a.chunks()
        .iter()
        .any(|ca| b.chunks().iter().any(|cb| Arc::ptr_eq(ca, cb)))
}

fn assert_no_shared_chunks(a: &DataFrame, b: &DataFrame) {
    for (ca, cb) in a.columns().iter().zip(b.columns()) {
        assert!(
            !shares_any_chunk(ca, cb),
            "column {} unexpectedly shares a chunk",
            ca.name()
        );
    }
}

/// Full bit-identity check: schema, per-cell values, validity
/// bitmaps (word-for-word, via `Bitmap: PartialEq`), null counts,
/// and both fingerprint implementations. NaN never reaches storage
/// (it is normalized to NULL at column boundaries), so `Value`
/// equality is exact.
fn assert_bit_identical(a: &DataFrame, b: &DataFrame, what: &str) {
    assert_eq!(a.schema(), b.schema(), "{what}: schema");
    assert_eq!(a.n_rows(), b.n_rows(), "{what}: row count");
    for (ca, cb) in a.columns().iter().zip(b.columns()) {
        assert_eq!(
            ca.validity_mask(),
            cb.validity_mask(),
            "{what}: validity bitmap of {}",
            ca.name()
        );
        assert_eq!(
            ca.null_count(),
            cb.null_count(),
            "{what}: null count of {}",
            ca.name()
        );
        for i in 0..ca.len() {
            assert_eq!(ca.get(i), cb.get(i), "{what}: {}[{i}]", ca.name());
        }
    }
    assert_eq!(fingerprint(a), fingerprint(b), "{what}: fingerprint");
    assert_eq!(
        fingerprint_reference(a),
        fingerprint_reference(b),
        "{what}: reference fingerprint"
    );
}

fn assert_same_contingency(a: &DataFrame, b: &DataFrame, what: &str) {
    let ta = ContingencyTable::from_frame(a, "cat", "cat2").expect("contingency");
    let tb = ContingencyTable::from_frame(b, "cat", "cat2").expect("contingency");
    assert_eq!(ta, tb, "{what}: contingency table cat×cat2");
}

/// Pool of transforms covering deterministic single-column writes,
/// null-flipping imputation, stochastic row resampling (rebuilds
/// every column), and a conditional (masked) write.
fn transform_pool() -> Vec<Transform> {
    vec![
        Transform::Winsorize {
            attr: "num".into(),
            lb: -25.0,
            ub: 25.0,
        },
        Transform::LinearRescale {
            attr: "num".into(),
            lb: 0.0,
            ub: 1.0,
        },
        Transform::Impute {
            attr: "num".into(),
            strategy: ImputeStrategy::Central,
        },
        Transform::Impute {
            attr: "cat".into(),
            strategy: ImputeStrategy::Mode,
        },
        Transform::ReplaceOutliers {
            attr: "num".into(),
            detector: OutlierSpec::ZScore(2.0),
            strategy: OutlierRepair::Clamp,
        },
        Transform::ResampleSelectivity {
            predicate: Predicate::cmp("cat", CmpOp::Eq, "x"),
            theta: 0.4,
        },
        Transform::Conditional {
            condition: Predicate::cmp("cat2", CmpOp::Eq, "y"),
            inner: Box::new(Transform::Winsorize {
                attr: "count".into(),
                lb: -10.0,
                ub: 10.0,
            }),
        },
    ]
}

/// Draw a composition of 1–4 transforms from the pool.
fn draw_composition(seed: u64) -> Vec<Transform> {
    let pool = transform_pool();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..=4usize);
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

/// Apply `ts` sequentially, threading one seeded RNG so stochastic
/// transforms draw identically on both sides of the differential.
fn apply_seq(df: &DataFrame, ts: &[Transform], seed: u64) -> DataFrame {
    let mut out = df.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    for t in ts {
        out = t.apply(&out, &mut rng).expect("transform applies").0;
    }
    out
}

proptest! {
    // The core differential: composed transforms through the CoW
    // path (chunks aliased by a live clone) equal the same
    // composition through eagerly materialized refcount-1 chunks,
    // and neither the base frame nor its clone is disturbed.
    #[test]
    fn composed_transforms_match_eager_materialization(
        len in prop::sample::select(vec![1usize, 2, 63, 64, 65, 127, 128, 200, 300, 511]),
        frame_seed in 0u64..1_000_000,
        tf_seed in 0u64..1_000_000,
        rng_seed in 0u64..1_000_000,
    ) {
        let base = build_frame(len, frame_seed);
        let snapshot = deep_copy(&base);
        // Keep a live alias so every chunk has refcount ≥ 2 and
        // writes must copy-on-write rather than mutate in place.
        let alias = base.clone();

        let eager_input = deep_copy(&base);
        assert_no_shared_chunks(&base, &eager_input);

        let ts = draw_composition(tf_seed);
        let cow_out = apply_seq(&base, &ts, rng_seed);
        let eager_out = apply_seq(&eager_input, &ts, rng_seed);

        assert_bit_identical(&cow_out, &eager_out, "cow vs eager");
        assert_same_contingency(&cow_out, &eager_out, "cow vs eager");
        // Writes through the overlays never leak into the base or
        // its alias.
        assert_bit_identical(&base, &snapshot, "base after transforms");
        assert_bit_identical(&alias, &snapshot, "alias after transforms");
    }

    // Two overlays cloned from one base, mutated through different
    // transform sequences, stay independent: each matches its own
    // eager oracle and the base is untouched.
    #[test]
    fn aliased_overlays_mutate_independently(
        len in prop::sample::select(vec![5usize, 64, 129, 300]),
        frame_seed in 0u64..1_000_000,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
    ) {
        let base = build_frame(len, frame_seed);
        let snapshot = deep_copy(&base);

        let ts_a = draw_composition(seed_a);
        let ts_b = draw_composition(seed_b);

        // Both overlays start as shallow clones sharing every chunk
        // of `base`.
        let out_a = apply_seq(&base, &ts_a, seed_a);
        let out_b = apply_seq(&base, &ts_b, seed_b);

        let want_a = apply_seq(&deep_copy(&base), &ts_a, seed_a);
        let want_b = apply_seq(&deep_copy(&base), &ts_b, seed_b);

        assert_bit_identical(&out_a, &want_a, "overlay A");
        assert_bit_identical(&out_b, &want_b, "overlay B");
        assert_bit_identical(&base, &snapshot, "base after both overlays");
    }
}

/// Columns a transform does not target keep sharing chunks with the
/// input frame — the memory guarantee that makes speculative
/// interventions cheap — while the eager oracle shares none.
#[test]
fn untouched_columns_keep_sharing_chunks() {
    let base = build_frame(300, 7);
    let t = Transform::Winsorize {
        attr: "num".into(),
        lb: -10.0,
        ub: 10.0,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let (out, changed) = t.apply(&base, &mut rng).expect("winsorize applies");
    assert!(changed > 0, "fixture must actually write");
    for name in ["count", "flag", "cat", "cat2", "txt"] {
        assert!(
            shares_any_chunk(base.column(name).unwrap(), out.column(name).unwrap()),
            "untouched column {name} should still share chunks"
        );
    }
    assert!(
        !shares_any_chunk(base.column("num").unwrap(), out.column("num").unwrap()),
        "written column must have been copied before mutation"
    );
    assert_bit_identical(&out, &apply_seq(&deep_copy(&base), &[t], 1), "cow vs eager");
}

/// Exact chunk-capacity and bitmap-word boundary lengths, pushed
/// through a fixed composition that exercises every write path
/// (masked write, null flip, full-row resample).
#[test]
fn chunk_boundary_lengths_roundtrip() {
    let ts = vec![
        Transform::Winsorize {
            attr: "num".into(),
            lb: -20.0,
            ub: 20.0,
        },
        Transform::Impute {
            attr: "num".into(),
            strategy: ImputeStrategy::Central,
        },
        Transform::ResampleSelectivity {
            predicate: Predicate::cmp("cat", CmpOp::Eq, "x"),
            theta: 0.5,
        },
    ];
    for len in [
        CHUNK_ROWS - 1,
        CHUNK_ROWS,
        CHUNK_ROWS + 1,
        CHUNK_ROWS + 63,
        CHUNK_ROWS + 64,
        2 * CHUNK_ROWS,
        2 * CHUNK_ROWS + 1,
    ] {
        let base = build_frame(len, len as u64);
        let snapshot = deep_copy(&base);
        let alias = base.clone();
        let cow_out = apply_seq(&base, &ts, 11);
        let eager_out = apply_seq(&deep_copy(&base), &ts, 11);
        assert_bit_identical(&cow_out, &eager_out, &format!("len {len}"));
        assert_same_contingency(&cow_out, &eager_out, &format!("len {len}"));
        assert_bit_identical(&base, &snapshot, &format!("base at len {len}"));
        drop(alias);
    }
}

/// Imputation flips validity bits in place; the CoW path must
/// produce word-identical bitmaps to the eager path, and deep copies
/// must reproduce validity exactly.
#[test]
fn validity_bitmaps_survive_imputation_and_deep_copy() {
    let base = build_frame(CHUNK_ROWS + 100, 23);
    let copy = deep_copy(&base);
    for (ca, cb) in base.columns().iter().zip(copy.columns()) {
        assert_eq!(ca.validity_mask(), cb.validity_mask(), "{}", ca.name());
    }
    let ts = vec![
        Transform::Impute {
            attr: "num".into(),
            strategy: ImputeStrategy::Central,
        },
        Transform::Impute {
            attr: "cat".into(),
            strategy: ImputeStrategy::Mode,
        },
    ];
    let cow_out = apply_seq(&base, &ts, 3);
    let eager_out = apply_seq(&copy, &ts, 3);
    assert_eq!(cow_out.column("num").unwrap().null_count(), 0);
    assert_eq!(cow_out.column("cat").unwrap().null_count(), 0);
    assert_bit_identical(&cow_out, &eager_out, "post-impute");
}
