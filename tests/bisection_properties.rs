//! Property-based tests (proptest) for the bisection primitives
//! behind group testing — `min_bisection`, `random_bisection`, and
//! the derived per-node RNG streams:
//!
//! - both bisections return a true partition (disjoint, covering);
//! - halves are balanced within one element;
//! - a fixed seed reproduces the split exactly;
//! - local-search min-bisection never cuts more edges than the random
//!   balanced split it starts from;
//! - derived streams canonicalize the candidate id order, so the same
//!   candidate *set* always draws the same randomness.

use dataprism::bisection::{
    min_bisection, partition_rng, random_bisection, stream_seed, APPLY_STREAM, PARTITION_STREAM,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn cut_size(l: &[usize], r: &[usize], edges: &[(usize, usize)]) -> usize {
    let ls: BTreeSet<usize> = l.iter().copied().collect();
    let rs: BTreeSet<usize> = r.iter().copied().collect();
    edges
        .iter()
        .filter(|(a, b)| (ls.contains(a) && rs.contains(b)) || (rs.contains(a) && ls.contains(b)))
        .count()
}

fn assert_balanced_partition(
    items: &[usize],
    l: &[usize],
    r: &[usize],
) -> Result<(), proptest::TestCaseError> {
    let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
    all.sort_unstable();
    let mut expect = items.to_vec();
    expect.sort_unstable();
    prop_assert_eq!(all, expect, "halves must partition the items exactly");
    prop_assert!(
        l.len().abs_diff(r.len()) <= 1,
        "halves must balance within one element ({} vs {})",
        l.len(),
        r.len()
    );
    Ok(())
}

/// Item sets with non-contiguous ids (so id value ≠ index) plus a
/// random dependency-edge set over them.
fn graph() -> impl Strategy<Value = (Vec<usize>, Vec<(usize, usize)>)> {
    (2usize..24)
        .prop_flat_map(|n| {
            (
                Just((0..n).map(|i| i * 3 + 7).collect::<Vec<usize>>()),
                prop::collection::vec((0usize..n, 0usize..n), 0..40),
            )
        })
        .prop_map(|(items, index_pairs)| {
            let edges: Vec<(usize, usize)> = index_pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (items[a], items[b]))
                .collect();
            (items, edges)
        })
}

proptest! {
    #[test]
    fn bisections_return_balanced_exact_partitions(
        graph in graph(),
        seed in 0u64..1_000,
    ) {
        let (items, edges) = graph;
        let (l, r) = min_bisection(&items, &edges, &mut StdRng::seed_from_u64(seed));
        assert_balanced_partition(&items, &l, &r)?;
        let (l, r) = random_bisection(&items, &mut StdRng::seed_from_u64(seed));
        assert_balanced_partition(&items, &l, &r)?;
    }

    #[test]
    fn fixed_seed_reproduces_the_split(
        graph in graph(),
        seed in 0u64..1_000,
    ) {
        let (items, edges) = graph;
        let a = min_bisection(&items, &edges, &mut StdRng::seed_from_u64(seed));
        let b = min_bisection(&items, &edges, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b, "min_bisection must be deterministic for a fixed seed");
        let a = random_bisection(&items, &mut StdRng::seed_from_u64(seed));
        let b = random_bisection(&items, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b, "random_bisection must be deterministic for a fixed seed");
    }

    #[test]
    fn local_search_never_cuts_more_than_the_random_split(
        graph in graph(),
        seed in 0u64..1_000,
    ) {
        let (items, edges) = graph;
        // Seeded identically, min_bisection starts from exactly the
        // split random_bisection returns and only ever improves it.
        let (ml, mr) = min_bisection(&items, &edges, &mut StdRng::seed_from_u64(seed));
        let (rl, rr) = random_bisection(&items, &mut StdRng::seed_from_u64(seed));
        prop_assert!(
            cut_size(&ml, &mr, &edges) <= cut_size(&rl, &rr, &edges),
            "local search returned a worse cut than its starting split"
        );
    }

    #[test]
    fn derived_streams_canonicalize_id_order(
        graph in graph(),
        seed in 0u64..1_000,
        rotation in 0usize..24,
    ) {
        let (items, _) = graph;
        // The partition stream is a function of the candidate *set*:
        // any permutation of the ids draws identical randomness.
        let mut permuted = items.clone();
        permuted.reverse();
        let rot = rotation % permuted.len();
        permuted.rotate_left(rot);
        let a: u64 = partition_rng(seed, &items).gen();
        let b: u64 = partition_rng(seed, &permuted).gen();
        prop_assert_eq!(a, b);
        // Distinct stream tags decorrelate: the partition draw for a
        // node never reuses the application draw of the same node.
        let mut sorted = items.clone();
        sorted.sort_unstable();
        prop_assert!(
            stream_seed(seed, PARTITION_STREAM, &sorted)
                != stream_seed(seed, APPLY_STREAM, &sorted)
        );
        // And the stream depends on the id set, not just the seed.
        let mut grown = sorted.clone();
        grown.push(sorted.last().unwrap() + 1);
        prop_assert!(
            stream_seed(seed, PARTITION_STREAM, &sorted)
                != stream_seed(seed, PARTITION_STREAM, &grown)
        );
    }
}
