//! Property tests for the cache snapshot codec.
//!
//! The snapshot format (`dp-score-cache v1`, then one
//! `<fingerprint> <score-bits>` decimal pair per line) must be
//! *exact*: save → load reproduces every entry bit for bit, for any
//! u64 fingerprint and any f64 bit pattern — including negative
//! zero, infinities, subnormals, and NaNs with arbitrary payloads
//! (a hand-edited NaN must survive the round trip unchanged, even
//! though the oracle itself never caches one).

use dataprism::ScoreCache;
use proptest::prelude::*;

/// Canonical view of a cache for NaN-safe comparison: sorted
/// `(fingerprint, score_bits)` pairs.
fn canon(cache: &ScoreCache) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = cache.iter().map(|(fp, s)| (fp, s.to_bits())).collect();
    v.sort_unstable();
    v
}

fn build(entries: &[(u64, u64)]) -> ScoreCache {
    let mut cache = ScoreCache::new();
    for &(fp, bits) in entries {
        cache.insert(fp, f64::from_bits(bits));
    }
    cache
}

proptest! {
    #[test]
    fn snapshot_save_load_round_trips_exactly(
        entries in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..48)
    ) {
        let cache = build(&entries);
        let text = cache.to_snapshot();
        let reloaded = ScoreCache::from_snapshot(&text).expect("own snapshot must load");
        prop_assert_eq!(canon(&cache), canon(&reloaded));
        // The codec is also canonical: re-encoding the reload gives
        // byte-identical text (entries are sorted by fingerprint).
        prop_assert_eq!(text, reloaded.to_snapshot());
    }

    #[test]
    fn snapshot_lines_are_raw_decimal_digit_pairs(
        entries in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 1..16)
    ) {
        // The encoding promise tests and humans rely on: after the
        // header, every line is exactly two base-10 u64s. No floats,
        // no hex, no locale surprises.
        let text = build(&entries).to_snapshot();
        let mut lines = text.lines();
        prop_assert_eq!(lines.next(), Some("dp-score-cache v1"));
        let mut prev_fp = None;
        for line in lines {
            let mut parts = line.split(' ');
            let fp: u64 = parts.next().unwrap().parse().expect("fingerprint digits");
            let _bits: u64 = parts.next().unwrap().parse().expect("score-bit digits");
            prop_assert!(parts.next().is_none(), "exactly two fields per line");
            prop_assert!(prev_fp < Some(fp), "sorted strictly by fingerprint");
            prev_fp = Some(fp);
        }
    }
}

#[test]
fn empty_cache_round_trips() {
    let cache = ScoreCache::new();
    let text = cache.to_snapshot();
    let reloaded = ScoreCache::from_snapshot(&text).unwrap();
    assert!(reloaded.is_empty());
    assert_eq!(text, reloaded.to_snapshot());
}

#[test]
fn single_entry_round_trips_for_awkward_bit_patterns() {
    for bits in [
        0u64,                // +0.0
        (-0.0f64).to_bits(), // -0.0 (distinct bits!)
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        f64::NAN.to_bits(),
        f64::NAN.to_bits() | 0xdead, // NaN with payload
        f64::MIN_POSITIVE.to_bits(),
        1, // smallest subnormal
        (0.1f64 + 0.2).to_bits(),
        u64::MAX,
    ] {
        let mut cache = ScoreCache::new();
        cache.insert(u64::MAX, f64::from_bits(bits));
        let reloaded = ScoreCache::from_snapshot(&cache.to_snapshot()).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(
            reloaded.get(u64::MAX).unwrap().to_bits(),
            bits,
            "bit pattern {bits:#018x} must survive"
        );
    }
}

#[test]
fn corrupt_snapshots_are_rejected_with_line_numbers() {
    for (text, bad_line) in [
        ("", 1),                               // no header
        ("dp-score-cache v2\n", 1),            // future version
        ("dp-score-cache v1\n1 2 3\n", 2),     // three fields
        ("dp-score-cache v1\n1\n", 2),         // one field
        ("dp-score-cache v1\nx 2\n", 2),       // non-decimal fp
        ("dp-score-cache v1\n1 2\n1 -3\n", 3), // negative bits
    ] {
        let err = ScoreCache::from_snapshot(text).expect_err(text);
        assert_eq!(err.line, bad_line, "{text:?}: {err}");
    }
}
