//! Edge-case and failure-injection integration tests: degenerate
//! datasets, hostile systems, and tiny budgets through the full
//! diagnosis pipeline.

use dataprism::{explain_greedy, DataPrism, PrismConfig, PrismError};
use dp_frame::{Column, DType, DataFrame, Value};

fn cat(name: &str, vals: &[&str]) -> Column {
    Column::from_strings(
        name,
        DType::Categorical,
        vals.iter().map(|s| Some(s.to_string())).collect(),
    )
}

#[test]
fn single_row_datasets_diagnose() {
    let pass = DataFrame::from_columns(vec![cat("target", &["1"])]).unwrap();
    let fail = DataFrame::from_columns(vec![cat("target", &["4"])]).unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
        .expect("single-row diagnosis runs");
    assert!(exp.resolved);
    assert_eq!(
        exp.repaired.cell(0, "target").unwrap(),
        Value::Str("1".into())
    );
}

#[test]
fn all_null_column_does_not_crash_discovery() {
    let pass = DataFrame::from_columns(vec![
        cat("target", &["1", "-1", "1"]),
        Column::from_floats("ghost", vec![None, None, None]),
    ])
    .unwrap();
    let fail = DataFrame::from_columns(vec![
        cat("target", &["4", "0", "4"]),
        Column::from_floats("ghost", vec![None, None, None]),
    ])
    .unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
        .expect("all-NULL columns are tolerated");
    assert!(exp.resolved);
}

#[test]
fn nan_returning_system_is_treated_as_failing() {
    // Failure injection: the system "crashes" (NaN) on every
    // transformed dataset. Diagnosis must terminate (candidates
    // exhausted) without resolving, never looping or passing.
    // Different row counts so no repair can coincide byte-for-byte
    // with the passing dataset (which would legitimately pass).
    let pass = DataFrame::from_columns(vec![cat("target", &["1", "-1", "1"])]).unwrap();
    let fail = DataFrame::from_columns(vec![cat("target", &["4", "0"])]).unwrap();
    let pass_fp = dataprism::oracle::fingerprint(&pass);
    let fail_fp = dataprism::oracle::fingerprint(&fail);
    let mut system = move |df: &DataFrame| {
        let fp = dataprism::oracle::fingerprint(df);
        if fp == pass_fp {
            0.0
        } else if fp == fail_fp {
            0.9
        } else {
            f64::NAN // everything else crashes
        }
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
        .expect("terminates despite NaN scores");
    assert!(!exp.resolved);
    assert!(exp.pvts.is_empty(), "no NaN-scored intervention is kept");
}

#[test]
fn adversarial_oscillating_system_terminates() {
    // A system whose score jumps around arbitrarily per dataset:
    // diagnosis must still terminate within the candidate set and
    // never report an unverified success.
    let pass = DataFrame::from_columns(vec![
        cat("target", &["1", "-1", "1", "-1"]),
        Column::from_ints("x", vec![Some(1), Some(2), Some(3), Some(4)]),
    ])
    .unwrap();
    let fail = DataFrame::from_columns(vec![
        cat("target", &["4", "0", "4", "0"]),
        Column::from_ints("x", vec![Some(7), Some(8), Some(9), Some(10)]),
    ])
    .unwrap();
    let pass_fp = dataprism::oracle::fingerprint(&pass);
    let mut flip = false;
    let mut system = move |df: &DataFrame| {
        if dataprism::oracle::fingerprint(df) == pass_fp {
            return 0.0;
        }
        flip = !flip;
        if flip {
            0.95
        } else {
            0.55
        }
    };
    let config = PrismConfig::with_threshold(0.2);
    let result = explain_greedy(&mut system, &fail, &pass, &config);
    match result {
        Ok(exp) => assert!(!exp.resolved || exp.final_score <= config.threshold),
        Err(PrismError::BudgetExhausted { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn facade_rejects_swapped_inputs() {
    let pass = DataFrame::from_columns(vec![cat("target", &["1", "-1"])]).unwrap();
    let fail = DataFrame::from_columns(vec![cat("target", &["4", "0"])]).unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let prism = DataPrism::with_threshold(0.2);
    // Swapped: "failing" passes, "passing" fails.
    let err = prism.diagnose(&mut system, &pass, &fail).unwrap_err();
    assert!(matches!(err, PrismError::BadInput(_)), "{err}");
}

#[test]
fn identical_rows_with_extreme_duplication_diagnose() {
    // 1000 copies of two distinct rows — duplication must not break
    // discovery statistics or transformations.
    let mut pass_vals = Vec::new();
    let mut fail_vals = Vec::new();
    for i in 0..1000 {
        pass_vals.push(Some(if i % 2 == 0 { "1" } else { "-1" }.to_string()));
        fail_vals.push(Some(if i % 2 == 0 { "4" } else { "0" }.to_string()));
    }
    let pass = DataFrame::from_columns(vec![Column::from_strings(
        "target",
        DType::Categorical,
        pass_vals,
    )])
    .unwrap();
    let fail = DataFrame::from_columns(vec![Column::from_strings(
        "target",
        DType::Categorical,
        fail_vals,
    )])
    .unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2)).unwrap();
    assert!(exp.resolved);
    assert_eq!(exp.repaired.n_rows(), 1000);
}
