//! Edge-case and failure-injection integration tests: degenerate
//! datasets, hostile systems, and tiny budgets through the full
//! diagnosis pipeline — plus degenerate candidate sets through group
//! testing (empty, singleton, disconnected dependency graph, and
//! all-no-op compositions).

use dataprism::{
    explain_greedy, explain_group_test_parallel_with_pvts, explain_group_test_with_pvts, DataPrism,
    PartitionStrategy, PrismConfig, PrismError, Profile, Pvt, Transform,
};
use dp_frame::{Column, DType, DataFrame, Value};
use std::collections::BTreeSet;

fn cat(name: &str, vals: &[&str]) -> Column {
    Column::from_strings(
        name,
        DType::Categorical,
        vals.iter().map(|s| Some(s.to_string())).collect(),
    )
}

#[test]
fn single_row_datasets_diagnose() {
    let pass = DataFrame::from_columns(vec![cat("target", &["1"])]).unwrap();
    let fail = DataFrame::from_columns(vec![cat("target", &["4"])]).unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
        .expect("single-row diagnosis runs");
    assert!(exp.resolved);
    assert_eq!(
        exp.repaired.cell(0, "target").unwrap(),
        Value::Str("1".into())
    );
}

#[test]
fn all_null_column_does_not_crash_discovery() {
    let pass = DataFrame::from_columns(vec![
        cat("target", &["1", "-1", "1"]),
        Column::from_floats("ghost", vec![None, None, None]),
    ])
    .unwrap();
    let fail = DataFrame::from_columns(vec![
        cat("target", &["4", "0", "4"]),
        Column::from_floats("ghost", vec![None, None, None]),
    ])
    .unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
        .expect("all-NULL columns are tolerated");
    assert!(exp.resolved);
}

#[test]
fn nan_returning_system_is_treated_as_failing() {
    // Failure injection: the system "crashes" (NaN) on every
    // transformed dataset. Diagnosis must terminate (candidates
    // exhausted) without resolving, never looping or passing.
    // Different row counts so no repair can coincide byte-for-byte
    // with the passing dataset (which would legitimately pass).
    let pass = DataFrame::from_columns(vec![cat("target", &["1", "-1", "1"])]).unwrap();
    let fail = DataFrame::from_columns(vec![cat("target", &["4", "0"])]).unwrap();
    let pass_fp = dataprism::oracle::fingerprint(&pass);
    let fail_fp = dataprism::oracle::fingerprint(&fail);
    let mut system = move |df: &DataFrame| {
        let fp = dataprism::oracle::fingerprint(df);
        if fp == pass_fp {
            0.0
        } else if fp == fail_fp {
            0.9
        } else {
            f64::NAN // everything else crashes
        }
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
        .expect("terminates despite NaN scores");
    assert!(!exp.resolved);
    assert!(exp.pvts.is_empty(), "no NaN-scored intervention is kept");
}

#[test]
fn adversarial_oscillating_system_terminates() {
    // A system whose score jumps around arbitrarily per dataset:
    // diagnosis must still terminate within the candidate set and
    // never report an unverified success.
    let pass = DataFrame::from_columns(vec![
        cat("target", &["1", "-1", "1", "-1"]),
        Column::from_ints("x", vec![Some(1), Some(2), Some(3), Some(4)]),
    ])
    .unwrap();
    let fail = DataFrame::from_columns(vec![
        cat("target", &["4", "0", "4", "0"]),
        Column::from_ints("x", vec![Some(7), Some(8), Some(9), Some(10)]),
    ])
    .unwrap();
    let pass_fp = dataprism::oracle::fingerprint(&pass);
    let mut flip = false;
    let mut system = move |df: &DataFrame| {
        if dataprism::oracle::fingerprint(df) == pass_fp {
            return 0.0;
        }
        flip = !flip;
        if flip {
            0.95
        } else {
            0.55
        }
    };
    let config = PrismConfig::with_threshold(0.2);
    let result = explain_greedy(&mut system, &fail, &pass, &config);
    match result {
        Ok(exp) => assert!(!exp.resolved || exp.final_score <= config.threshold),
        Err(PrismError::BudgetExhausted { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn facade_rejects_swapped_inputs() {
    let pass = DataFrame::from_columns(vec![cat("target", &["1", "-1"])]).unwrap();
    let fail = DataFrame::from_columns(vec![cat("target", &["4", "0"])]).unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let prism = DataPrism::with_threshold(0.2);
    // Swapped: "failing" passes, "passing" fails.
    let err = prism.diagnose(&mut system, &pass, &fail).unwrap_err();
    assert!(matches!(err, PrismError::BadInput(_)), "{err}");
}

#[test]
fn identical_rows_with_extreme_duplication_diagnose() {
    // 1000 copies of two distinct rows — duplication must not break
    // discovery statistics or transformations.
    let mut pass_vals = Vec::new();
    let mut fail_vals = Vec::new();
    for i in 0..1000 {
        pass_vals.push(Some(if i % 2 == 0 { "1" } else { "-1" }.to_string()));
        fail_vals.push(Some(if i % 2 == 0 { "4" } else { "0" }.to_string()));
    }
    let pass = DataFrame::from_columns(vec![Column::from_strings(
        "target",
        DType::Categorical,
        pass_vals,
    )])
    .unwrap();
    let fail = DataFrame::from_columns(vec![Column::from_strings(
        "target",
        DType::Categorical,
        fail_vals,
    )])
    .unwrap();
    let mut system = |df: &DataFrame| {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    };
    let exp = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2)).unwrap();
    assert!(exp.resolved);
    assert_eq!(exp.repaired.n_rows(), 1000);
}

// ---- degenerate group-testing candidate sets ------------------------

/// Score = fraction of `target` values outside {-1, 1}; ignores every
/// other column.
fn target_domain_score(df: &DataFrame) -> f64 {
    let col = df.column("target").unwrap();
    col.str_values()
        .iter()
        .filter(|(_, s)| *s != "-1" && *s != "1")
        .count() as f64
        / df.n_rows().max(1) as f64
}

/// A passing/failing pair with one real cause (`target` out of
/// domain) and three untouched numeric side columns for decoy PVTs.
fn gt_pass_fail() -> (DataFrame, DataFrame) {
    let mk = |targets: &[&str], base: i64| {
        let mut cols = vec![cat("target", targets)];
        for (idx, name) in ["a", "b", "c"].iter().enumerate() {
            let start = base + idx as i64 * 10;
            cols.push(Column::from_ints(
                *name,
                (0..6).map(|i| Some(start + i)).collect(),
            ));
        }
        DataFrame::from_columns(cols).unwrap()
    };
    let pass = mk(&["-1", "1", "1", "-1", "1", "-1"], 100);
    let fail = mk(&["0", "4", "4", "0", "4", "0"], 100);
    (pass, fail)
}

fn map_to_domain_pvt(id: usize, attr: &str, values: &[&str]) -> Pvt {
    let values: BTreeSet<String> = values.iter().map(|s| s.to_string()).collect();
    Pvt {
        id,
        profile: Profile::DomainCategorical {
            attr: attr.into(),
            values: values.clone(),
        },
        transform: Transform::MapToDomain {
            attr: attr.into(),
            values,
        },
    }
}

/// A decoy PVT over its own numeric column: rescaling onto a shifted
/// range really modifies the column (it is not a no-op), but the
/// system never reads it.
fn rescale_pvt(id: usize, attr: &str) -> Pvt {
    Pvt {
        id,
        profile: Profile::DomainNumeric {
            attr: attr.into(),
            lb: 0.0,
            ub: 1.0,
        },
        transform: Transform::LinearRescale {
            attr: attr.into(),
            lb: 0.0,
            ub: 1.0,
        },
    }
}

#[test]
fn group_test_rejects_empty_candidate_set() {
    let (pass, fail) = gt_pass_fail();
    let mut system = target_domain_score;
    let config = PrismConfig::with_threshold(0.2);
    let err = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        Vec::new(),
        &config,
        PartitionStrategy::MinBisection,
    )
    .unwrap_err();
    assert_eq!(err, PrismError::NoDiscriminativePvts);
    // Parallel runtimes report the identical error at every width
    // and lookahead depth.
    let factory = || target_domain_score;
    for threads in [1, 2, 8] {
        for depth in [0, 2] {
            let mut config = config.clone();
            config.num_threads = threads;
            config.gt_speculation_depth = depth;
            let err = explain_group_test_parallel_with_pvts(
                &factory,
                &fail,
                &pass,
                Vec::new(),
                &config,
                PartitionStrategy::Random,
            )
            .unwrap_err();
            assert_eq!(err, PrismError::NoDiscriminativePvts, "{threads}t/d{depth}");
        }
    }
}

#[test]
fn group_test_resolves_a_single_candidate_without_bisecting() {
    // One candidate: Alg 3 never partitions — the A3 check doubles as
    // the only intervention and the candidate is the explanation.
    let (pass, fail) = gt_pass_fail();
    let pvts = vec![map_to_domain_pvt(0, "target", &["-1", "1"])];
    let mut system = target_domain_score;
    let config = PrismConfig::with_threshold(0.2);
    let exp = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        pvts.clone(),
        &config,
        PartitionStrategy::MinBisection,
    )
    .unwrap();
    assert!(exp.resolved);
    assert_eq!(exp.pvt_ids(), vec![0]);
    assert_eq!(exp.final_score, 0.0);
    // Lookahead on a singleton frontier must be a silent no-op.
    let factory = || target_domain_score;
    let mut par_config = config.clone();
    par_config.num_threads = 8;
    par_config.gt_speculation_depth = 4;
    let par = explain_group_test_parallel_with_pvts(
        &factory,
        &fail,
        &pass,
        pvts,
        &par_config,
        PartitionStrategy::MinBisection,
    )
    .unwrap();
    assert_eq!(exp.pvt_ids(), par.pvt_ids());
    assert_eq!(exp.interventions, par.interventions);
    assert_eq!(exp.trace, par.trace);
}

#[test]
fn group_test_handles_fully_disconnected_dependency_graph() {
    // Four candidates over four disjoint attributes: the PVT
    // dependency graph has no edges, so every min-bisection cut is 0
    // and the split is driven purely by the benefit order. The decoys
    // genuinely modify their columns; only the target PVT repairs.
    let (pass, fail) = gt_pass_fail();
    let pvts = vec![
        map_to_domain_pvt(0, "target", &["-1", "1"]),
        rescale_pvt(1, "a"),
        rescale_pvt(2, "b"),
        rescale_pvt(3, "c"),
    ];
    let mut system = target_domain_score;
    let config = PrismConfig::with_threshold(0.2);
    let exp = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        pvts.clone(),
        &config,
        PartitionStrategy::MinBisection,
    )
    .unwrap();
    assert!(exp.resolved);
    assert_eq!(exp.pvt_ids(), vec![0], "only the causal PVT is kept");
    // Thread-count and depth invariance hold on edgeless graphs too.
    let factory = || target_domain_score;
    for depth in [0, 1, 4] {
        let mut par_config = config.clone();
        par_config.num_threads = 8;
        par_config.gt_speculation_depth = depth;
        let par = explain_group_test_parallel_with_pvts(
            &factory,
            &fail,
            &pass,
            pvts.clone(),
            &par_config,
            PartitionStrategy::MinBisection,
        )
        .unwrap();
        assert_eq!(exp.pvt_ids(), par.pvt_ids(), "depth {depth}");
        assert_eq!(exp.interventions, par.interventions, "depth {depth}");
        assert_eq!(exp.trace, par.trace, "depth {depth}");
    }
}

#[test]
fn group_test_reports_a3_when_every_composed_transform_is_a_noop() {
    // Candidates whose transformations all leave the failing dataset
    // untouched (its values already satisfy the target domains): the
    // composed intervention cannot reduce the malfunction, so the A3
    // applicability check must reject the run rather than recurse
    // into partitions that can never help.
    let (pass, fail) = gt_pass_fail();
    let pvts = vec![
        map_to_domain_pvt(0, "target", &["0", "4"]), // d_fail already in-domain
        Pvt {
            id: 1,
            profile: Profile::DomainNumeric {
                attr: "a".into(),
                lb: 0.0,
                ub: 1000.0,
            },
            transform: Transform::Winsorize {
                attr: "a".into(),
                lb: 0.0,
                ub: 1000.0, // every value already inside the bounds
            },
        },
    ];
    let mut system = target_domain_score;
    let config = PrismConfig::with_threshold(0.2);
    let res = explain_group_test_with_pvts(
        &mut system,
        &fail,
        &pass,
        pvts.clone(),
        &config,
        PartitionStrategy::MinBisection,
    );
    assert!(
        matches!(res, Err(PrismError::AssumptionViolated(_))),
        "{res:?}"
    );
    // The parallel runtime takes the same exit before any lookahead.
    let factory = || target_domain_score;
    let mut par_config = config.clone();
    par_config.num_threads = 8;
    par_config.gt_speculation_depth = 2;
    let par = explain_group_test_parallel_with_pvts(
        &factory,
        &fail,
        &pass,
        pvts,
        &par_config,
        PartitionStrategy::MinBisection,
    );
    assert_eq!(res.unwrap_err(), par.unwrap_err());
}
