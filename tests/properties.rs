//! Property-based tests (proptest) over the framework's core
//! invariants, crossing crate boundaries:
//!
//! - violation scores are always in `[0, 1]`;
//! - transformation postcondition (Definition 8): after applying a
//!   PVT's transformation, the violation of its profile is 0;
//! - min-bisection returns a balanced exact partition;
//! - learned text patterns accept their own training examples and
//!   their own repairs;
//! - CSV round-trips arbitrary frames;
//! - the intervention-counting oracle counts exactly the non-baseline
//!   queries.

use dataprism::profile::{OutlierSpec, Profile};
use dataprism::transform::{ImputeStrategy, OutlierRepair, Transform};
use dataprism::violation::violation;
use dataprism::{fingerprint, fingerprint_reference};
use dp_frame::{Column, DType, DataFrame, Value};
use dp_stats::Pattern;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn float_column(name: &'static str) -> impl Strategy<Value = Column> {
    prop::collection::vec(
        prop_oneof![
            3 => (-1e3f64..1e3).prop_map(Some),
            1 => Just(None),
        ],
        1..60,
    )
    .prop_map(move |vals| Column::from_floats(name, vals))
}

fn cat_column(name: &'static str) -> impl Strategy<Value = Column> {
    prop::collection::vec(
        prop_oneof![
            4 => prop::sample::select(vec!["a", "b", "c", "d", "e"])
                .prop_map(|s| Some(s.to_string())),
            1 => Just(None),
        ],
        1..60,
    )
    .prop_map(move |vals| Column::from_strings(name, DType::Categorical, vals))
}

proptest! {
    #[test]
    fn violation_is_bounded(col in float_column("x"), lb in -10.0f64..0.0, width in 0.0f64..20.0) {
        let df = DataFrame::from_columns(vec![col]).unwrap();
        for profile in [
            Profile::DomainNumeric { attr: "x".into(), lb, ub: lb + width },
            Profile::Missing { attr: "x".into(), theta: 0.1 },
            Profile::Outlier {
                attr: "x".into(),
                detector: OutlierSpec::ZScore(2.0),
                theta: 0.05,
            },
        ] {
            let v = violation(&df, &profile);
            prop_assert!((0.0..=1.0).contains(&v), "{profile}: {v}");
        }
    }

    #[test]
    fn winsorize_postcondition(col in float_column("x"), lb in -5.0f64..0.0, width in 0.1f64..10.0) {
        // Definition 8: V(T(D), P) = 0.
        let df = DataFrame::from_columns(vec![col]).unwrap();
        let ub = lb + width;
        let profile = Profile::DomainNumeric { attr: "x".into(), lb, ub };
        let transform = Transform::Winsorize { attr: "x".into(), lb, ub };
        let mut rng = StdRng::seed_from_u64(0);
        let (repaired, _) = transform.apply(&df, &mut rng).unwrap();
        prop_assert_eq!(violation(&repaired, &profile), 0.0);
        // And row count / schema are preserved.
        prop_assert_eq!(repaired.n_rows(), df.n_rows());
        prop_assert_eq!(repaired.schema(), df.schema());
    }

    #[test]
    fn linear_rescale_postcondition_and_monotonicity(col in float_column("x")) {
        let df = DataFrame::from_columns(vec![col]).unwrap();
        let n_valid = df.column("x").unwrap().f64_values().len();
        prop_assume!(n_valid >= 2);
        let profile = Profile::DomainNumeric { attr: "x".into(), lb: 0.0, ub: 1.0 };
        let transform = Transform::LinearRescale { attr: "x".into(), lb: 0.0, ub: 1.0 };
        let mut rng = StdRng::seed_from_u64(0);
        let (repaired, _) = transform.apply(&df, &mut rng).unwrap();
        prop_assert_eq!(violation(&repaired, &profile), 0.0);
        // Monotonic: value order preserved.
        let before = df.column("x").unwrap().f64_values();
        let after = repaired.column("x").unwrap().f64_values();
        for (i, j) in before.iter().zip(before.iter().skip(1)).map(|_| ()).enumerate().map(|(i, _)| (i, i + 1)) {
            if before[i].1 <= before[j].1 {
                prop_assert!(after[i].1 <= after[j].1 + 1e-9);
            }
        }
    }

    #[test]
    fn impute_postcondition(col in cat_column("c")) {
        let df = DataFrame::from_columns(vec![col]).unwrap();
        prop_assume!(df.column("c").unwrap().null_count() < df.n_rows());
        let profile = Profile::Missing { attr: "c".into(), theta: 0.0 };
        let transform = Transform::Impute { attr: "c".into(), strategy: ImputeStrategy::Central };
        let mut rng = StdRng::seed_from_u64(0);
        let (repaired, changed) = transform.apply(&df, &mut rng).unwrap();
        prop_assert_eq!(violation(&repaired, &profile), 0.0);
        prop_assert_eq!(changed, df.column("c").unwrap().null_count());
    }

    #[test]
    fn outlier_repair_reduces_outlier_fraction(col in float_column("x")) {
        let df = DataFrame::from_columns(vec![col]).unwrap();
        let profile = Profile::Outlier {
            attr: "x".into(),
            detector: OutlierSpec::ZScore(2.5),
            theta: 0.0,
        };
        let before = violation(&df, &profile);
        let transform = Transform::ReplaceOutliers {
            attr: "x".into(),
            detector: OutlierSpec::ZScore(2.5),
            strategy: OutlierRepair::Clamp,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let (repaired, _) = transform.apply(&df, &mut rng).unwrap();
        // The detector refits on the repaired data, so strict zero is
        // not guaranteed (repairing can expose new relative outliers);
        // but the violation must not increase.
        let after = violation(&repaired, &profile);
        prop_assert!(after <= before + 1e-9, "before {before}, after {after}");
    }

    #[test]
    fn pattern_accepts_training_and_repairs(examples in prop::collection::vec("[a-z]{1,6}-[0-9]{1,5}", 1..8), foreign in "[a-z0-9-]{0,12}") {
        if let Some(p) = Pattern::learn(&examples) {
            for e in &examples {
                prop_assert!(p.matches(e), "pattern /{p}/ rejects its own example {e:?}");
            }
            let repaired = p.repair(&foreign);
            prop_assert!(p.matches(&repaired), "repair {repaired:?} of {foreign:?} fails /{p}/");
        }
    }

    #[test]
    fn min_bisection_is_an_exact_balanced_partition(
        k in 1usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 0..40),
        seed in 0u64..1000,
    ) {
        let items: Vec<usize> = (0..k).collect();
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|(a, b)| a < &k && b < &k && a != b)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (l, r) = dataprism::bisection::min_bisection(&items, &edges, &mut rng);
        let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, items, "partition must cover every item exactly once");
        prop_assert!(l.len().abs_diff(r.len()) <= 1, "balanced: {} vs {}", l.len(), r.len());
    }

    #[test]
    fn csv_roundtrip(ints in prop::collection::vec(prop::option::of(-1000i64..1000), 1..30),
                     cats in prop::collection::vec(prop::option::of("[a-z]{1,8}"), 1..30)) {
        let n = ints.len().min(cats.len());
        let df = DataFrame::from_columns(vec![
            Column::from_ints("i", ints[..n].to_vec()),
            Column::from_strings("s", DType::Categorical, cats[..n].to_vec()),
        ]).unwrap();
        let mut buf = Vec::new();
        dp_frame::csv::write_csv(&df, &mut buf).unwrap();
        let back = dp_frame::csv::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        for row in 0..n {
            prop_assert_eq!(back.cell(row, "i").unwrap().to_string(),
                            df.cell(row, "i").unwrap().to_string());
            prop_assert_eq!(back.cell(row, "s").unwrap().to_string(),
                            df.cell(row, "s").unwrap().to_string());
        }
    }

    #[test]
    fn oracle_counts_non_baseline_queries(scores in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let mut i = 0usize;
        let scores2 = scores.clone();
        let mut system = move |_: &DataFrame| {
            let s = scores2[i % scores2.len()];
            i += 1;
            s
        };
        let mut oracle = dataprism::Oracle::new(&mut system, 0.5, 10_000);
        let base = DataFrame::from_columns(vec![Column::from_ints("x", vec![Some(-1)])]).unwrap();
        oracle.baseline(&base);
        for k in 0..scores.len() {
            let df = DataFrame::from_columns(vec![Column::from_ints(
                "x",
                vec![Some(k as i64)],
            )])
            .unwrap();
            oracle.intervene(&df);
        }
        oracle.intervene(&base); // baseline re-query: free
        prop_assert_eq!(oracle.interventions, scores.len());
    }
}

/// Strategy for a small mixed-type frame: one numeric, one
/// categorical column of equal length.
fn mixed_frame() -> impl Strategy<Value = DataFrame> {
    (
        prop::collection::vec(
            prop_oneof![4 => (-100.0f64..100.0).prop_map(Some), 1 => Just(None)],
            2..40,
        ),
        prop::sample::select(vec!["a", "b", "c"]),
    )
        .prop_flat_map(|(nums, _)| {
            let n = nums.len();
            (
                Just(nums),
                prop::collection::vec(
                    prop::sample::select(vec!["x", "y", "z"]).prop_map(|s| Some(s.to_string())),
                    n..=n,
                ),
            )
        })
        .prop_map(|(nums, cats)| {
            DataFrame::from_columns(vec![
                Column::from_floats("num", nums),
                Column::from_strings("cat", DType::Categorical, cats),
            ])
            .unwrap()
        })
}

proptest! {
    #[test]
    fn discovered_profiles_never_violate_their_own_dataset(df in mixed_frame()) {
        // Fig 1 discovery reads parameters off the dataset, so the
        // dataset satisfies every discovered profile (the Definition
        // 10 requirement on D_pass).
        let cfg = dataprism::DiscoveryConfig::default();
        for profile in dataprism::discovery::discover_profiles(&df, &cfg) {
            let v = violation(&df, &profile);
            prop_assert!(v < 1e-9, "{profile}: self-violation {v}");
        }
    }

    #[test]
    fn composition_satisfies_all_constituents(df in mixed_frame()) {
        // Definition 9: after composing transformations, every
        // constituent profile is satisfied (for independent local
        // repairs on disjoint concerns).
        use dataprism::pvt::{apply_composition, Pvt};
        use dataprism::transform::ImputeStrategy;
        let pvts = vec![
            Pvt {
                id: 0,
                profile: Profile::DomainNumeric { attr: "num".into(), lb: -10.0, ub: 10.0 },
                transform: Transform::Winsorize { attr: "num".into(), lb: -10.0, ub: 10.0 },
            },
            Pvt {
                id: 1,
                profile: Profile::Missing { attr: "num".into(), theta: 0.0 },
                transform: Transform::Impute { attr: "num".into(), strategy: ImputeStrategy::Central },
            },
        ];
        // Imputation needs at least one non-NULL value to compute a mean.
        prop_assume!(df.column("num").unwrap().null_count() < df.n_rows());
        let refs: Vec<&Pvt> = pvts.iter().collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (repaired, _) = apply_composition(&refs, &df, &mut rng).unwrap();
        for pvt in &pvts {
            prop_assert!(
                pvt.violation(&repaired) < 1e-9,
                "{} violated after composition", pvt.profile
            );
        }
    }

    #[test]
    fn conditional_violation_never_exceeds_slice_violation(df in mixed_frame(), lb in -50.0f64..0.0, width in 1.0f64..100.0) {
        // The conditional violation equals the inner violation on the
        // selected slice, and both are bounded.
        use dp_frame::{CmpOp, Predicate};
        let inner = Profile::DomainNumeric { attr: "num".into(), lb, ub: lb + width };
        let profile = Profile::Conditional {
            condition: Predicate::cmp("cat", CmpOp::Eq, "x"),
            inner: Box::new(inner.clone()),
        };
        let v = violation(&df, &profile);
        prop_assert!((0.0..=1.0).contains(&v));
        if let Ok(slice) = df.filter_by(&Predicate::cmp("cat", CmpOp::Eq, "x")) {
            if !slice.is_empty() {
                prop_assert!((v - violation(&slice, &inner)).abs() < 1e-12);
            } else {
                prop_assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn resample_moves_selectivity_toward_theta(df in mixed_frame(), theta in 0.05f64..0.95) {
        use dp_frame::{CmpOp, Predicate};
        let pred = Predicate::cmp("cat", CmpOp::Eq, "x");
        let before = df.selectivity(&pred).unwrap();
        // Oversampling needs at least one matching row.
        prop_assume!(before > 0.0);
        let t = Transform::ResampleSelectivity { predicate: pred.clone(), theta };
        let mut rng = StdRng::seed_from_u64(4);
        let (after_df, _) = t.apply(&df, &mut rng).unwrap();
        let after = after_df.selectivity(&pred).unwrap();
        // Integer granularity: a k-row frame can only realize
        // selectivities that are multiples of 1/k, and the ceil in
        // the resampler can overshoot by one row.
        let granularity = 1.5 / after_df.n_rows().max(1) as f64;
        prop_assert!(
            (after - theta).abs() <= (before - theta).abs().max(granularity) + 0.05,
            "selectivity {before} -> {after}, target {theta}, rows {}",
            after_df.n_rows()
        );
    }
}

// ---------------------------------------------------------------
// Buffer-level dataset fingerprint (oracle cache key). Three
// invariants: it is a pure function of the *logical* content
// (stale placeholder bytes behind NULLs are invisible), any cell
// perturbation changes it, and it induces the same equality
// classes as the slow per-cell reference implementation.
// ---------------------------------------------------------------

proptest! {
    #[test]
    fn fingerprint_is_a_function_of_logical_content(df in mixed_frame()) {
        let fp = fingerprint(&df);
        // Equal frames hash equally.
        prop_assert_eq!(fp, fingerprint(&df.clone()));
        // Writing a placeholder behind an existing NULL leaves the
        // logical content — and therefore the fingerprint — intact.
        let mut stale = df.clone();
        let n = stale.n_rows();
        let col = stale.column_mut("num").unwrap();
        if let Some(i) = (0..n).find(|&i| col.get(i).is_null()) {
            col.set(i, Value::Float(123.456)).unwrap();
            col.set(i, Value::Null).unwrap();
            prop_assert_eq!(fingerprint(&stale), fp);
            prop_assert_eq!(fingerprint_reference(&stale), fingerprint_reference(&df));
        }
    }

    #[test]
    fn fingerprint_detects_cell_perturbations(df in mixed_frame(), row in 0usize..1000, bump in 1.0f64..50.0) {
        let fp = fingerprint(&df);
        let row = row % df.n_rows();

        // Numeric perturbation (NULL slots become valid — also a change).
        let mut num = df.clone();
        let col = num.column_mut("num").unwrap();
        let new = match col.get(row) {
            Value::Float(x) => Value::Float(x + bump),
            _ => Value::Float(bump),
        };
        col.set(row, new).unwrap();
        prop_assert!(fingerprint(&num) != fp, "numeric cell change must rehash");

        // Nulling a valid cell.
        let mut nulled = df.clone();
        let col = nulled.column_mut("num").unwrap();
        if !col.get(row).is_null() {
            col.set(row, Value::Null).unwrap();
            prop_assert!(fingerprint(&nulled) != fp, "NULLing a cell must rehash");
        }

        // Categorical perturbation.
        let mut cat = df.clone();
        let col = cat.column_mut("cat").unwrap();
        let new = match col.get(row) {
            Value::Str(s) if s == "x" => Value::Str("y".into()),
            _ => Value::Str("x".into()),
        };
        col.set(row, new).unwrap();
        prop_assert!(fingerprint(&cat) != fp, "categorical cell change must rehash");
    }

    #[test]
    fn fingerprint_agrees_with_per_cell_reference(df in mixed_frame(), row in 0usize..1000, perturb in 0usize..2) {
        let perturb = perturb == 1;
        // Differential test: the buffer-level fast path and the
        // per-cell reference must agree on whether two frames are
        // the same dataset.
        let mut other = df.clone();
        if perturb {
            let row = row % other.n_rows();
            let col = other.column_mut("num").unwrap();
            let new = match col.get(row) {
                Value::Float(x) => Value::Float(x + 1.0),
                _ => Value::Float(0.5),
            };
            col.set(row, new).unwrap();
        }
        let fast = fingerprint(&df) == fingerprint(&other);
        let slow = fingerprint_reference(&df) == fingerprint_reference(&other);
        prop_assert_eq!(fast, slow, "implementations disagree on frame equality");
    }
}
