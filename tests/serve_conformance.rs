//! Warm-vs-cold conformance for the serving cache seam.
//!
//! The contract under test: seeding a run from a cross-run
//! [`ScoreCache`] — whether populated by a previous request or
//! bootstrapped from a prior run's JSONL trace — changes **nothing**
//! about the explanation. Same PVTs, same bit-patterns in every
//! score, same trace, same repaired dataset, same digest, same
//! charged-query count; only the cache counters (`cache_misses`,
//! `warm_hits`) reflect that the warm run re-evaluated the system
//! strictly less. Pinned across every case-study scenario × both
//! algorithms (GRD greedy / GT group testing) × thread widths
//! {1, 8} × warmth {cold, second-request-warm, trace-warmed}.
//!
//! The final tests run the same property end-to-end through an
//! in-process `dp_serve` daemon over real TCP: server-resident
//! namespaces, the wire `warm` op, and snapshot/restore all preserve
//! bit-identity.

use dataprism::{
    explain_greedy_parallel, explain_greedy_parallel_cached, explain_group_test_parallel,
    explain_group_test_parallel_cached, fingerprint, Explanation, PartitionStrategy, Result,
    ScoreCache, TraceConfig,
};
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, Scenario};
use dp_serve::{field_u64, is_ok, Client, ServeConfig, Server};
use dp_trace::to_jsonl;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// The moderate-size case-study set (same sizes as
/// `parallel_conformance.rs`).
fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

#[derive(Clone, Copy)]
enum Algo {
    Greedy,
    GroupTest,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Greedy => "GRD",
            Algo::GroupTest => "GT",
        }
    }
}

/// A cold run on the parallel runtime (optionally collecting trace
/// records, so the trace-warmed leg has something to replay).
fn run_cold(
    scenario: &Scenario,
    algo: Algo,
    threads: usize,
    collect_trace: bool,
) -> Result<Explanation> {
    let mut config = scenario.config.clone();
    config.num_threads = threads;
    if collect_trace {
        config.trace = TraceConfig::Collect;
    }
    match algo {
        Algo::Greedy => explain_greedy_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
        ),
        Algo::GroupTest => explain_group_test_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
            PartitionStrategy::MinBisection,
        ),
    }
}

/// A run seeded from (and exporting back into) `cache`.
fn run_cached(
    scenario: &Scenario,
    algo: Algo,
    threads: usize,
    cache: &mut ScoreCache,
) -> Result<Explanation> {
    let mut config = scenario.config.clone();
    config.num_threads = threads;
    match algo {
        Algo::Greedy => explain_greedy_parallel_cached(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
            cache,
        ),
        Algo::GroupTest => explain_group_test_parallel_cached(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
            PartitionStrategy::MinBisection,
            cache,
        ),
    }
}

/// Assert two diagnosis outcomes are bit-indistinguishable (cache
/// counters excluded by design — they are *supposed* to differ).
fn assert_identical(label: &str, cold: &Result<Explanation>, warm: &Result<Explanation>) {
    match (cold, warm) {
        (Ok(c), Ok(w)) => {
            assert_eq!(c.pvt_ids(), w.pvt_ids(), "{label}: explanation set");
            assert_eq!(c.interventions, w.interventions, "{label}: interventions");
            assert_eq!(
                c.initial_score.to_bits(),
                w.initial_score.to_bits(),
                "{label}: initial score"
            );
            assert_eq!(
                c.final_score.to_bits(),
                w.final_score.to_bits(),
                "{label}: final score"
            );
            assert_eq!(c.resolved, w.resolved, "{label}: resolved flag");
            assert_eq!(c.trace, w.trace, "{label}: trace");
            assert_eq!(
                fingerprint(&c.repaired),
                fingerprint(&w.repaired),
                "{label}: repaired dataset"
            );
            assert_eq!(c.digest(), w.digest(), "{label}: digest");
        }
        (Err(ce), Err(we)) => {
            assert_eq!(ce, we, "{label}: error value");
        }
        (c, w) => panic!("{label}: warmth changed the outcome: cold {c:?} vs warm {w:?}"),
    }
}

/// Assert the warm run was actually cheaper: same charged queries
/// (determinism — warmth must not change what the algorithm asks),
/// strictly fewer real system evaluations, and at least one hit
/// served from the seeded entries.
fn assert_warmer(label: &str, cold: &Explanation, warm: &Explanation) {
    assert_eq!(
        cold.metrics.charged_queries, warm.metrics.charged_queries,
        "{label}: charged query count must not depend on warmth"
    );
    assert!(
        warm.metrics.warm_hits > 0,
        "{label}: warm run never touched the seeded cache ({:?})",
        warm.metrics
    );
    // "Cheaper" means fewer actual system invocations: charged
    // misses plus speculative evaluations (at width > 1 most charged
    // queries are served by speculation, so misses alone can be 0
    // even cold — the sum is the honest cost).
    let cold_evals = cold.metrics.cache_misses + cold.metrics.speculative_evaluated;
    let warm_evals = warm.metrics.cache_misses + warm.metrics.speculative_evaluated;
    assert!(cold_evals > 0, "{label}: cold run evaluated nothing?");
    assert!(
        warm_evals < cold_evals,
        "{label}: warm run must re-evaluate strictly less ({warm_evals} evaluations vs cold {cold_evals})"
    );
}

#[test]
fn warm_runs_are_bit_identical_across_the_matrix() {
    for scenario in scenarios() {
        for algo in [Algo::Greedy, Algo::GroupTest] {
            for threads in THREAD_COUNTS {
                let label = format!("{} {}@{threads}t", scenario.name, algo.name());
                let cold = run_cold(&scenario, algo, threads, true);

                // Leg 1: second-request warmth. The first cached run
                // (empty seed) must equal the cold run; the second,
                // seeded with everything the first exported, must
                // equal it again — only cheaper.
                let mut cache = ScoreCache::new();
                let first = run_cached(&scenario, algo, threads, &mut cache);
                assert_identical(&format!("{label} first-cached"), &cold, &first);
                let second = run_cached(&scenario, algo, threads, &mut cache);
                assert_identical(&format!("{label} second-request"), &cold, &second);
                if let (Ok(c), Ok(w)) = (&first, &second) {
                    assert_warmer(&format!("{label} second-request"), c, w);
                }

                // Leg 2: trace-warmed. Every charged query of the
                // cold run was recorded with fingerprint and score in
                // exact encodings; replaying the JSONL must bootstrap
                // a cache that serves a bit-identical run.
                if let Ok(cold_exp) = &cold {
                    let jsonl = to_jsonl(&cold_exp.trace_records);
                    let mut warm_cache = ScoreCache::new();
                    let loaded = warm_cache
                        .warm_from_jsonl(&jsonl)
                        .expect("own trace must replay");
                    assert!(loaded > 0, "{label}: trace carried no oracle queries");
                    let warmed = run_cached(&scenario, algo, threads, &mut warm_cache);
                    assert_identical(&format!("{label} trace-warmed"), &cold, &warmed);
                    assert_warmer(
                        &format!("{label} trace-warmed"),
                        cold_exp,
                        warmed.as_ref().expect("identical to Ok cold"),
                    );
                }
            }
        }
    }
}

#[test]
fn warmth_does_not_leak_across_thread_widths() {
    // A cache exported at one width must serve a bit-identical run at
    // another: fingerprints are content hashes, not schedule hashes.
    let scenario = income::scenario_with_size(300, 7);
    let cold = run_cold(&scenario, Algo::Greedy, 8, false);
    let mut cache = ScoreCache::new();
    let at_8 = run_cached(&scenario, Algo::Greedy, 8, &mut cache);
    assert_identical("income GRD seed@8t", &cold, &at_8);
    let at_1 = run_cached(&scenario, Algo::Greedy, 1, &mut cache);
    assert_identical("income GRD 8t-warm@1t", &cold, &at_1);
    assert_warmer(
        "income GRD 8t-warm@1t",
        at_8.as_ref().unwrap(),
        at_1.as_ref().unwrap(),
    );
}

#[test]
fn daemon_round_trip_matches_in_process_diagnosis() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The daemon's "income" is income::scenario_with_size(300, 7) —
    // compute the expected digest in-process and demand the wire
    // result matches it bit for bit.
    let scenario = income::scenario_with_size(300, 7);
    let expected = run_cold(&scenario, Algo::Greedy, scenario.config.num_threads, false)
        .expect("income resolves");

    assert!(is_ok(
        &client.register("inc", "income", None, None).unwrap()
    ));
    let cold = client.diagnose("inc", "greedy", None).unwrap();
    assert!(is_ok(&cold), "{cold:?}");
    assert_eq!(
        field_u64(&cold, "digest"),
        Some(expected.digest()),
        "wire diagnosis must equal the in-process one"
    );
    assert_eq!(
        field_u64(&cold, "final_score_bits"),
        Some(expected.final_score.to_bits())
    );

    // Second request against the same namespace: identical, warm.
    let warm = client.diagnose("inc", "greedy", None).unwrap();
    assert!(is_ok(&warm), "{warm:?}");
    assert_eq!(field_u64(&warm, "digest"), Some(expected.digest()));
    assert_eq!(
        field_u64(&cold, "charged_queries"),
        field_u64(&warm, "charged_queries")
    );
    assert!(field_u64(&warm, "warm_hits").unwrap() > 0);
    assert!(field_u64(&warm, "cache_misses").unwrap() < field_u64(&cold, "cache_misses").unwrap());

    // Trace-warm a *fresh* namespace over the wire, then diagnose:
    // first request already warm.
    let traced = {
        let mut config = scenario.config.clone();
        config.trace = TraceConfig::Collect;
        explain_greedy_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
        )
        .unwrap()
    };
    assert!(is_ok(
        &client.register("inc2", "income", None, None).unwrap()
    ));
    let warmed = client
        .warm("inc2", &to_jsonl(&traced.trace_records))
        .unwrap();
    assert!(is_ok(&warmed), "{warmed:?}");
    assert!(field_u64(&warmed, "spans_loaded").unwrap() > 0);
    let first = client.diagnose("inc2", "greedy", None).unwrap();
    assert!(is_ok(&first), "{first:?}");
    assert_eq!(field_u64(&first, "digest"), Some(expected.digest()));
    assert!(field_u64(&first, "warm_hits").unwrap() > 0);
    assert!(field_u64(&first, "cache_misses").unwrap() < field_u64(&cold, "cache_misses").unwrap());

    assert!(is_ok(&client.shutdown().unwrap()));
    server.join();
}

#[test]
fn daemon_adaptive_diagnosis_matches_static_digest() {
    // The wire `mode`/`budget` overrides reach the executor: an
    // adaptive diagnosis returns the static run's digest bit for bit,
    // reports the mode it ran under, keeps its in-flight speculative
    // frames within the requested bound, and the server's stats
    // surface the per-namespace slice of the global frame budget.
    let config = ServeConfig {
        speculation_budget: Some(64),
        ..ServeConfig::default()
    };
    let max_inflight = config.max_inflight;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert!(is_ok(
        &client.register("inc", "income", None, None).unwrap()
    ));
    let static_run = client.diagnose("inc", "group_test", Some(4)).unwrap();
    assert!(is_ok(&static_run), "{static_run:?}");
    let adaptive = client
        .diagnose_with("inc", "group_test", Some(4), Some("adaptive"), Some(16))
        .unwrap();
    assert!(is_ok(&adaptive), "{adaptive:?}");
    assert_eq!(
        field_u64(&adaptive, "digest"),
        field_u64(&static_run, "digest"),
        "adaptive executor changed the explanation"
    );
    assert_eq!(
        adaptive.get("speculation").and_then(|s| s.as_str()),
        Some("adaptive")
    );
    assert!(
        field_u64(&adaptive, "peak_inflight").unwrap() <= 16 + 4,
        "{adaptive:?}"
    );

    let stats = client.stats(None).unwrap();
    assert_eq!(
        stats.get("speculation").and_then(|s| s.as_str()),
        Some("static"),
        "server default mode"
    );
    assert_eq!(
        field_u64(&stats, "namespace_frame_budget"),
        Some(64 / max_inflight as u64),
        "{stats:?}"
    );

    assert!(is_ok(&client.shutdown().unwrap()));
    server.join();
}

#[test]
fn daemon_snapshot_restore_preserves_warmth() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert!(is_ok(
        &client.register("a", "example1", None, None).unwrap()
    ));
    let cold = client.diagnose("a", "greedy", None).unwrap();
    assert!(is_ok(&cold), "{cold:?}");

    // Snapshot namespace "a", restore into a fresh namespace "b" of
    // the same system: its first diagnosis is warm and identical.
    let snapshot = client.snapshot("a").unwrap();
    assert!(is_ok(
        &client.register("b", "example1", None, None).unwrap()
    ));
    let restored = client.restore("b", &snapshot).unwrap();
    assert!(is_ok(&restored), "{restored:?}");
    assert!(field_u64(&restored, "new_cache_entries").unwrap() > 0);
    let warm = client.diagnose("b", "greedy", None).unwrap();
    assert!(is_ok(&warm), "{warm:?}");
    assert_eq!(field_u64(&warm, "digest"), field_u64(&cold, "digest"));
    assert!(field_u64(&warm, "warm_hits").unwrap() > 0);

    assert!(is_ok(&client.shutdown().unwrap()));
    server.join();
}
