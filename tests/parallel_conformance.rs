//! Conformance suite for the parallel intervention runtime.
//!
//! The contract under test: for every scenario and both algorithms
//! (GRD = greedy Algorithm 1, GT = group testing Algorithms 2–3),
//! running on the parallel runtime at any `num_threads` produces an
//! explanation **bit-for-bit identical** to the serial oracle — same
//! PVTs, same malfunction scores, same intervention count (the
//! paper's Fig 7 currency), same trace, same repaired dataset — at
//! every `num_threads` in {1, 2, 8} crossed with every
//! `gt_speculation_depth` in {0, 1, 2, 4}. Only the cache counters
//! may differ, because scheduling decides which queries become hits
//! and how much lookahead goes to waste; the rendered markdown
//! report is likewise identical modulo that one documented
//! `- oracle cache:` counter line.

use dataprism::report::markdown_report;
use dataprism::{
    explain_greedy, explain_greedy_parallel, explain_group_test, explain_group_test_parallel,
    fingerprint, Explanation, PartitionStrategy, PrismConfig, Result, SpeculationMode, System,
    SystemFactory,
};
use dp_frame::DataFrame;
use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment, synthetic, Scenario};
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const DEPTHS: [usize; 4] = [0, 1, 2, 4];

/// The moderate-size case-study set: one constructor per scenario
/// module.
fn scenarios() -> Vec<Scenario> {
    vec![
        example1::scenario(),
        sentiment::scenario_with_size(240, 11),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
        ezgo::scenario_with_size(400, 2),
        sensors::scenario_with_size(250, 4),
    ]
}

/// Strip the two report lines that are allowed to vary across runtime
/// configurations: the `- oracle cache:` hit/miss/speculation
/// counters and the `- run metrics:` summary derived from them, which
/// depend on scheduling (see the module doc of `dataprism::runtime`).
/// Everything else must match byte-for-byte.
fn normalize_report(report: &str) -> String {
    report
        .lines()
        .map(|line| {
            if line.starts_with("- oracle cache:") {
                "- oracle cache: <runtime-dependent counters>"
            } else if line.starts_with("- run metrics:") {
                "- run metrics: <runtime-dependent counters>"
            } else {
                line
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Assert two diagnosis outcomes are indistinguishable (ignoring
/// cache counters).
fn assert_identical(
    name: &str,
    threads: usize,
    serial: &Result<Explanation>,
    par: &Result<Explanation>,
) {
    match (serial, par) {
        (Ok(s), Ok(p)) => {
            assert_eq!(s.pvt_ids(), p.pvt_ids(), "{name}@{threads}: explanation set");
            assert_eq!(
                s.interventions, p.interventions,
                "{name}@{threads}: intervention count"
            );
            assert_eq!(
                s.initial_score.to_bits(),
                p.initial_score.to_bits(),
                "{name}@{threads}: initial score"
            );
            assert_eq!(
                s.final_score.to_bits(),
                p.final_score.to_bits(),
                "{name}@{threads}: final score"
            );
            assert_eq!(s.resolved, p.resolved, "{name}@{threads}: resolved flag");
            assert_eq!(s.trace, p.trace, "{name}@{threads}: trace");
            assert_eq!(
                fingerprint(&s.repaired),
                fingerprint(&p.repaired),
                "{name}@{threads}: repaired dataset"
            );
        }
        (Err(se), Err(pe)) => {
            assert_eq!(se, pe, "{name}@{threads}: error value");
        }
        (s, p) => panic!(
            "{name}@{threads}: serial and parallel disagree on success: serial {s:?} vs parallel {p:?}"
        ),
    }
}

#[test]
fn greedy_is_runtime_invariant_on_all_case_studies() {
    // GRD leg of the matrix. `gt_speculation_depth` is a group-test
    // knob; the matrix verifies it is inert for greedy at every
    // width rather than assuming so.
    for mut scenario in scenarios() {
        let serial = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
        );
        for threads in THREAD_COUNTS {
            for depth in DEPTHS {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.gt_speculation_depth = depth;
                let par = explain_greedy_parallel(
                    scenario.factory.as_ref(),
                    &scenario.d_fail,
                    &scenario.d_pass,
                    &config,
                );
                assert_identical(scenario.name, threads, &serial, &par);
            }
        }
    }
}

#[test]
fn group_test_is_runtime_invariant_on_all_case_studies() {
    // GT leg of the matrix: every (num_threads, gt_speculation_depth)
    // cell reproduces the serial explanation bit-for-bit, and the
    // rendered report matches modulo the oracle-cache counter line.
    for mut scenario in scenarios() {
        let serial = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::MinBisection,
        );
        let serial_report = serial.as_ref().ok().map(|exp| {
            normalize_report(&markdown_report(
                exp,
                &scenario.d_pass,
                &scenario.d_fail,
                scenario.config.threshold,
                &scenario.config.discovery,
            ))
        });
        for threads in THREAD_COUNTS {
            for depth in DEPTHS {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.gt_speculation_depth = depth;
                let par = explain_group_test_parallel(
                    scenario.factory.as_ref(),
                    &scenario.d_fail,
                    &scenario.d_pass,
                    &config,
                    PartitionStrategy::MinBisection,
                );
                assert_identical(scenario.name, threads, &serial, &par);
                if let (Some(expected), Ok(exp)) = (&serial_report, &par) {
                    let got = normalize_report(&markdown_report(
                        exp,
                        &scenario.d_pass,
                        &scenario.d_fail,
                        config.threshold,
                        &config.discovery,
                    ));
                    assert_eq!(
                        expected, &got,
                        "{}@{threads}t/d{depth}: report must match modulo cache line",
                        scenario.name
                    );
                }
            }
        }
    }
}

#[test]
fn random_partition_group_test_is_reproducible_across_widths() {
    // Regression test for the GrpTest baseline: `random_bisection`
    // draws from a per-node stream derived from `Config::seed` and
    // the candidate id set, so the Random partition strategy — the
    // paper's GrpTest comparison point — returns the same explanation
    // at every thread count and lookahead depth, and twice in a row.
    for mut scenario in scenarios() {
        let serial = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::Random,
        );
        let again = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::Random,
        );
        assert_identical(scenario.name, 1, &serial, &again);
        for threads in THREAD_COUNTS {
            for depth in DEPTHS {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.gt_speculation_depth = depth;
                let par = explain_group_test_parallel(
                    scenario.factory.as_ref(),
                    &scenario.d_fail,
                    &scenario.d_pass,
                    &config,
                    PartitionStrategy::Random,
                );
                assert_identical(scenario.name, threads, &serial, &par);
            }
        }
    }
}

#[test]
fn synthetic_pipelines_are_thread_count_invariant() {
    let cases: Vec<(&str, synthetic::SyntheticScenario)> = vec![
        ("single_cause", synthetic::single_cause(6, 8, 3)),
        ("interacting_cause", synthetic::interacting_cause(8, 3, 17)),
    ];
    for (name, mut sc) in cases {
        let factory = sc.factory();
        let serial_grd = dataprism::explain_greedy_with_pvts(
            &mut sc.system,
            &sc.d_fail,
            &sc.d_pass,
            sc.pvts.clone(),
            &sc.config,
        );
        let mut gt_system = sc.system.clone();
        let serial_gt = dataprism::explain_group_test_with_pvts(
            &mut gt_system,
            &sc.d_fail,
            &sc.d_pass,
            sc.pvts.clone(),
            &sc.config,
            PartitionStrategy::MinBisection,
        );
        for threads in THREAD_COUNTS {
            for depth in DEPTHS {
                let mut config = sc.config.clone();
                config.num_threads = threads;
                config.gt_speculation_depth = depth;
                let par_grd = dataprism::explain_greedy_parallel_with_pvts(
                    &factory,
                    &sc.d_fail,
                    &sc.d_pass,
                    sc.pvts.clone(),
                    &config,
                );
                assert_identical(name, threads, &serial_grd, &par_grd);
                let par_gt = dataprism::explain_group_test_parallel_with_pvts(
                    &factory,
                    &sc.d_fail,
                    &sc.d_pass,
                    sc.pvts.clone(),
                    &config,
                    PartitionStrategy::MinBisection,
                );
                assert_identical(name, threads, &serial_gt, &par_gt);
            }
        }
    }
}

#[test]
fn facade_auto_is_thread_count_invariant() {
    // The auto strategy (GT, greedy fallback on A3 violation) must
    // take the same branch and return the same result at any width.
    for mut scenario in scenarios() {
        let prism = dataprism::DataPrism::new(scenario.config.clone());
        let serial =
            prism.diagnose_auto(scenario.system.as_mut(), &scenario.d_fail, &scenario.d_pass);
        for threads in THREAD_COUNTS {
            let mut config = scenario.config.clone();
            config.num_threads = threads;
            let prism_par = dataprism::DataPrism::new(config);
            let par = prism_par.diagnose_auto_parallel(
                scenario.factory.as_ref(),
                &scenario.d_fail,
                &scenario.d_pass,
            );
            assert_identical(scenario.name, threads, &serial, &par);
        }
    }
}

#[test]
fn parallel_runs_actually_speculate() {
    // Sanity check that the parallel path is exercised: at width > 1
    // on a non-trivial scenario the workers must have performed at
    // least one speculative evaluation (otherwise the suite would
    // vacuously pass with a serial fallback).
    let scenario = income::scenario_with_size(300, 7);
    let mut config = scenario.config.clone();
    config.num_threads = 8;
    let exp = explain_greedy_parallel(
        scenario.factory.as_ref(),
        &scenario.d_fail,
        &scenario.d_pass,
        &config,
    )
    .unwrap();
    assert!(
        exp.cache.speculative > 0,
        "expected speculative work at 8 threads, got {:?}",
        exp.cache
    );
}

#[test]
fn adaptive_mode_is_bit_identical_to_static() {
    // The adaptive executor changes *which* frames are pre-scored and
    // how many may be in flight — never the serial replay — so every
    // adaptive cell must reproduce the serial explanation bit-for-bit,
    // with and without a (deliberately tight) frame budget.
    for mut scenario in scenarios() {
        let serial_gt = explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::MinBisection,
        );
        let serial_grd = explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
        );
        for threads in [2, 8] {
            for budget in [None, Some(4)] {
                let mut config = scenario.config.clone();
                config.num_threads = threads;
                config.gt_speculation_depth = 2;
                config.speculation = SpeculationMode::Adaptive;
                config.speculation_budget = budget;
                let par = explain_group_test_parallel(
                    scenario.factory.as_ref(),
                    &scenario.d_fail,
                    &scenario.d_pass,
                    &config,
                    PartitionStrategy::MinBisection,
                );
                assert_identical(scenario.name, threads, &serial_gt, &par);
            }
        }
        let mut config = scenario.config.clone();
        config.num_threads = 8;
        config.speculation = SpeculationMode::Adaptive;
        config.speculation_budget = Some(4);
        let par = explain_greedy_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
        );
        assert_identical(scenario.name, 8, &serial_grd, &par);
    }
}

/// Wraps a scenario factory so every system evaluation pays a fixed
/// injected latency — a stand-in for the paper's expensive retraining
/// pipelines.
struct SlowFactory<'a> {
    inner: &'a dyn SystemFactory,
    delay: Duration,
}

struct SlowSystem {
    inner: Box<dyn System + Send>,
    delay: Duration,
}

impl System for SlowSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.malfunction(df)
    }
}

impl SystemFactory for SlowFactory<'_> {
    fn build(&self) -> Box<dyn System + Send> {
        Box::new(SlowSystem {
            inner: self.inner.build(),
            delay: self.delay,
        })
    }
}

#[test]
fn slow_oracle_keeps_inflight_frames_within_budget() {
    // Backpressure end to end: with a slow oracle and a tight frame
    // budget, in-flight speculative frames never exceed the bound
    // (budget queued/executing plus at most one unsheddable frame per
    // worker already mid-evaluation) and the explanation still
    // matches the serial run bit-for-bit.
    // (income rather than example1: group testing on example1 rejects
    // A3, which would end the run before any speculation happens.)
    let mut scenario = income::scenario_with_size(200, 7);
    let serial = explain_group_test(
        scenario.system.as_mut(),
        &scenario.d_fail,
        &scenario.d_pass,
        &scenario.config,
        PartitionStrategy::MinBisection,
    );
    let slow = SlowFactory {
        inner: scenario.factory.as_ref(),
        delay: Duration::from_millis(2),
    };
    let budget = 6;
    let threads = 4;
    let mut config = scenario.config.clone();
    config.num_threads = threads;
    config.gt_speculation_depth = 4;
    config.speculation = SpeculationMode::Adaptive;
    config.speculation_budget = Some(budget);
    let par = explain_group_test_parallel(
        &slow,
        &scenario.d_fail,
        &scenario.d_pass,
        &config,
        PartitionStrategy::MinBisection,
    );
    assert_identical(scenario.name, threads, &serial, &par);
    let exp = par.unwrap();
    assert!(
        exp.metrics.peak_inflight <= (budget + threads) as u64,
        "peak in-flight {} exceeded budget {budget} + {threads} workers",
        exp.metrics.peak_inflight
    );
}

#[test]
fn thread_count_does_not_leak_into_config_dependent_validation() {
    // num_threads must not perturb BadInput reporting either: a
    // passing dataset that fails validation produces the same error
    // text at every width.
    let scenario = example1::scenario();
    let mut config = PrismConfig::with_threshold(0.0); // d_pass can't pass
    config.discovery = scenario.config.discovery.clone();
    let mut errs = Vec::new();
    for threads in THREAD_COUNTS {
        config.num_threads = threads;
        let res = explain_greedy_parallel(
            scenario.factory.as_ref(),
            &scenario.d_fail,
            &scenario.d_pass,
            &config,
        );
        errs.push(res.expect_err("τ = 0 must reject d_pass"));
    }
    assert!(errs.windows(2).all(|w| w[0] == w[1]), "{errs:?}");
}
