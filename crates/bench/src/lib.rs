//! # dp-bench — harness regenerating the paper's tables and figures
//!
//! Each binary regenerates one experiment (see DESIGN.md's experiment
//! index):
//!
//! - `fig7_table` — interventions & wall-clock for the five
//!   techniques on the three case studies (the paper's Fig 7).
//! - `fig6_toy` — DataPrism-GT vs traditional group testing on the
//!   8-PVT toy (Fig 6 / Example 16).
//! - `fig8_scaling` — wall-clock vs #attributes and #discriminative
//!   PVTs for GRD and GT (Fig 8).
//! - `fig9_interventions` — average #interventions vs #attributes /
//!   #PVTs / conjunction size / disjunction size (Fig 9(a)–(d)).
//! - `sec52_rank54` — the §5.2 adversarial pipeline where the cause
//!   is benefit-ranked 54th.
//!
//! This library holds the shared runner: it executes one technique
//! on one scenario and records interventions, wall-clock, resolution,
//! and whether the ground truth was found.

use dataprism::baselines::all_candidate_pvts;
use dataprism::baselines::anchor::{explain_anchor, AnchorConfig};
use dataprism::baselines::bugdoc::explain_bugdoc;
use dataprism::{
    explain_greedy, explain_greedy_with_pvts, explain_group_test, explain_group_test_with_pvts,
    PartitionStrategy, PrismError, Pvt,
};
use dp_scenarios::synthetic::SyntheticScenario;
use dp_scenarios::Scenario;
use std::time::Instant;

/// The five techniques of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// DataPrism-GRD (Algorithm 1).
    Greedy,
    /// DataPrism-GT (Algorithms 2–3 with min-bisection).
    GroupTest,
    /// BugDoc adapted to PVT configurations.
    BugDoc,
    /// Anchor adapted to PVT perturbations.
    Anchor,
    /// Traditional adaptive group testing (random bisection).
    GrpTest,
}

impl Technique {
    /// All five, in the paper's column order.
    pub fn all() -> [Technique; 5] {
        [
            Technique::Greedy,
            Technique::GroupTest,
            Technique::BugDoc,
            Technique::Anchor,
            Technique::GrpTest,
        ]
    }

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Greedy => "DataPrism-GRD",
            Technique::GroupTest => "DataPrism-GT",
            Technique::BugDoc => "BugDoc",
            Technique::Anchor => "Anchor",
            Technique::GrpTest => "GrpTest",
        }
    }
}

/// Outcome of one technique × scenario run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which technique ran.
    pub technique: Technique,
    /// Oracle interventions (the paper's primary metric). `None` when
    /// the technique is not applicable (A3 violated — the paper's
    /// "NA" cells).
    pub interventions: Option<usize>,
    /// Wall-clock seconds for the full diagnosis (discovery included).
    pub seconds: f64,
    /// Whether the malfunction was brought below τ.
    pub resolved: bool,
    /// Whether the explanation contains the planted ground truth.
    pub found_ground_truth: bool,
    /// Size of the reported explanation.
    pub explanation_size: usize,
}

impl RunResult {
    /// Paper-style rendering of the interventions cell.
    pub fn interventions_cell(&self) -> String {
        match self.interventions {
            Some(n) => n.to_string(),
            None => "NA".to_string(),
        }
    }

    /// Paper-style rendering of the time cell.
    pub fn seconds_cell(&self) -> String {
        match self.interventions {
            Some(_) => format!("{:.2}", self.seconds),
            None => "NA".to_string(),
        }
    }
}

/// Run one technique on a case-study scenario (fresh scenario each
/// call — systems are stateful).
pub fn run_case_study(mut scenario: Scenario, technique: Technique) -> RunResult {
    let start = Instant::now();
    let result = match technique {
        Technique::Greedy => explain_greedy(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
        ),
        Technique::GroupTest => explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::MinBisection,
        ),
        Technique::GrpTest => explain_group_test(
            scenario.system.as_mut(),
            &scenario.d_fail,
            &scenario.d_pass,
            &scenario.config,
            PartitionStrategy::Random,
        ),
        Technique::BugDoc => {
            let candidates = all_candidate_pvts(&scenario.d_pass, &scenario.config.discovery);
            explain_bugdoc(
                scenario.system.as_mut(),
                &scenario.d_fail,
                &scenario.d_pass,
                &candidates,
                &scenario.config,
            )
        }
        Technique::Anchor => {
            let candidates = all_candidate_pvts(&scenario.d_pass, &scenario.config.discovery);
            explain_anchor(
                scenario.system.as_mut(),
                &scenario.d_fail,
                &scenario.d_pass,
                &candidates,
                &scenario.config,
                &AnchorConfig::default(),
            )
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    match result {
        Ok(exp) => RunResult {
            technique,
            interventions: Some(exp.interventions),
            seconds,
            resolved: exp.resolved,
            found_ground_truth: scenario.explains_ground_truth(&exp),
            explanation_size: exp.pvts.len(),
        },
        Err(PrismError::AssumptionViolated(_)) => RunResult {
            technique,
            interventions: None,
            seconds,
            resolved: false,
            found_ground_truth: false,
            explanation_size: 0,
        },
        Err(e) => panic!("{} failed on {}: {e}", technique.name(), scenario.name),
    }
}

/// Run one technique on a synthetic scenario with pre-built PVTs.
pub fn run_synthetic(mut scenario: SyntheticScenario, technique: Technique) -> RunResult {
    let pvts: Vec<Pvt> = scenario.pvts.clone();
    let start = Instant::now();
    let result = match technique {
        Technique::Greedy => explain_greedy_with_pvts(
            &mut scenario.system,
            &scenario.d_fail,
            &scenario.d_pass,
            pvts,
            &scenario.config,
        ),
        Technique::GroupTest => explain_group_test_with_pvts(
            &mut scenario.system,
            &scenario.d_fail,
            &scenario.d_pass,
            pvts,
            &scenario.config,
            PartitionStrategy::MinBisection,
        ),
        Technique::GrpTest => explain_group_test_with_pvts(
            &mut scenario.system,
            &scenario.d_fail,
            &scenario.d_pass,
            pvts,
            &scenario.config,
            PartitionStrategy::Random,
        ),
        Technique::BugDoc => explain_bugdoc(
            &mut scenario.system,
            &scenario.d_fail,
            &scenario.d_pass,
            &pvts,
            &scenario.config,
        ),
        Technique::Anchor => explain_anchor(
            &mut scenario.system,
            &scenario.d_fail,
            &scenario.d_pass,
            &pvts,
            &scenario.config,
            &AnchorConfig::default(),
        ),
    };
    let seconds = start.elapsed().as_secs_f64();
    match result {
        Ok(exp) => {
            let found = scenario.covers_cause(&exp.pvt_ids());
            RunResult {
                technique,
                interventions: Some(exp.interventions),
                seconds,
                resolved: exp.resolved,
                found_ground_truth: found,
                explanation_size: exp.pvts.len(),
            }
        }
        Err(PrismError::AssumptionViolated(_)) => RunResult {
            technique,
            interventions: None,
            seconds,
            resolved: false,
            found_ground_truth: false,
            explanation_size: 0,
        },
        Err(e) => panic!("{} failed on synthetic scenario: {e}", technique.name()),
    }
}

/// Render one fixed-width table row.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_scenarios::synthetic::single_cause;

    #[test]
    fn runner_executes_every_technique_on_a_tiny_pipeline() {
        for technique in Technique::all() {
            let result = run_synthetic(single_cause(6, 6, 1), technique);
            assert!(result.interventions.is_some(), "{technique:?}");
            assert!(result.resolved, "{technique:?}: {result:?}");
            assert!(result.seconds >= 0.0);
            assert_ne!(result.interventions_cell(), "NA");
        }
    }

    #[test]
    fn na_cells_render() {
        let r = RunResult {
            technique: Technique::GroupTest,
            interventions: None,
            seconds: 1.0,
            resolved: false,
            found_ground_truth: false,
            explanation_size: 0,
        };
        assert_eq!(r.interventions_cell(), "NA");
        assert_eq!(r.seconds_cell(), "NA");
    }

    #[test]
    fn technique_names_are_paper_labels() {
        let names: Vec<&str> = Technique::all().iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "DataPrism-GRD",
                "DataPrism-GT",
                "BugDoc",
                "Anchor",
                "GrpTest"
            ]
        );
    }
}
