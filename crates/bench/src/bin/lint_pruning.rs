//! Oracle-query savings of the abstract-interpretation lint pass
//! (`dp_lint` L6/L7) on a wide-schema junk workload.
//!
//! The workload plants, per numeric attribute, one L6 equivalence
//! class (three copies of the literally identical winsorize fix) and
//! one τ-unreachable candidate (L7: the fix provably lands the whole
//! column outside its profile's region), plus a single real cause on
//! the categorical label column. Unpruned, greedy's O1 prioritization
//! charges one oracle query per junk candidate before reaching the
//! cause, and group testing bisects a candidate set four times the
//! size it needs to; with `Lint::Prune` the subsumption classes
//! collapse to their representatives and the unreachable certificates
//! drop out before any query.
//!
//! The comparison is meaningful because pruning is parity-preserving:
//! this harness **asserts** that Off and Prune land on the same
//! explanation, score bits, and repaired fingerprint, and that each
//! algorithm clears its structural savings floor (greedy explores
//! junk linearly, so >= 50%; group testing's savings are a ratio of
//! logarithms, so >= 15%). A non-zero exit is a conformance failure,
//! which is how the CI smoke job uses it.
//!
//! Usage: `cargo run --release -p dp-bench --bin lint_pruning
//! [--attrs M] [--rows N] [--smoke]`

use dataprism::{
    explain_greedy_with_pvts, explain_group_test_with_pvts, fingerprint, Explanation, Lint,
    PartitionStrategy, PrismConfig, Profile, Pvt, Transform,
};
use dp_bench::format_row;
use dp_frame::{Column, DType, DataFrame};
use std::collections::BTreeSet;

fn arg_value(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One categorical label column carrying the real corruption plus
/// `attrs` numeric junk-target columns, each deterministically filled
/// inside [3, 15] (no NULLs — the L7 certificate needs the non-null
/// mass above τ).
fn frames(attrs: usize, rows: usize) -> (DataFrame, DataFrame) {
    let label = |bad: bool| -> Column {
        let vals: Vec<Option<String>> = (0..rows)
            .map(|i| {
                let good = if i % 2 == 0 { "-1" } else { "1" };
                let corrupt = if i % 2 == 0 { "0" } else { "4" };
                Some(if bad { corrupt } else { good }.to_string())
            })
            .collect();
        Column::from_strings("target", DType::Categorical, vals)
    };
    // The passing frame's numerics are offset by 0.25 so repairing
    // the label column never reproduces D_pass bit-for-bit — every
    // probe is a genuinely charged oracle query, not a baseline
    // cache hit.
    let numeric = |a: usize, bad: bool| -> Column {
        let offset = if bad { 0.0 } else { 0.25 };
        let vals: Vec<Option<f64>> = (0..rows)
            .map(|i| Some(3.0 + offset + ((i * 7 + a * 13) % 12) as f64))
            .collect();
        Column::from_floats(format!("a{a}"), vals)
    };
    let build = |bad: bool| {
        let mut cols = vec![label(bad)];
        cols.extend((0..attrs).map(|a| numeric(a, bad)));
        DataFrame::from_columns(cols).expect("workload frame builds")
    };
    (build(false), build(true))
}

/// Per attribute: three transform-key-identical candidates (one L6
/// class) and one τ-unreachable candidate; the real cause gets the
/// highest id so greedy's attribute-degree prioritization explores
/// the junk first.
fn candidates(attrs: usize) -> Vec<Pvt> {
    let mut pvts = Vec::new();
    let mut id = 0;
    for a in 0..attrs {
        let attr = format!("a{a}");
        for _ in 0..3 {
            pvts.push(Pvt {
                id,
                profile: Profile::DomainNumeric {
                    attr: attr.clone(),
                    lb: 0.0,
                    ub: 1.0,
                },
                transform: Transform::Winsorize {
                    attr: attr.clone(),
                    lb: 0.0,
                    ub: 1.0,
                },
            });
            id += 1;
        }
        pvts.push(Pvt {
            id,
            profile: Profile::DomainNumeric {
                attr: attr.clone(),
                lb: 0.0,
                ub: 1.0,
            },
            transform: Transform::Winsorize {
                attr,
                lb: 20.0,
                ub: 30.0,
            },
        });
        id += 1;
    }
    let domain: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
    pvts.push(Pvt {
        id,
        profile: Profile::DomainCategorical {
            attr: "target".into(),
            values: domain.clone(),
        },
        transform: Transform::MapToDomain {
            attr: "target".into(),
            values: domain,
        },
    });
    pvts
}

fn run(
    algo: &str,
    lint: Lint,
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    pvts: Vec<Pvt>,
) -> Explanation {
    let mut system = |df: &DataFrame| {
        let col = df.column("target").expect("label column present");
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    };
    let mut config = PrismConfig::with_threshold(0.2);
    config.lint = lint;
    match algo {
        "grd" => explain_greedy_with_pvts(&mut system, d_fail, d_pass, pvts, &config),
        _ => explain_group_test_with_pvts(
            &mut system,
            d_fail,
            d_pass,
            pvts,
            &config,
            PartitionStrategy::MinBisection,
        ),
    }
    .expect("workload diagnosis succeeds")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let attrs = arg_value("--attrs", if smoke { 6 } else { 12 });
    let rows = arg_value("--rows", if smoke { 64 } else { 200 });
    let (d_pass, d_fail) = frames(attrs, rows);
    let n = candidates(attrs).len();
    println!(
        "lint-pruning savings: {attrs} junk attributes x {rows} rows, \
         {n} candidates ({} prunable)\n",
        n - 1 - attrs, // 2 subsumed + 1 unreachable per attribute
    );

    let widths = [8, 10, 12, 12, 12, 14];
    println!(
        "{}",
        format_row(
            &[
                "algo",
                "queries",
                "with lint",
                "saved",
                "reduction",
                "wall-clock"
            ]
            .map(String::from),
            &widths,
        )
    );
    for algo in ["grd", "gt"] {
        let timed = |lint: Lint| {
            let start = std::time::Instant::now();
            let exp = run(algo, lint, &d_pass, &d_fail, candidates(attrs));
            (exp, start.elapsed())
        };
        let (off, t_off) = timed(Lint::Off);
        let (pruned, t_pruned) = timed(Lint::Prune);

        // Parity: pruning may only remove work, never steer.
        assert_eq!(off.pvt_ids(), pruned.pvt_ids(), "{algo}: explanation set");
        assert_eq!(
            off.final_score.to_bits(),
            pruned.final_score.to_bits(),
            "{algo}: final score"
        );
        assert_eq!(
            fingerprint(&off.repaired),
            fingerprint(&pruned.repaired),
            "{algo}: repaired dataset"
        );
        assert_eq!(
            pruned.cache.lint_subsumed,
            2 * attrs,
            "{algo}: two duplicates merged per attribute"
        );
        assert_eq!(
            pruned.cache.lint_pruned, attrs,
            "{algo}: one unreachable candidate dropped per attribute"
        );

        // Greedy explores junk linearly, so pruning saves a constant
        // fraction per candidate; group testing discards non-reducing
        // halves wholesale, so its savings are a ratio of logarithms
        // and shrink as the candidate count grows.
        let floor = if algo == "grd" { 0.50 } else { 0.15 };
        let saved = off.interventions.saturating_sub(pruned.interventions);
        let reduction = saved as f64 / off.interventions.max(1) as f64;
        println!(
            "{}",
            format_row(
                &[
                    algo.to_string(),
                    format!("{}", off.interventions),
                    format!("{}", pruned.interventions),
                    format!("{saved}"),
                    format!("{:.1}%", reduction * 100.0),
                    format!(
                        "{:.1}ms -> {:.1}ms",
                        t_off.as_secs_f64() * 1e3,
                        t_pruned.as_secs_f64() * 1e3
                    ),
                ],
                &widths,
            )
        );
        assert!(
            reduction >= floor,
            "{algo}: lint pruning must save at least {:.0}% of charged queries \
             (got {:.1}%: {} -> {})",
            floor * 100.0,
            reduction * 100.0,
            off.interventions,
            pruned.interventions
        );
    }
    println!(
        "\nPARITY OK: identical explanations with lint pruning on; \
         savings cleared the per-algorithm floors (grd >= 50%, gt >= 15%)"
    );
}
