//! Warm-vs-cold serving benchmark: what a server-resident score
//! cache buys a repeat diagnosis.
//!
//! For each case-study scenario, three GRD runs through the cached
//! entry point (`explain_greedy_parallel_cached`, the seam `dp_serve`
//! drives):
//!
//! * **cold** — empty seed cache (also collects the trace);
//! * **warm** — seeded with everything the cold run exported, i.e.
//!   the second request against the same `dp_serve` namespace;
//! * **trace** — seeded only from the cold run's JSONL trace replay
//!   (`ScoreCache::warm_from_jsonl`), i.e. a fresh server
//!   bootstrapped from a prior run's `--trace` artifact.
//!
//! All three are asserted bit-identical (same `Explanation::digest`)
//! — the speedup is pure evaluation reuse, never a different search.
//! As in `parallel_scaling`, each oracle query blocks for a fixed
//! interval standing in for the external model (re)training of the
//! paper's real systems; the wall-clock ratio is what a deployment
//! with seconds-per-query systems sees.
//!
//! Usage: `cargo run --release -p dp-bench --bin warm_cache
//! [--threads N] [--query-cost-ms C]`

use dataprism::{
    explain_greedy_parallel_cached, Explanation, PrismConfig, ScoreCache, System, SystemFactory,
    TraceConfig,
};
use dp_bench::format_row;
use dp_frame::DataFrame;
use dp_scenarios::{cardio, example1, income};
use dp_trace::to_jsonl;
use std::time::{Duration, Instant};

/// Wraps a scenario's system so every malfunction query blocks for a
/// fixed interval (the stand-in for external model retraining).
struct BlockingSystem {
    inner: Box<dyn System + Send>,
    query_cost: Duration,
}

impl System for BlockingSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        std::thread::sleep(self.query_cost);
        self.inner.malfunction(df)
    }
}

struct BlockingFactory {
    inner: Box<dyn SystemFactory + Send + Sync>,
    query_cost: Duration,
}

impl SystemFactory for BlockingFactory {
    fn build(&self) -> Box<dyn System + Send> {
        Box::new(BlockingSystem {
            inner: self.inner.build(),
            query_cost: self.query_cost,
        })
    }
}

fn arg_value(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Actual system invocations a run paid for: charged misses plus
/// speculative evaluations.
fn evaluations(exp: &Explanation) -> u64 {
    exp.metrics.cache_misses + exp.metrics.speculative_evaluated
}

fn run(
    factory: &BlockingFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    base_config: &PrismConfig,
    threads: usize,
    collect_trace: bool,
    cache: &mut ScoreCache,
) -> (f64, Explanation) {
    let mut config = base_config.clone();
    config.num_threads = threads;
    if collect_trace {
        config.trace = TraceConfig::Collect;
    }
    let start = Instant::now();
    let exp = explain_greedy_parallel_cached(factory, d_fail, d_pass, &config, cache)
        .expect("case studies resolve");
    (start.elapsed().as_secs_f64(), exp)
}

fn main() {
    let threads = arg_value("--threads", 8);
    let query_cost = Duration::from_millis(arg_value("--query-cost-ms", 10) as u64);

    let scenarios = vec![
        example1::scenario(),
        income::scenario_with_size(300, 7),
        cardio::scenario_with_size(300, 5),
    ];

    println!(
        "Warm-vs-cold serving cache: {} ms blocking per oracle query, {threads} threads, GRD\n",
        query_cost.as_millis()
    );
    let widths = [26, 8, 8, 8, 9, 9, 10, 9];
    println!(
        "{}",
        format_row(
            &[
                "scenario".into(),
                "cold s".into(),
                "warm s".into(),
                "trace s".into(),
                "cold ev".into(),
                "warm ev".into(),
                "warm hits".into(),
                "speedup".into(),
            ],
            &widths
        )
    );

    let mut best = f64::MIN;
    for scenario in scenarios {
        let name = scenario.name;
        let (d_pass, d_fail, config) = (scenario.d_pass, scenario.d_fail, scenario.config);
        let factory = BlockingFactory {
            inner: scenario.factory,
            query_cost,
        };

        // Cold: empty namespace; the export stays in `namespace` —
        // exactly what a `dp_serve` system accumulates.
        let mut namespace = ScoreCache::new();
        let (cold_s, cold) = run(
            &factory,
            &d_fail,
            &d_pass,
            &config,
            threads,
            true,
            &mut namespace,
        );
        // Warm: the second request against the same namespace.
        let (warm_s, warm) = run(
            &factory,
            &d_fail,
            &d_pass,
            &config,
            threads,
            false,
            &mut namespace,
        );
        // Trace-warmed: a fresh namespace bootstrapped from the cold
        // run's JSONL trace.
        let mut replayed = ScoreCache::new();
        replayed
            .warm_from_jsonl(&to_jsonl(&cold.trace_records))
            .expect("own trace must replay");
        let (trace_s, traced) = run(
            &factory,
            &d_fail,
            &d_pass,
            &config,
            threads,
            false,
            &mut replayed,
        );

        for (leg, exp) in [("warm", &warm), ("trace", &traced)] {
            assert_eq!(
                cold.digest(),
                exp.digest(),
                "{name}/{leg}: warmth must not change the explanation"
            );
            assert!(
                evaluations(exp) < evaluations(&cold),
                "{name}/{leg}: warm run must re-evaluate strictly less"
            );
            assert!(exp.metrics.warm_hits > 0, "{name}/{leg}: no warm hits?");
        }

        let speedup = cold_s / warm_s;
        best = best.max(speedup);
        println!(
            "{}",
            format_row(
                &[
                    name.into(),
                    format!("{cold_s:.3}"),
                    format!("{warm_s:.3}"),
                    format!("{trace_s:.3}"),
                    evaluations(&cold).to_string(),
                    evaluations(&warm).to_string(),
                    warm.metrics.warm_hits.to_string(),
                    format!("{speedup:.2}x"),
                ],
                &widths
            )
        );
    }

    println!("\nbest warm-over-cold speedup: {best:.2}x");
    assert!(
        best > 1.0,
        "a warm namespace must beat a cold one when queries cost real time (got {best:.2}x)"
    );
}
