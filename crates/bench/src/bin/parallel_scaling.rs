//! Wall-clock scaling of the parallel intervention runtime on the
//! Fig 8 synthetic workloads (pre-built discriminative PVTs, exactly
//! like the `fig8_scaling` harness), plus the §5.2 rank-54
//! adversarial pipeline from the same suite — the rejection-heavy
//! regime where speculative evaluation matters most.
//!
//! Each workload runs at `num_threads = 1` and `num_threads = 8` and
//! reports end-to-end wall clock, speedup, and intervention counts.
//! The conformance contract makes the comparison meaningful: both
//! runs perform *identical* interventions (asserted below), so the
//! speedup is pure runtime parallelism, never a different search.
//!
//! The system under diagnosis blocks for a fixed interval per
//! malfunction query, modeling the paper's setting where every
//! oracle query retrains a model (flair / scikit-learn pipelines
//! taking seconds to minutes, i.e. the diagnosis thread waits on an
//! external computation). Without it the synthetic system answers in
//! nanoseconds and no intervention runtime — serial or parallel —
//! would be measurable. Parallel speedup on the blocking interval is
//! exactly what a real deployment sees, and is also the only speedup
//! observable on a single-core host; on a multi-core host the
//! parallel profile discovery adds CPU-bound scaling on top.
//!
//! Usage: `cargo run --release -p dp-bench --bin parallel_scaling
//! [--threads N] [--query-cost-ms C]`

use dataprism::{
    explain_greedy_parallel_with_pvts, explain_group_test_parallel_with_pvts, Explanation,
    PartitionStrategy, System,
};
use dp_bench::format_row;
use dp_frame::DataFrame;
use dp_scenarios::synthetic::{adversarial_rank, single_cause, SyntheticScenario, SyntheticSystem};
use std::time::{Duration, Instant};

/// A [`SyntheticSystem`] that blocks for a fixed interval per
/// malfunction query, standing in for the external model
/// (re)training of the paper's real systems under diagnosis.
#[derive(Clone)]
struct BlockingSystem {
    inner: SyntheticSystem,
    query_cost: Duration,
}

impl System for BlockingSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        std::thread::sleep(self.query_cost);
        self.inner.malfunction(df)
    }
}

fn arg_value(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(
    technique: &str,
    scenario: &SyntheticScenario,
    query_cost: Duration,
    num_threads: usize,
) -> (f64, Explanation) {
    let base = BlockingSystem {
        inner: scenario.system.clone(),
        query_cost,
    };
    let factory = move || base.clone();
    let mut config = scenario.config.clone();
    config.num_threads = num_threads;
    let start = Instant::now();
    let explanation = match technique {
        "GRD" => explain_greedy_parallel_with_pvts(
            &factory,
            &scenario.d_fail,
            &scenario.d_pass,
            scenario.pvts.clone(),
            &config,
        ),
        "GT" => explain_group_test_parallel_with_pvts(
            &factory,
            &scenario.d_fail,
            &scenario.d_pass,
            scenario.pvts.clone(),
            &config,
            PartitionStrategy::MinBisection,
        ),
        _ => unreachable!(),
    }
    .expect("scaling workloads resolve");
    (start.elapsed().as_secs_f64(), explanation)
}

fn main() {
    let threads = arg_value("--threads", 8);
    let query_cost = Duration::from_millis(arg_value("--query-cost-ms", 25) as u64);

    let workloads: Vec<(String, &str, SyntheticScenario)> = vec![
        ("fig8 m=200".into(), "GRD", single_cause(200, 200, 11)),
        ("fig8 m=200".into(), "GT", single_cause(200, 200, 11)),
        ("sec5.2 rank-54".into(), "GRD", adversarial_rank(54, 3)),
        ("sec5.2 rank-54".into(), "GT", adversarial_rank(54, 3)),
    ];

    println!(
        "Parallel intervention runtime: {} ms blocking per oracle query,\n\
         num_threads 1 vs {threads}, pre-built discriminative PVTs\n",
        query_cost.as_millis()
    );
    let widths = [16, 10, 12, 14, 9, 11];
    println!(
        "{}",
        format_row(
            &[
                "workload".into(),
                "technique".into(),
                "serial s".into(),
                format!("{threads}-thread s"),
                "speedup".into(),
                "intervs".into(),
            ],
            &widths
        )
    );

    let mut best = f64::MIN;
    for (workload, technique, scenario) in &workloads {
        let (serial_s, serial) = run(technique, scenario, query_cost, 1);
        let (par_s, par) = run(technique, scenario, query_cost, threads);

        assert_eq!(
            serial.interventions, par.interventions,
            "{workload}/{technique}: thread count must not change the intervention count"
        );
        assert_eq!(
            serial.pvt_ids(),
            par.pvt_ids(),
            "{workload}/{technique}: thread count must not change the explanation"
        );
        assert_eq!(
            serial.trace, par.trace,
            "{workload}/{technique}: thread count must not change the trace"
        );

        let speedup = serial_s / par_s;
        best = best.max(speedup);
        println!(
            "{}",
            format_row(
                &[
                    workload.clone(),
                    (*technique).into(),
                    format!("{serial_s:.3}"),
                    format!("{par_s:.3}"),
                    format!("{speedup:.2}x"),
                    serial.interventions.to_string(),
                ],
                &widths
            )
        );
    }

    println!("\nbest speedup at {threads} threads: {best:.2}x");
    // The >= 2x gate is the acceptance bar for the default 8-thread
    // configuration (what CI runs); narrower widths legitimately top
    // out lower (e.g. --threads 2 caps at 2x minus overhead).
    if threads >= 8 {
        assert!(
            best >= 2.0,
            "parallel runtime must reach >= 2x at {threads} threads (got {best:.2}x)"
        );
    }
}
