//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **Benefit scores** (observations O2/O3) on/off — measured on a
//!    scenario where attribute degrees carry no signal but the cause
//!    has the highest violation × coverage;
//! 2. **High-degree-attribute prioritization** (observation O1)
//!    on/off — measured on a scenario where benefit scores carry no
//!    signal but the cause attribute has the highest degree;
//! 3. **Make-Minimal** on/off — interventions spent vs explanation
//!    minimality, on a conjunctive cause;
//! 4. **Min-bisection vs random partitioning** in group testing
//!    (see also `fig6_toy`).
//!
//! Usage: `cargo run --release -p dp-bench --bin ablations`

use dataprism::{explain_greedy_with_pvts, explain_group_test_with_pvts, PartitionStrategy};
use dp_scenarios::synthetic::{
    ablation_benefit, ablation_o1, conjunctive_cause, SyntheticScenario,
};

fn greedy_mean(
    make: &dyn Fn(u64) -> SyntheticScenario,
    seeds: &[u64],
    use_benefit: bool,
    use_hda: bool,
    minimal: bool,
) -> (f64, f64, usize) {
    let mut interventions = 0usize;
    let mut sizes = 0usize;
    let mut resolved = 0usize;
    for &seed in seeds {
        let mut s = make(seed);
        s.config.use_benefit = use_benefit;
        s.config.use_high_degree = use_hda;
        s.config.make_minimal = minimal;
        s.config.seed = seed; // drives the uninformed ordering too
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .expect("greedy must run");
        interventions += exp.interventions;
        sizes += exp.pvts.len();
        resolved += usize::from(exp.resolved);
    }
    (
        interventions as f64 / seeds.len() as f64,
        sizes as f64 / seeds.len() as f64,
        resolved,
    )
}

fn main() {
    let seeds: Vec<u64> = (0..10).collect();
    let n = seeds.len();

    println!("Ablation 1 — benefit scores (O2/O3); 40 disc. PVTs, degrees uninformative\n");
    for (label, on) in [
        ("with benefit scores", true),
        ("without (uninformed order)", false),
    ] {
        let (iv, _, res) = greedy_mean(&|s| ablation_benefit(40, s), &seeds, on, true, true);
        println!("  {label:<30} mean interventions {iv:5.1}   resolved {res}/{n}");
    }

    println!("\nAblation 2 — high-degree priority (O1); 40 disc. PVTs, benefits uninformative\n");
    for (label, on) in [
        ("with O1 prioritization", true),
        ("without (all PVTs eligible)", false),
    ] {
        // Benefit off in both arms so only O1 varies.
        let (iv, _, res) = greedy_mean(&|s| ablation_o1(40, s), &seeds, false, on, true);
        println!("  {label:<30} mean interventions {iv:5.1}   resolved {res}/{n}");
    }

    println!("\nAblation 3 — Make-Minimal; 3-PVT conjunctive cause, 40 disc. PVTs\n");
    for (label, on) in [("with Make-Minimal", true), ("without", false)] {
        let (iv, size, res) =
            greedy_mean(&|s| conjunctive_cause(20, 40, 3, s), &seeds, true, true, on);
        println!(
            "  {label:<30} mean interventions {iv:5.1}   mean |X*| {size:3.1}   resolved {res}/{n}"
        );
    }

    println!("\nAblation 4 — group-testing partitioner; 3-PVT conjunctive cause, 40 disc. PVTs\n");
    for (label, strategy) in [
        (
            "min-bisection (DataPrism-GT)",
            PartitionStrategy::MinBisection,
        ),
        ("random (GrpTest)", PartitionStrategy::Random),
    ] {
        let mut interventions = 0usize;
        let mut resolved = 0usize;
        for &seed in &seeds {
            let mut s = conjunctive_cause(20, 40, 3, seed);
            let exp = explain_group_test_with_pvts(
                &mut s.system,
                &s.d_fail,
                &s.d_pass,
                s.pvts.clone(),
                &s.config,
                strategy,
            )
            .expect("A3 holds on synthetic pipelines");
            interventions += exp.interventions;
            resolved += usize::from(exp.resolved);
        }
        println!(
            "  {label:<30} mean interventions {:5.1}   resolved {resolved}/{n}",
            interventions as f64 / n as f64
        );
    }
}
