//! Regenerates the paper's **Fig 7**: number of interventions and
//! wall-clock time of the five techniques on the three real-world
//! case studies. "NA" means the technique detected an A3 violation
//! (group testing not applicable), exactly as in the paper's
//! Cardiovascular row.
//!
//! Usage: `cargo run --release -p dp-bench --bin fig7_table [--small]`

use dp_bench::{format_row, run_case_study, Technique};
use dp_scenarios::{cardio, income, sentiment, Scenario};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (n_sent, n_inc, n_card) = if small {
        (400, 300, 400)
    } else {
        (1500, 800, 900)
    };
    let seed = 42;

    type ScenarioMaker = Box<dyn Fn() -> Scenario>;
    let studies: Vec<(&str, ScenarioMaker)> = vec![
        (
            "Sentiment",
            Box::new(move || sentiment::scenario_with_size(n_sent, seed)),
        ),
        (
            "Income",
            Box::new(move || income::scenario_with_size(n_inc, seed)),
        ),
        (
            "Cardiovascular",
            Box::new(move || cardio::scenario_with_size(n_card, seed)),
        ),
    ];

    println!("Fig 7 — interventions and execution time per technique\n");
    let widths = [16, 14, 13, 8, 8, 8];
    let header: Vec<String> = [
        "Application",
        "DataPrism-GRD",
        "DataPrism-GT",
        "BugDoc",
        "Anchor",
        "GrpTest",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut all_rows: Vec<(String, Vec<dp_bench::RunResult>)> = Vec::new();
    for (name, make) in &studies {
        let mut results = Vec::new();
        for technique in Technique::all() {
            eprintln!("running {} × {name} ...", technique.name());
            results.push(run_case_study(make(), technique));
        }
        all_rows.push((name.to_string(), results));
    }

    println!("Number of interventions:");
    println!("{}", format_row(&header, &widths));
    for (name, results) in &all_rows {
        let mut cells = vec![name.clone()];
        cells.extend(results.iter().map(|r| r.interventions_cell()));
        println!("{}", format_row(&cells, &widths));
    }

    println!("\nExecution time (seconds):");
    println!("{}", format_row(&header, &widths));
    for (name, results) in &all_rows {
        let mut cells = vec![name.clone()];
        cells.extend(results.iter().map(|r| r.seconds_cell()));
        println!("{}", format_row(&cells, &widths));
    }

    println!("\nGround truth found / resolved:");
    println!("{}", format_row(&header, &widths));
    for (name, results) in &all_rows {
        let mut cells = vec![name.clone()];
        cells.extend(results.iter().map(|r| {
            if r.interventions.is_none() {
                "NA".to_string()
            } else {
                format!(
                    "{}{}",
                    if r.found_ground_truth { "GT" } else { "--" },
                    if r.resolved { "/ok" } else { "/un" }
                )
            }
        }));
        println!("{}", format_row(&cells, &widths));
    }
}
