//! Discovery cost on wide schemas: sketch pre-filter off vs on.
//!
//! The pairwise independence pass of §4.1 is O(m²) exact tests; on
//! the paper's ≤ 15-attribute case studies it is invisible, at a few
//! hundred attributes it dominates discovery. This harness generates
//! the [`dp_scenarios::wide`] datasets (mixed numeric/categorical
//! schema, planted correlated groups, background NULLs, five
//! discriminative corruptions), runs discriminative-PVT discovery
//! with [`Prefilter::Off`] and [`Prefilter::On`], and reports wall
//! clock, speedup, and the screening counters.
//!
//! The comparison is meaningful because the pre-filter is
//! parity-preserving: this harness **asserts** that both settings
//! discover identical profile sets on both frames and an identical
//! discriminative PVT set, and that the `On` run actually screened
//! pairs. A non-zero exit is a conformance failure, which is how the
//! CI smoke job uses it.
//!
//! Usage: `cargo run --release -p dp-bench --bin wide_schema
//! [--attrs M] [--rows N] [--repeat K] [--smoke]`

use dataprism::discovery::{discover_profiles_stats, discriminative_pvts_stats};
use dataprism::{DiscoveryConfig, DiscoveryStats, Prefilter, Pvt};
use dp_bench::format_row;
use dp_scenarios::wide::wide_schema;
use std::time::Instant;

fn arg_value(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config(prefilter: Prefilter) -> DiscoveryConfig {
    DiscoveryConfig {
        prefilter,
        ..Default::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let attrs = arg_value("--attrs", if smoke { 60 } else { 200 });
    let rows = arg_value("--rows", if smoke { 150 } else { 400 });
    let repeat = arg_value("--repeat", if smoke { 1 } else { 3 });

    println!("wide-schema discovery: {attrs} attributes x {rows} rows (best of {repeat})\n");
    let w = wide_schema(attrs, rows, 2022);

    // Parity: the screened pass must not change what is discovered.
    let timed = |df, prefilter| {
        let start = Instant::now();
        let (profiles, _) = discover_profiles_stats(df, &config(prefilter), 1);
        (profiles, start.elapsed().as_secs_f64())
    };
    let (pass_off, tp_off) = timed(&w.d_pass, Prefilter::Off);
    let (pass_on, tp_on) = timed(&w.d_pass, Prefilter::On);
    assert_eq!(pass_off, pass_on, "d_pass profile parity");
    let (fail_off, tf_off) = timed(&w.d_fail, Prefilter::Off);
    let (fail_on, tf_on) = timed(&w.d_fail, Prefilter::On);
    assert_eq!(fail_off, fail_on, "d_fail profile parity");
    println!(
        "single-frame discovery: d_pass off {tp_off:.3}s / on {tp_on:.3}s, \
         d_fail off {tf_off:.3}s / on {tf_on:.3}s ({} + {} profiles)\n",
        pass_on.len(),
        fail_on.len(),
    );

    let time = |prefilter: Prefilter| -> (f64, Vec<Pvt>, DiscoveryStats) {
        let cfg = config(prefilter);
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..repeat.max(1) {
            let start = Instant::now();
            let (pvts, stats) = discriminative_pvts_stats(&w.d_pass, &w.d_fail, &cfg, 1);
            best = best.min(start.elapsed().as_secs_f64());
            result = Some((pvts, stats));
        }
        let (pvts, stats) = result.expect("at least one repetition");
        (best, pvts, stats)
    };

    let (t_off, pvts_off, stats_off) = time(Prefilter::Off);
    let (t_on, pvts_on, stats_on) = time(Prefilter::On);

    assert_eq!(pvts_off, pvts_on, "discriminative PVT parity");
    assert_eq!(stats_off.screened(), 0, "Off must not screen");
    assert!(stats_on.screened() > 0, "On must screen on a wide schema");
    assert_eq!(
        stats_on.tests(),
        stats_off.tests(),
        "same pairs considered either way"
    );

    let widths = [12, 12, 12, 12, 12];
    println!(
        "{}",
        format_row(
            &["prefilter", "time (s)", "pair tests", "screened", "exact"].map(String::from),
            &widths,
        )
    );
    for (name, t, stats) in [("off", t_off, &stats_off), ("on", t_on, &stats_on)] {
        println!(
            "{}",
            format_row(
                &[
                    name.to_string(),
                    format!("{t:.3}"),
                    format!("{}", stats.tests()),
                    format!("{}", stats.screened()),
                    format!("{}", stats.tests() - stats.screened()),
                ],
                &widths,
            )
        );
    }
    println!(
        "\nscreened {} of {} pair tests ({} chi2, {} Pearson); \
         {} discriminative PVTs either way",
        stats_on.screened(),
        stats_on.tests(),
        stats_on.chi2_screened,
        stats_on.pearson_screened,
        pvts_on.len(),
    );
    println!(
        "speedup: {:.2}x (off {:.3}s -> on {:.3}s)",
        t_off / t_on.max(1e-9),
        t_off,
        t_on
    );
    println!("PARITY OK: identical profiles and discriminative PVTs with the pre-filter on");
}
