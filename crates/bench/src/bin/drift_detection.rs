//! Continuous-monitoring benchmark: detection lag and the cost of a
//! drift-triggered, targeted re-diagnosis versus a full-candidate
//! diagnosis of the same window.
//!
//! For each case-study scenario, a `dp_monitor::Watcher` is put over
//! the registered passing dataset and fed in-control batches
//! (subsamples of the passing data), after which the generator's
//! failing distribution is injected. Measured per scenario:
//!
//! * **detection lag** — batches between the injection and the first
//!   drift check that crosses `τ_drift` (after a one-window warm-up,
//!   the in-control phase must never cross it);
//! * **targeted vs full cost** — once the scoring window has filled
//!   with post-injection data, a targeted group-testing re-diagnosis
//!   seeded with only the drifted profiles' candidates, against a
//!   full-candidate run over the identical window. Group testing
//!   bisects the candidate set, so its probe count scales with the
//!   set it is handed — exactly the cost the targeted seeding
//!   shrinks. System evaluations and wall time for both;
//! * **digest parity** — the triggered run (through the watcher, warm
//!   cache seam and all) must be digest-identical to the offline
//!   entry point handed the same candidates.
//!
//! `--smoke` runs one scenario and exits non-zero unless every gate
//! holds: no in-control false positive, detection lag ≤ 2 batches,
//! digest parity, and targeted paying strictly fewer evaluations
//! than full.
//!
//! Usage: `cargo run --release -p dp-bench --bin drift_detection
//! [--smoke] [--batch-rows N]`

use dataprism::{
    explain_group_test_parallel_with_pvts, Explanation, PartitionStrategy, ScoreCache,
};
use dp_bench::format_row;
use dp_monitor::{MonitorConfig, Watcher};
use dp_scenarios::{income, sensors, Scenario};
use dp_trace::Tracer;
use std::time::Instant;

/// Matches the serve-side default; loose enough that one failing
/// batch in a half-clean window registers.
const TAU_DRIFT: f64 = 0.1;
const CLEAN_BATCHES: usize = 4;
const MAX_FAIL_BATCHES: usize = 4;

struct Outcome {
    name: &'static str,
    lag: usize,
    false_positives: usize,
    drifted: usize,
    profiles: usize,
    targeted_queries: u64,
    full_queries: u64,
    targeted_secs: f64,
    full_secs: f64,
    digests_match: bool,
}

/// A named stream: the registered scenario plus a generator of
/// fresh-seed batches at a given row count.
type Stream = (&'static str, Scenario, Box<dyn Fn(u64) -> Scenario>);

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The in-control stream: interleaved halves of the registered
/// passing dataset (rows `i % 2 == k`), so every clean batch is an
/// exact subsample of the distribution the baseline was discovered
/// from — what a healthy pipeline re-delivering the same source
/// looks like.
fn clean_batch(scenario: &Scenario, k: usize) -> dp_frame::DataFrame {
    let n = scenario.d_pass.n_rows();
    let indices: Vec<usize> = (0..n).filter(|i| i % 2 == k % 2).collect();
    scenario.d_pass.take(&indices).expect("in-range indices")
}

/// One monitored stream: in-control batches, then the generator's
/// failing distribution at fresh seeds until detection.
fn run_stream(
    name: &'static str,
    scenario: Scenario,
    batches_of: impl Fn(u64) -> Scenario,
) -> Outcome {
    let tracer = Tracer::off();
    let mut watcher = Watcher::new(
        scenario.d_pass.clone(),
        scenario.config.clone(),
        MonitorConfig {
            tau_drift: TAU_DRIFT,
            window_batches: 2,
        },
    );
    let profiles = watcher.profiles().len();

    let mut false_positives = 0;
    for k in 0..CLEAN_BATCHES {
        watcher
            .ingest(clean_batch(&scenario, k), &tracer)
            .expect("subsample schema");
        // Warm-up: scoring starts once the window is full — a
        // half-empty window is a half-sized sample, and its noise is
        // the ramp-up's problem, not the monitor's.
        if k + 1 >= 2 && watcher.check_drift(&tracer).any_drifted() {
            false_positives += 1;
        }
    }

    let mut lag = 0;
    let mut drifted = Vec::new();
    for k in 0..MAX_FAIL_BATCHES {
        let failing = batches_of(200 + k as u64).d_fail;
        watcher.ingest(failing, &tracer).expect("generator schema");
        let report = watcher.check_drift(&tracer);
        if report.any_drifted() {
            lag = k + 1;
            drifted = report.drifted();
            break;
        }
    }
    if drifted.is_empty() {
        return Outcome {
            name,
            lag: usize::MAX,
            false_positives,
            drifted: 0,
            profiles,
            targeted_queries: 0,
            full_queries: 0,
            targeted_secs: 0.0,
            full_secs: 0.0,
            digests_match: false,
        };
    }
    // Let the window saturate with post-injection batches so the
    // escalated diagnosis sees an unambiguously failing dataset
    // (detection fires on a half-clean window; A1 needs a failing
    // one).
    watcher
        .ingest(batches_of(300).d_fail, &tracer)
        .expect("generator schema");
    let drifted = watcher.check_drift(&tracer).drifted();

    let mut cache = ScoreCache::new();
    let t0 = Instant::now();
    let targeted = watcher
        .diagnose_group_test(
            scenario.factory.as_ref(),
            &drifted,
            PartitionStrategy::MinBisection,
            &mut cache,
            &tracer,
        )
        .expect("targeted escalation resolves");
    let targeted_secs = t0.elapsed().as_secs_f64();

    let window = watcher.window_frame().expect("batches were ingested");
    let offline = explain_group_test_parallel_with_pvts(
        scenario.factory.as_ref(),
        &window,
        &scenario.d_pass,
        watcher.candidates(&drifted),
        &scenario.config,
        PartitionStrategy::MinBisection,
    )
    .expect("offline twin resolves");

    let all: Vec<usize> = (0..profiles).collect();
    let t0 = Instant::now();
    let full = explain_group_test_parallel_with_pvts(
        scenario.factory.as_ref(),
        &window,
        &scenario.d_pass,
        watcher.candidates(&all),
        &scenario.config,
        PartitionStrategy::MinBisection,
    )
    .expect("full-candidate run resolves");
    let full_secs = t0.elapsed().as_secs_f64();

    Outcome {
        name,
        lag,
        false_positives,
        drifted: drifted.len(),
        profiles,
        targeted_queries: evaluations(&targeted),
        full_queries: evaluations(&full),
        targeted_secs,
        full_secs,
        digests_match: targeted.digest() == offline.digest(),
    }
}

/// Actual system invocations a run paid for: charged misses plus
/// speculative evaluations (as in `warm_cache`).
fn evaluations(exp: &Explanation) -> u64 {
    exp.metrics.cache_misses + exp.metrics.speculative_evaluated
}

fn gate(outcome: &Outcome) -> Vec<String> {
    let mut failures = Vec::new();
    if outcome.false_positives > 0 {
        failures.push(format!(
            "{}: {} in-control drift check(s) crossed tau",
            outcome.name, outcome.false_positives
        ));
    }
    if outcome.lag > 2 {
        failures.push(format!(
            "{}: detection lag {} batches exceeds 2",
            outcome.name,
            if outcome.lag == usize::MAX {
                "∞".to_string()
            } else {
                outcome.lag.to_string()
            }
        ));
    }
    if !outcome.digests_match {
        failures.push(format!(
            "{}: triggered and offline digests diverge",
            outcome.name
        ));
    }
    if outcome.targeted_queries >= outcome.full_queries {
        failures.push(format!(
            "{}: targeted run paid {} evaluations, full run {} — no saving",
            outcome.name, outcome.targeted_queries, outcome.full_queries
        ));
    }
    failures
}

fn main() {
    let smoke = arg_flag("--smoke");
    let batch_rows = arg_value("--batch-rows", 150);

    let streams: Vec<Stream> = if smoke {
        vec![(
            "income",
            income::scenario_with_size(300, 7),
            Box::new(move |seed| income::scenario_with_size(batch_rows, seed)),
        )]
    } else {
        vec![
            (
                "income",
                income::scenario_with_size(300, 7),
                Box::new(move |seed| income::scenario_with_size(batch_rows, seed))
                    as Box<dyn Fn(u64) -> Scenario>,
            ),
            // Cardio is excluded: its drifted candidate set violates
            // GT's A3 composition assumption (the `auto` fallback's
            // territory, not a fixed-algorithm cost benchmark's).
            // Sentiment and ezgo are excluded: their culprits sit so
            // that bisection pays the same probe count from either
            // candidate set, which demonstrates nothing about
            // targeted seeding one way or the other.
            (
                "sensors",
                sensors::scenario_with_size(250, 4),
                Box::new(move |seed| sensors::scenario_with_size(batch_rows, seed)),
            ),
        ]
    };

    println!(
        "Drift detection: tau={TAU_DRIFT}, window=2 batches, {CLEAN_BATCHES} in-control batches \
         (passing-data subsamples), then injected failures of {batch_rows} rows (GT escalation)\n"
    );
    let widths = [8, 6, 6, 12, 11, 10, 10, 10, 8];
    println!(
        "{}",
        format_row(
            &[
                "scenario".into(),
                "lag".into(),
                "fp".into(),
                "drifted".into(),
                "tgt evals".into(),
                "full evals".into(),
                "tgt s".into(),
                "full s".into(),
                "digest".into(),
            ],
            &widths
        )
    );

    let mut failures = Vec::new();
    for (name, scenario, batches_of) in streams {
        let outcome = run_stream(name, scenario, batches_of);
        println!(
            "{}",
            format_row(
                &[
                    outcome.name.into(),
                    if outcome.lag == usize::MAX {
                        "none".into()
                    } else {
                        outcome.lag.to_string()
                    },
                    outcome.false_positives.to_string(),
                    format!("{}/{}", outcome.drifted, outcome.profiles),
                    outcome.targeted_queries.to_string(),
                    outcome.full_queries.to_string(),
                    format!("{:.3}", outcome.targeted_secs),
                    format!("{:.3}", outcome.full_secs),
                    if outcome.digests_match {
                        "ok"
                    } else {
                        "DIVERGED"
                    }
                    .into(),
                ],
                &widths
            )
        );
        failures.extend(gate(&outcome));
    }

    println!();
    if failures.is_empty() {
        println!("all gates hold: no false positives, lag <= 2 batches, digest parity, targeted < full evaluations");
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        if smoke {
            std::process::exit(1);
        }
    }
}
