//! Regenerates the appendix-B experiment: pipelines whose PVTs
//! **interact** (assumption A2 violated — fixing any strict subset of
//! the conjunctive cause gives no partial credit). The greedy
//! algorithm keeps no intervention and fails; **Algorithm 5**
//! (decision tree over multiple pass/fail datasets) finds the
//! conjunction.
//!
//! Usage: `cargo run --release -p dp-bench --bin appendix_b`

use dataprism::decision_tree_ext::explain_with_decision_tree;
use dataprism::explain_greedy_with_pvts;
use dp_scenarios::synthetic::interacting_cause;

fn main() {
    println!("Appendix B — interacting PVTs (all-or-nothing malfunction, A2 violated)\n");
    println!(
        "{:>6} {:>6}  {:>28}  {:>34}",
        "|X|", "|conj|", "greedy (Alg 1)", "decision tree (Alg 5)"
    );
    for (n_disc, size) in [(8usize, 2usize), (12, 3), (16, 4)] {
        // Greedy: no partial credit means nothing is kept.
        let mut s = interacting_cause(n_disc, size, 7);
        let greedy = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .expect("greedy runs (but will not resolve)");

        // Algorithm 5 "leverages multiple passing and failing
        // datasets" (appendix B): besides the passing dataset, give
        // it observed variants of the failing dataset with random
        // subsets of the corruptions repaired. These are *knowledge*,
        // not interventions — their outcomes are already known.
        let mut s2 = interacting_cause(n_disc, size, 7);
        let mut datasets = vec![s2.d_pass.clone()];
        {
            use dataprism::pvt::apply_composition;
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(1234);
            for _ in 0..3 * n_disc {
                let subset: Vec<&dataprism::Pvt> =
                    s2.pvts.iter().filter(|_| rng.gen_bool(0.5)).collect();
                let (variant, _) =
                    apply_composition(&subset, &s2.d_fail, &mut rng).expect("variant builds");
                datasets.push(variant);
            }
        }
        let tree = explain_with_decision_tree(
            &mut s2.system,
            &s2.d_fail,
            &datasets,
            &s2.pvts.clone(),
            &s2.config,
        )
        .expect("Algorithm 5 runs");

        println!(
            "{:>6} {:>6}  {:>14} intervs, {}  {:>14} intervs, {} (cause {})",
            n_disc,
            size,
            greedy.interventions,
            if greedy.resolved {
                "resolved  "
            } else {
                "UNRESOLVED"
            },
            tree.interventions,
            if tree.resolved {
                "resolved  "
            } else {
                "UNRESOLVED"
            },
            if s2.covers_cause(&tree.pvt_ids()) {
                "found"
            } else {
                "missed"
            },
        );
    }
    println!(
        "\npaper reference: appendix B — the decision-tree extension handles PVT\n\
         interactions that break the greedy/group-testing assumptions"
    );
}
