//! Regenerates the paper's **Fig 9(a)–(d)**: average number of
//! interventions for the five techniques on synthetic pipelines as
//! four parameters vary:
//!
//! - panel (a): number of attributes (4–16), single-PVT root cause;
//! - panel (b): number of discriminative PVTs (up to ~120);
//! - panel (c): size of a conjunctive root cause (1–12) with the
//!   attribute/PVT counts fixed;
//! - panel (d): size of a disjunctive root cause (1–12).
//!
//! Usage:
//! `cargo run --release -p dp-bench --bin fig9_interventions [-- --panel a|b|c|d] [--seeds N]`

use dp_bench::{format_row, run_synthetic, Technique};
use dp_scenarios::synthetic::{
    conjunctive_cause, disjunctive_cause, single_cause, SyntheticScenario,
};

fn mean_interventions(
    make: &dyn Fn(u64) -> SyntheticScenario,
    technique: Technique,
    seeds: u64,
) -> String {
    let mut total = 0usize;
    let mut n = 0usize;
    for seed in 0..seeds {
        let result = run_synthetic(make(seed * 31 + 7), technique);
        match result.interventions {
            Some(k) => {
                total += k;
                n += 1;
            }
            None => return "NA".into(),
        }
    }
    if n == 0 {
        "NA".into()
    } else {
        format!("{:.1}", total as f64 / n as f64)
    }
}

fn run_panel(
    title: &str,
    x_label: &str,
    points: &[usize],
    make: &dyn Fn(usize, u64) -> SyntheticScenario,
    seeds: u64,
) {
    println!("\n{title}\n");
    let widths = [14, 14, 13, 8, 8, 8];
    println!(
        "{}",
        format_row(
            &[
                x_label.into(),
                "DataPrism-GRD".into(),
                "DataPrism-GT".into(),
                "BugDoc".into(),
                "Anchor".into(),
                "GrpTest".into(),
            ],
            &widths
        )
    );
    for &x in points {
        let mut cells = vec![x.to_string()];
        for technique in Technique::all() {
            cells.push(mean_interventions(&|seed| make(x, seed), technique, seeds));
        }
        println!("{}", format_row(&cells, &widths));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("Fig 9 — average #interventions over {seeds} seeds per point");

    if panel == "a" || panel == "all" {
        run_panel(
            "Fig 9(a) — varying #attributes (one discriminative PVT per attribute, single cause)",
            "#attributes",
            &[4, 6, 8, 10, 12, 14, 16],
            &|m, seed| single_cause(m, m, seed),
            seeds,
        );
    }
    if panel == "b" || panel == "all" {
        run_panel(
            "Fig 9(b) — varying #discriminative PVTs (2 per attribute, single cause)",
            "#disc PVTs",
            &[10, 20, 40, 60, 80, 100, 120],
            &|k, seed| single_cause(k.div_ceil(2), k, seed),
            seeds,
        );
    }
    if panel == "c" || panel == "all" {
        run_panel(
            "Fig 9(c) — varying conjunctive-cause size (68 attributes, 136 discriminative PVTs)",
            "|conjunction|",
            &[1, 2, 4, 6, 8, 10, 12],
            &|size, seed| conjunctive_cause(68, 136, size, seed),
            seeds,
        );
    }
    if panel == "d" || panel == "all" {
        run_panel(
            "Fig 9(d) — varying disjunctive-cause size (68 attributes, 136 discriminative PVTs)",
            "|disjunction|",
            &[1, 2, 4, 6, 8, 10, 12],
            &|size, seed| disjunctive_cause(68, 136, size, seed),
            seeds,
        );
    }
    println!(
        "\npaper reference: GRD < 5 throughout (a)–(c) and orders of magnitude below the\n\
         baselines; Anchor and group testing grow with disjunction size in (d)"
    );
}
