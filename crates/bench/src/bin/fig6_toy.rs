//! Regenerates the paper's **Fig 6 / Example 16**: DataPrism-GT
//! (min-bisection partitioning) vs traditional adaptive group testing
//! (random partitioning) on the 8-PVT toy whose dependency graph is
//! the four-pair matching and whose ground truth is the disjunction
//! `{X1, X6} ∨ {X4, X8}`.
//!
//! The paper reports 10 interventions for DataPrism-GT and 14 for the
//! traditional algorithm on one execution; both are randomized, so we
//! report means over several seeds.
//!
//! Usage: `cargo run --release -p dp-bench --bin fig6_toy`

use dp_bench::{run_synthetic, Technique};
use dp_scenarios::synthetic::toy_fig6;

fn main() {
    let seeds: Vec<u64> = (0..20).collect();
    println!("Fig 6 toy — 8 PVTs, dependency pairs (X1,X4),(X2,X3),(X5,X7),(X6,X8),");
    println!(
        "ground truth {{X1,X6}} ∨ {{X4,X8}}; mean over {} seeds\n",
        seeds.len()
    );
    for technique in [Technique::GroupTest, Technique::GrpTest] {
        let mut total = 0usize;
        let mut resolved = 0usize;
        let mut found = 0usize;
        let mut counts = Vec::new();
        for &seed in &seeds {
            let result = run_synthetic(toy_fig6(seed), technique);
            let n = result.interventions.expect("A3 holds on the toy");
            total += n;
            counts.push(n);
            resolved += usize::from(result.resolved);
            found += usize::from(result.found_ground_truth);
        }
        println!(
            "{:>24}: mean {:5.1} interventions (min {}, max {}), resolved {}/{}, ground truth {}/{}",
            technique.name(),
            total as f64 / seeds.len() as f64,
            counts.iter().min().unwrap(),
            counts.iter().max().unwrap(),
            resolved,
            seeds.len(),
            found,
            seeds.len(),
        );
    }
    println!("\npaper reference: DataPrism-GT 10 vs traditional GT 14 (one execution)");
}
