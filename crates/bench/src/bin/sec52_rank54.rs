//! Regenerates the paper's **§5.2 "DataExposerGRD vs DataExposerGT"**
//! experiment: a synthetic pipeline whose ground-truth explanation is
//! a single corrupted value whose benefit estimate ranks **54th**
//! among the discriminative PVTs (observations O1–O3 all violated).
//! The paper: GRD needs 54 interventions, GT only 9.
//!
//! Usage: `cargo run --release -p dp-bench --bin sec52_rank54`

use dp_bench::{run_synthetic, Technique};
use dp_scenarios::synthetic::adversarial_rank;

fn main() {
    const RANK: usize = 54;
    println!("§5.2 adversarial pipeline — cause benefit-ranked {RANK} of {RANK}\n");
    for technique in [Technique::Greedy, Technique::GroupTest, Technique::GrpTest] {
        let result = run_synthetic(adversarial_rank(RANK, 3), technique);
        println!(
            "{:>24}: {:>4} interventions  (resolved: {}, ground truth: {}, {:.3}s)",
            technique.name(),
            result.interventions_cell(),
            result.resolved,
            result.found_ground_truth,
            result.seconds,
        );
    }
    println!("\npaper reference: DataPrism-GRD 54, DataPrism-GT 9");
}
