//! Wall-clock scaling of group testing under speculative lookahead
//! (`gt_speculation_depth`), on the workloads where GT's serial
//! bisection is most query-bound: the §5.2 rank-54 adversarial
//! pipeline and the Fig 8 wide single-cause suite.
//!
//! A serial GT run blocks on ~2 oracle queries per bisection level.
//! With lookahead depth `d`, every cold node pre-bisects `d` extra
//! levels and scores the `2^(d+2) − 2` descendant half-compositions
//! concurrently, so one speculative wave warms `d + 1` levels of the
//! recursion — wall clock approaches `ceil(jobs / threads)` waves per
//! `d + 1` levels instead of `2 (d + 1)` sequential queries.
//!
//! The conformance contract makes the comparison meaningful: every
//! (threads, depth) cell is asserted byte-identical to the
//! `num_threads = 1` run — same interventions, same explanation, same
//! trace, same repaired frame — so the speedup is pure cache warming,
//! never a different search. Only the speculative/waste counters move.
//!
//! As in `parallel_scaling`, the system under diagnosis blocks for a
//! fixed interval per malfunction query, modeling the paper's setting
//! where every oracle query retrains a model.
//!
//! Usage: `cargo run --release -p dp-bench --bin gt_scaling
//! [--threads N] [--query-cost-ms C] [--smoke] [--adaptive-smoke]`
//!
//! `--smoke` skips the full matrix and runs the CI observability
//! gate instead: rank-54 at `--threads` width with tracing off vs
//! with a collecting sink, asserting the off run (the `NullSink`
//! default) is within 2% of the collecting run's wall clock.
//!
//! `--adaptive-smoke` runs the adaptive-executor CI gate: rank-54
//! and the 8-PVT conjunctive cause with a 10 ms oracle, asserting
//! the adaptive controller reproduces the serial digest bit for bit
//! (cold and on a repeat run) and that peak in-flight speculative
//! frames stay within the configured budget.

use dataprism::{
    explain_group_test_parallel_with_pvts, Explanation, PartitionStrategy, SpeculationMode, System,
    TraceConfig,
};
use dp_bench::format_row;
use dp_frame::DataFrame;
use dp_scenarios::synthetic::{
    adversarial_rank, conjunctive_cause, single_cause, single_cause_with_rows, SyntheticScenario,
    SyntheticSystem,
};
use std::time::{Duration, Instant};

/// A [`SyntheticSystem`] that blocks for a fixed interval per
/// malfunction query (see `parallel_scaling`).
#[derive(Clone)]
struct BlockingSystem {
    inner: SyntheticSystem,
    query_cost: Duration,
}

impl System for BlockingSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        std::thread::sleep(self.query_cost);
        self.inner.malfunction(df)
    }
}

fn arg_value(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(
    scenario: &SyntheticScenario,
    query_cost: Duration,
    num_threads: usize,
    depth: usize,
    mode: SpeculationMode,
    budget: Option<usize>,
    trace: &TraceConfig,
) -> (f64, Explanation) {
    let base = BlockingSystem {
        inner: scenario.system.clone(),
        query_cost,
    };
    let factory = move || base.clone();
    let mut config = scenario.config.clone();
    config.num_threads = num_threads;
    config.gt_speculation_depth = depth;
    config.speculation = mode;
    config.speculation_budget = budget;
    config.trace = trace.clone();
    let start = Instant::now();
    let explanation = explain_group_test_parallel_with_pvts(
        &factory,
        &scenario.d_fail,
        &scenario.d_pass,
        scenario.pvts.clone(),
        &config,
        PartitionStrategy::MinBisection,
    )
    .expect("scaling workloads resolve");
    (start.elapsed().as_secs_f64(), explanation)
}

fn assert_conformant(workload: &str, depth: usize, serial: &Explanation, par: &Explanation) {
    assert_eq!(
        serial.interventions, par.interventions,
        "{workload} depth={depth}: speculation must not change the intervention count"
    );
    assert_eq!(
        serial.pvt_ids(),
        par.pvt_ids(),
        "{workload} depth={depth}: speculation must not change the explanation"
    );
    assert_eq!(
        serial.trace, par.trace,
        "{workload} depth={depth}: speculation must not change the trace"
    );
    assert_eq!(
        serial.final_score.to_bits(),
        par.final_score.to_bits(),
        "{workload} depth={depth}: speculation must not change the final score"
    );
}

/// The CI observability gate: `NullSink` (trace off, the default)
/// must add no measurable overhead. The pre-trace wall clock is not
/// reproducible in this binary, but a run with a collecting sink
/// attached strictly includes all the work of an untraced run plus
/// the tracing itself, so it upper-bounds that baseline: the off run
/// staying within 2% of the collecting run bounds the `NullSink`
/// overhead below 2%. Both runs are also asserted bit-identical in
/// outcome (the trace-parity contract).
fn smoke(threads: usize, query_cost: Duration) {
    const REPS: usize = 3;
    let scenario = adversarial_rank(54, 3);
    let depth = 2;
    let best = |trace: &TraceConfig| -> (f64, Explanation) {
        let mut min_s = f64::INFINITY;
        let mut last = None;
        for _ in 0..REPS {
            let (s, exp) = run(
                &scenario,
                query_cost,
                threads,
                depth,
                SpeculationMode::Static,
                None,
                trace,
            );
            min_s = min_s.min(s);
            last = Some(exp);
        }
        (min_s, last.expect("REPS > 0"))
    };
    let (off_s, off) = best(&TraceConfig::Off);
    let (collect_s, collected) = best(&TraceConfig::Collect);
    assert_conformant("sec5.2 rank-54 (traced)", depth, &off, &collected);
    assert!(
        off.trace_records.is_empty() && !collected.trace_records.is_empty(),
        "smoke must compare an untraced run against a collecting run"
    );
    let overhead = off_s / collect_s - 1.0;
    println!(
        "NullSink smoke: rank-54 @ {threads} threads, depth {depth}, best of {REPS}:\n\
         trace off {off_s:.3}s vs collect {collect_s:.3}s ({:+.2}% relative)",
        overhead * 100.0
    );
    assert!(
        off_s <= collect_s * 1.02,
        "NullSink overhead gate: off run {off_s:.3}s exceeds collecting run \
         {collect_s:.3}s by more than 2%"
    );
    println!("NullSink overhead within 2%: ok");
}

/// The adaptive-executor CI gate: with a 10 ms oracle on the rank-54
/// and 8-PVT conjunctive workloads, the latency-driven controller
/// must reproduce the serial explanation digest bit for bit — cold
/// and again on a repeat run — while peak in-flight speculative
/// frames stay within the configured budget (plus at most one
/// unsheddable frame already executing per worker). Wall clock
/// against the best static depth is printed for the bench logs; the
/// hard gate is parity and the bound.
fn adaptive_smoke(threads: usize, query_cost: Duration) {
    let cap = 4;
    // The adaptive default budget, spelled out so the bound we assert
    // is the bound the executor was actually configured with.
    let budget = (8 * threads).max(32);
    let workloads: Vec<(String, SyntheticScenario)> = vec![
        ("sec5.2 rank-54".into(), adversarial_rank(54, 3)),
        ("fig9c conj-8".into(), conjunctive_cause(64, 64, 8, 7)),
    ];
    for (workload, scenario) in &workloads {
        let (serial_s, serial) = run(
            scenario,
            query_cost,
            1,
            0,
            SpeculationMode::Static,
            None,
            &TraceConfig::Off,
        );
        let mut best_static = f64::INFINITY;
        let mut static_cells = String::new();
        for depth in [0usize, 1, 2, 4] {
            let (s, par) = run(
                scenario,
                query_cost,
                threads,
                depth,
                SpeculationMode::Static,
                None,
                &TraceConfig::Off,
            );
            assert_conformant(workload, depth, &serial, &par);
            static_cells.push_str(&format!(
                " d{depth}={s:.3}s[u{}/e{}]",
                par.metrics.speculative_used, par.metrics.speculative_evaluated
            ));
            best_static = best_static.min(s);
        }
        println!("adaptive smoke: {workload}: static{static_cells}");
        let adaptive_cell = || {
            run(
                scenario,
                query_cost,
                threads,
                cap,
                SpeculationMode::Adaptive,
                Some(budget),
                &TraceConfig::Off,
            )
        };
        let (adaptive_s, adaptive) = adaptive_cell();
        assert_conformant(workload, cap, &serial, &adaptive);
        assert_eq!(
            serial.digest(),
            adaptive.digest(),
            "{workload}: adaptive digest diverged from serial"
        );
        let (_, again) = adaptive_cell();
        assert_eq!(
            adaptive.digest(),
            again.digest(),
            "{workload}: adaptive digest unstable across runs"
        );
        let peak = adaptive.metrics.peak_inflight;
        assert!(
            peak <= (budget + threads) as u64,
            "{workload}: peak in-flight {peak} exceeds budget {budget} + {threads} workers"
        );
        println!(
            "adaptive smoke: {workload}: serial {serial_s:.3}s, best static {best_static:.3}s, \
             adaptive {adaptive_s:.3}s ({:.2}x vs best static), peak in-flight {peak} <= \
             {budget}+{threads}",
            best_static / adaptive_s
        );
    }
    println!("adaptive executor gate: ok");
}

fn main() {
    let threads = arg_value("--threads", 8);
    if std::env::args().any(|a| a == "--adaptive-smoke") {
        // The ISSUE gate's regime: a 10 ms oracle, where deep
        // speculation pays and backpressure matters.
        let query_cost = Duration::from_millis(arg_value("--query-cost-ms", 10) as u64);
        adaptive_smoke(threads, query_cost);
        return;
    }
    let query_cost = Duration::from_millis(arg_value("--query-cost-ms", 25) as u64);
    if std::env::args().any(|a| a == "--smoke") {
        smoke(threads, query_cost);
        return;
    }
    let depths = [0usize, 1, 2, 4];

    let workloads: Vec<(String, SyntheticScenario)> = vec![
        ("sec5.2 rank-54".into(), adversarial_rank(54, 3)),
        ("fig8 m=200".into(), single_cause(200, 200, 11)),
        // An 8-PVT conjunctive cause spread across the dependency
        // graph: the search must keep BOTH halves alive at most
        // nodes, so the lookahead frontier is consumed nearly in
        // full — the regime where depth >= 2 shines.
        ("fig9c conj-8".into(), conjunctive_cause(64, 64, 8, 7)),
        // 10^6 rows: the speculative frontier holds frames that are
        // copy-on-write chunk-shared clones of D_fail, so deep
        // lookahead stays memory-bounded even at dataset sizes where
        // eager copies would not fit.
        (
            "fig8 rows=10^6".into(),
            single_cause_with_rows(16, 8, 1_000_000, 11),
        ),
    ];

    println!(
        "GT speculative lookahead: {} ms blocking per oracle query,\n\
         serial (1 thread, depth 0) vs {threads} threads at depth 0/1/2/4\n",
        query_cost.as_millis()
    );
    let widths = [16, 7, 10, 9, 9, 13, 8];
    println!(
        "{}",
        format_row(
            &[
                "workload".into(),
                "depth".into(),
                "wall s".into(),
                "speedup".into(),
                "intervs".into(),
                "speculative".into(),
                "wasted".into(),
            ],
            &widths
        )
    );

    // Best speedup per workload at depth >= 2: the acceptance gate
    // asks for >= 3x on at least one rank-54/wide workload.
    let mut best_deep = f64::MIN;
    for (workload, scenario) in &workloads {
        let (serial_s, serial) = run(
            scenario,
            query_cost,
            1,
            0,
            SpeculationMode::Static,
            None,
            &TraceConfig::Off,
        );
        println!(
            "{}",
            format_row(
                &[
                    workload.clone(),
                    "serial".into(),
                    format!("{serial_s:.3}"),
                    "1.00x".into(),
                    serial.interventions.to_string(),
                    serial.cache.speculative.to_string(),
                    serial.cache.speculative_waste.to_string(),
                ],
                &widths
            )
        );
        for &depth in &depths {
            let (par_s, par) = run(
                scenario,
                query_cost,
                threads,
                depth,
                SpeculationMode::Static,
                None,
                &TraceConfig::Off,
            );
            assert_conformant(workload, depth, &serial, &par);
            let speedup = serial_s / par_s;
            if depth >= 2 {
                best_deep = best_deep.max(speedup);
            }
            println!(
                "{}",
                format_row(
                    &[
                        String::new(),
                        depth.to_string(),
                        format!("{par_s:.3}"),
                        format!("{speedup:.2}x"),
                        par.interventions.to_string(),
                        par.cache.speculative.to_string(),
                        par.cache.speculative_waste.to_string(),
                    ],
                    &widths
                )
            );
        }
    }

    println!("\nbest speedup at {threads} threads, depth >= 2: {best_deep:.2}x");
    // Acceptance gate for the default 8-thread CI configuration;
    // narrower widths legitimately top out lower.
    if threads >= 8 {
        assert!(
            best_deep >= 3.0,
            "GT lookahead must reach >= 3x at {threads} threads, depth >= 2 \
             (got {best_deep:.2}x)"
        );
    }
}
