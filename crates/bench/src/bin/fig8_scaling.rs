//! Regenerates the paper's **Fig 8**: execution time of DataPrism-GRD
//! and DataPrism-GT as the number of attributes (left panel) and the
//! number of discriminative PVTs (right panel) grow. The paper's
//! claim is sub-linear growth in both; absolute times differ from the
//! paper (different hardware and substrate).
//!
//! The paper's right panel reaches 300K discriminative PVTs at up to
//! ~10⁴ seconds per run; this harness defaults to 20K so a full sweep
//! finishes in minutes (`--full` raises the cap to 100K).
//!
//! Usage: `cargo run --release -p dp-bench --bin fig8_scaling [--full]`

use dp_bench::{format_row, run_synthetic, Technique};
use dp_scenarios::synthetic::single_cause;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let seed = 11;

    println!(
        "Fig 8 (left) — execution time vs #attributes (one discriminative PVT per attribute)\n"
    );
    let widths = [12, 14, 14, 13, 13];
    println!(
        "{}",
        format_row(
            &[
                "#attributes".into(),
                "GRD seconds".into(),
                "GT seconds".into(),
                "GRD intervs".into(),
                "GT intervs".into()
            ],
            &widths
        )
    );
    let attr_points: &[usize] = if full {
        &[10, 50, 100, 200, 400, 800]
    } else {
        &[10, 50, 100, 200, 400]
    };
    for &m in attr_points {
        let grd = run_synthetic(single_cause(m, m, seed), Technique::Greedy);
        let gt = run_synthetic(single_cause(m, m, seed), Technique::GroupTest);
        println!(
            "{}",
            format_row(
                &[
                    m.to_string(),
                    format!("{:.3}", grd.seconds),
                    format!("{:.3}", gt.seconds),
                    grd.interventions_cell(),
                    gt.interventions_cell(),
                ],
                &widths
            )
        );
        assert!(grd.resolved && gt.resolved, "scaling runs must resolve");
    }

    println!("\nFig 8 (right) — execution time vs #discriminative PVTs (2 PVTs per attribute)\n");
    println!(
        "{}",
        format_row(
            &[
                "#disc PVTs".into(),
                "GRD seconds".into(),
                "GT seconds".into(),
                "GRD intervs".into(),
                "GT intervs".into()
            ],
            &widths
        )
    );
    let pvt_points: &[usize] = if full {
        &[10, 100, 1000, 5000, 20_000, 100_000]
    } else {
        &[10, 100, 1000, 5000, 20_000]
    };
    for &k in pvt_points {
        let n_attrs = k.div_ceil(2);
        let grd = run_synthetic(single_cause(n_attrs, k, seed), Technique::Greedy);
        let gt = run_synthetic(single_cause(n_attrs, k, seed), Technique::GroupTest);
        println!(
            "{}",
            format_row(
                &[
                    k.to_string(),
                    format!("{:.3}", grd.seconds),
                    format!("{:.3}", gt.seconds),
                    grd.interventions_cell(),
                    gt.interventions_cell(),
                ],
                &widths
            )
        );
        assert!(grd.resolved && gt.resolved, "scaling runs must resolve");
    }
    println!("\npaper reference: both curves grow sub-linearly (their Fig 8, log-log)");
}
