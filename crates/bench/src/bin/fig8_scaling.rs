//! Regenerates the paper's **Fig 8**: execution time of DataPrism-GRD
//! and DataPrism-GT as the number of attributes (left panel) and the
//! number of discriminative PVTs (right panel) grow. The paper's
//! claim is sub-linear growth in both; absolute times differ from the
//! paper (different hardware and substrate).
//!
//! The paper's right panel reaches 300K discriminative PVTs at up to
//! ~10⁴ seconds per run; this harness defaults to 20K so a full sweep
//! finishes in minutes (`--full` raises the cap to 100K).
//!
//! A third panel scales the *row count* to 10⁶ (10⁷ with `--full`),
//! the regime where the copy-on-write chunked frame and the
//! confidence-bounded sampled oracle matter.
//!
//! Usage: `cargo run --release -p dp-bench --bin fig8_scaling
//! [--full] [--smoke]`
//!
//! `--smoke` skips the sweeps and runs the CI memory + sampling gate
//! on one 10⁶-row cell instead:
//!
//! - the live intervention working set (base frame + one speculated
//!   frame per PVT, exactly what the speculation layer holds in
//!   flight) must occupy ≥ 5× less heap after chunk deduplication
//!   than eager full copies would;
//! - GRD and GT under `oracle_sampling: Bounded` must produce
//!   explanations bit-identical (same [`Explanation::digest`]) to
//!   the full-evaluation runs, while touching strictly fewer rows.

use dataprism::{
    explain_greedy_with_pvts, explain_group_test_with_pvts, Explanation, OracleSampling,
    PartitionStrategy, PrismConfig,
};
use dp_bench::{format_row, run_synthetic, Technique};
use dp_frame::unique_heap_bytes;
use dp_scenarios::synthetic::{conjunctive_cause_with_rows, single_cause, single_cause_with_rows};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The CI gate: one 10⁶-row single-cause cell, checked for the CoW
/// working-set saving and for sampled-vs-full digest equality.
fn smoke() {
    let rows = 1_000_000;
    // A 4-PVT conjunctive cause: minimality checking must drop-test
    // non-prefix sub-compositions whose scores were never cached, so
    // the sampled oracle gets unknown failing queries to settle.
    let scenario = conjunctive_cause_with_rows(16, 8, 4, rows, 11);

    // Memory gate. Materialize every candidate intervention the way
    // the runtime does — `Transform::apply` clones the frame and
    // copy-on-writes only the chunks it touches — and keep them all
    // alive at once, the speculation layer's peak working set.
    let mut rng = StdRng::seed_from_u64(scenario.config.seed);
    let speculated: Vec<_> = scenario
        .pvts
        .iter()
        .map(|p| p.apply(&scenario.d_fail, &mut rng).expect("pvt applies").0)
        .collect();
    let frames: Vec<&dp_frame::DataFrame> = std::iter::once(&scenario.d_fail)
        .chain(&speculated)
        .collect();
    let cow = unique_heap_bytes(frames.iter().copied());
    let eager: usize = frames.iter().map(|f| f.heap_bytes()).sum();
    let factor = eager as f64 / cow as f64;
    println!(
        "memory gate: {rows} rows x 16 attrs, {} live interventions:\n\
         cow working set {:.1} MiB vs eager copies {:.1} MiB ({factor:.1}x saved)",
        speculated.len(),
        cow as f64 / (1 << 20) as f64,
        eager as f64 / (1 << 20) as f64,
    );
    assert!(
        factor >= 5.0,
        "CoW working set must be >= 5x smaller than eager copies (got {factor:.2}x)"
    );

    // Sampling gate: same cell, full evaluation vs confidence-bounded
    // sampled oracle, for both techniques.
    let sampled_config = |mut c: PrismConfig| {
        c.oracle_sampling = OracleSampling::Bounded { confidence: 0.95 };
        c
    };
    let grd = |config: &PrismConfig| -> Explanation {
        explain_greedy_with_pvts(
            &mut scenario.system.clone(),
            &scenario.d_fail,
            &scenario.d_pass,
            scenario.pvts.clone(),
            config,
        )
        .expect("greedy resolves")
    };
    let gt = |config: &PrismConfig| -> Explanation {
        explain_group_test_with_pvts(
            &mut scenario.system.clone(),
            &scenario.d_fail,
            &scenario.d_pass,
            scenario.pvts.clone(),
            config,
            PartitionStrategy::MinBisection,
        )
        .expect("group test resolves")
    };
    for (name, run) in [
        ("GRD", &grd as &dyn Fn(&PrismConfig) -> Explanation),
        ("GT", &gt),
    ] {
        let full = run(&scenario.config);
        let sampled = run(&sampled_config(scenario.config.clone()));
        assert_eq!(
            full.digest(),
            sampled.digest(),
            "{name}: sampled run must be bit-identical to full evaluation"
        );
        assert!(
            sampled.metrics.sampled_queries > 0,
            "{name}: the 10^6-row cell must actually settle queries on samples"
        );
        println!(
            "sampling gate: {name}: digest match, {} interventions, \
             {} settled on samples ({} escalated, {} sampled rows touched)",
            sampled.interventions,
            sampled.metrics.sampled_queries,
            sampled.metrics.escalations,
            sampled.metrics.rows_touched,
        );
    }
    println!("fig8 memory + sampling gate: ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let full = std::env::args().any(|a| a == "--full");
    let seed = 11;

    println!(
        "Fig 8 (left) — execution time vs #attributes (one discriminative PVT per attribute)\n"
    );
    let widths = [12, 14, 14, 13, 13];
    println!(
        "{}",
        format_row(
            &[
                "#attributes".into(),
                "GRD seconds".into(),
                "GT seconds".into(),
                "GRD intervs".into(),
                "GT intervs".into()
            ],
            &widths
        )
    );
    let attr_points: &[usize] = if full {
        &[10, 50, 100, 200, 400, 800]
    } else {
        &[10, 50, 100, 200, 400]
    };
    for &m in attr_points {
        let grd = run_synthetic(single_cause(m, m, seed), Technique::Greedy);
        let gt = run_synthetic(single_cause(m, m, seed), Technique::GroupTest);
        println!(
            "{}",
            format_row(
                &[
                    m.to_string(),
                    format!("{:.3}", grd.seconds),
                    format!("{:.3}", gt.seconds),
                    grd.interventions_cell(),
                    gt.interventions_cell(),
                ],
                &widths
            )
        );
        assert!(grd.resolved && gt.resolved, "scaling runs must resolve");
    }

    println!("\nFig 8 (right) — execution time vs #discriminative PVTs (2 PVTs per attribute)\n");
    println!(
        "{}",
        format_row(
            &[
                "#disc PVTs".into(),
                "GRD seconds".into(),
                "GT seconds".into(),
                "GRD intervs".into(),
                "GT intervs".into()
            ],
            &widths
        )
    );
    let pvt_points: &[usize] = if full {
        &[10, 100, 1000, 5000, 20_000, 100_000]
    } else {
        &[10, 100, 1000, 5000, 20_000]
    };
    for &k in pvt_points {
        let n_attrs = k.div_ceil(2);
        let grd = run_synthetic(single_cause(n_attrs, k, seed), Technique::Greedy);
        let gt = run_synthetic(single_cause(n_attrs, k, seed), Technique::GroupTest);
        println!(
            "{}",
            format_row(
                &[
                    k.to_string(),
                    format!("{:.3}", grd.seconds),
                    format!("{:.3}", gt.seconds),
                    grd.interventions_cell(),
                    gt.interventions_cell(),
                ],
                &widths
            )
        );
        assert!(grd.resolved && gt.resolved, "scaling runs must resolve");
    }
    println!("\nFig 8 (rows) — execution time vs #rows (16 attributes, 8 discriminative PVTs)\n");
    println!(
        "{}",
        format_row(
            &[
                "#rows".into(),
                "GRD seconds".into(),
                "GT seconds".into(),
                "GRD intervs".into(),
                "GT intervs".into()
            ],
            &widths
        )
    );
    let row_points: &[usize] = if full {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    for &rows in row_points {
        let grd = run_synthetic(single_cause_with_rows(16, 8, rows, seed), Technique::Greedy);
        let gt = run_synthetic(
            single_cause_with_rows(16, 8, rows, seed),
            Technique::GroupTest,
        );
        println!(
            "{}",
            format_row(
                &[
                    rows.to_string(),
                    format!("{:.3}", grd.seconds),
                    format!("{:.3}", gt.seconds),
                    grd.interventions_cell(),
                    gt.interventions_cell(),
                ],
                &widths
            )
        );
        assert!(grd.resolved && gt.resolved, "scaling runs must resolve");
    }

    println!("\npaper reference: both curves grow sub-linearly (their Fig 8, log-log)");
}
