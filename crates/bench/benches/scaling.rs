//! Criterion timing for the Fig 8 scaling curves: DataPrism-GRD and
//! DataPrism-GT wall-clock as the number of attributes and the number
//! of discriminative PVTs grow (synthetic pipelines, pre-built PVTs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataprism::{explain_greedy_with_pvts, explain_group_test_with_pvts, PartitionStrategy};
use dp_scenarios::synthetic::single_cause;

fn bench_attributes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_attributes");
    group.sample_size(10);
    for m in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::new("greedy", m), &m, |b, &m| {
            b.iter_with_setup(
                || single_cause(m, m, 11),
                |mut s| {
                    explain_greedy_with_pvts(
                        &mut s.system,
                        &s.d_fail,
                        &s.d_pass,
                        s.pvts.clone(),
                        &s.config,
                    )
                    .expect("resolves")
                },
            )
        });
        group.bench_with_input(BenchmarkId::new("group_test", m), &m, |b, &m| {
            b.iter_with_setup(
                || single_cause(m, m, 11),
                |mut s| {
                    explain_group_test_with_pvts(
                        &mut s.system,
                        &s.d_fail,
                        &s.d_pass,
                        s.pvts.clone(),
                        &s.config,
                        PartitionStrategy::MinBisection,
                    )
                    .expect("resolves")
                },
            )
        });
    }
    group.finish();
}

fn bench_pvts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_pvts");
    group.sample_size(10);
    for k in [100usize, 1000, 5000] {
        group.bench_with_input(BenchmarkId::new("greedy", k), &k, |b, &k| {
            b.iter_with_setup(
                || single_cause(k.div_ceil(2), k, 11),
                |mut s| {
                    explain_greedy_with_pvts(
                        &mut s.system,
                        &s.d_fail,
                        &s.d_pass,
                        s.pvts.clone(),
                        &s.config,
                    )
                    .expect("resolves")
                },
            )
        });
        group.bench_with_input(BenchmarkId::new("group_test", k), &k, |b, &k| {
            b.iter_with_setup(
                || single_cause(k.div_ceil(2), k, 11),
                |mut s| {
                    explain_group_test_with_pvts(
                        &mut s.system,
                        &s.d_fail,
                        &s.d_pass,
                        s.pvts.clone(),
                        &s.config,
                        PartitionStrategy::MinBisection,
                    )
                    .expect("resolves")
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attributes, bench_pvts);
criterion_main!(benches);
