//! Criterion timing for the Fig 7 case studies: full diagnosis
//! wall-clock (discovery + interventions) for DataPrism-GRD and
//! DataPrism-GT on each scenario, plus the discovery step alone.
//!
//! These are the "Execution Time (seconds)" columns of Fig 7; the
//! slow baselines (Anchor) are exercised by the `fig7_table` binary
//! instead of criterion, whose repeated sampling would take hours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataprism::discovery::discriminative_pvts;
use dataprism::{explain_greedy, explain_group_test, PartitionStrategy};
use dp_scenarios::{cardio, income, sentiment, Scenario};

type ScenarioMaker = fn() -> Scenario;

fn scenario_factories() -> Vec<(&'static str, ScenarioMaker)> {
    vec![
        ("sentiment", || sentiment::scenario_with_size(400, 42)),
        ("income", || income::scenario_with_size(300, 42)),
        ("cardio", || cardio::scenario_with_size(400, 42)),
    ]
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_greedy");
    group.sample_size(10);
    for (name, make) in scenario_factories() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_with_setup(make, |mut s| {
                explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config)
                    .expect("case study resolves")
            })
        });
    }
    group.finish();
}

fn bench_group_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_group_test");
    group.sample_size(10);
    // Cardio is NA for group testing (A3), so only the other two.
    for (name, make) in scenario_factories().into_iter().take(2) {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_with_setup(make, |mut s| {
                explain_group_test(
                    s.system.as_mut(),
                    &s.d_fail,
                    &s.d_pass,
                    &s.config,
                    PartitionStrategy::MinBisection,
                )
                .expect("case study resolves")
            })
        });
    }
    group.finish();
}

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    for (name, make) in scenario_factories() {
        let s = make();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| discriminative_pvts(&s.d_pass, &s.d_fail, &s.config.discovery))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_group_test, bench_discovery);
criterion_main!(benches);
