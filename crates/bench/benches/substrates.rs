//! Micro-benchmarks of the substrate hot paths: violation scoring,
//! the χ² and Pearson statistics, min-bisection, transformation
//! application, and model training — the pieces every intervention
//! pays for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataprism::bisection::min_bisection;
use dataprism::profile::{DependenceKind, Profile};
use dataprism::transform::Transform;
use dataprism::violation::violation;
use dp_frame::groupby::ContingencyTable;
use dp_frame::{Column, DType, DataFrame};
use dp_ml::{AdaBoost, Matrix, RandomForest};
use dp_stats::{chi_squared, pearson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn numeric_frame(n: usize, seed: u64) -> DataFrame {
    let mut rng = StdRng::seed_from_u64(seed);
    DataFrame::from_columns(vec![
        Column::from_floats("x", (0..n).map(|_| Some(rng.gen::<f64>())).collect()),
        Column::from_floats("y", (0..n).map(|_| Some(rng.gen::<f64>() * 2.0)).collect()),
    ])
    .unwrap()
}

fn categorical_frame(n: usize, seed: u64) -> DataFrame {
    let mut rng = StdRng::seed_from_u64(seed);
    let cats = ["a", "b", "c", "d"];
    let col = |name: &str, rng: &mut StdRng| {
        Column::from_strings(
            name,
            DType::Categorical,
            (0..n)
                .map(|_| Some(cats[rng.gen_range(0..cats.len())].to_string()))
                .collect(),
        )
    };
    let a = col("a", &mut rng);
    let b = col("b", &mut rng);
    DataFrame::from_columns(vec![a, b]).unwrap()
}

fn bench_violation(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation");
    for n in [1_000usize, 10_000] {
        let df = numeric_frame(n, 1);
        let domain = Profile::DomainNumeric {
            attr: "x".into(),
            lb: 0.2,
            ub: 0.8,
        };
        group.bench_with_input(BenchmarkId::new("domain_numeric", n), &n, |bench, _| {
            bench.iter(|| violation(&df, &domain))
        });
        let indep = Profile::Indep {
            a: "x".into(),
            b: "y".into(),
            alpha: 0.1,
            kind: DependenceKind::Pearson,
        };
        group.bench_with_input(BenchmarkId::new("indep_pearson", n), &n, |bench, _| {
            bench.iter(|| violation(&df, &indep))
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    for n in [1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("pearson", n), &n, |bench, _| {
            bench.iter(|| pearson(&xs, &ys))
        });
        let df = categorical_frame(n, 3);
        group.bench_with_input(BenchmarkId::new("chi2", n), &n, |bench, _| {
            bench.iter(|| {
                let t = ContingencyTable::from_frame(&df, "a", "b").unwrap();
                chi_squared(&t)
            })
        });
    }
    group.finish();
}

fn bench_min_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_bisection");
    for k in [16usize, 48] {
        let items: Vec<usize> = (0..k).collect();
        // Pair matching like the Fig 6 toy.
        let edges: Vec<(usize, usize)> = (0..k / 2).map(|i| (2 * i, 2 * i + 1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter_with_setup(
                || StdRng::seed_from_u64(7),
                |mut rng| min_bisection(&items, &edges, &mut rng),
            )
        });
    }
    group.finish();
}

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    let df = numeric_frame(10_000, 4);
    let rescale = Transform::LinearRescale {
        attr: "x".into(),
        lb: 10.0,
        ub: 20.0,
    };
    group.bench_function("linear_rescale_10k", |bench| {
        bench.iter_with_setup(
            || StdRng::seed_from_u64(5),
            |mut rng| rescale.apply(&df, &mut rng).unwrap(),
        )
    });
    let noise = Transform::DecorrelateNoise {
        a: "x".into(),
        b: "y".into(),
        alpha: 0.01,
    };
    group.bench_function("decorrelate_10k", |bench| {
        bench.iter_with_setup(
            || StdRng::seed_from_u64(5),
            |mut rng| noise.apply(&df, &mut rng).unwrap(),
        )
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    let n = 500;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..8).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<usize> = rows
        .iter()
        .map(|r| usize::from(r[0] + r[1] > 1.0))
        .collect();
    let x = Matrix::from_rows(rows);
    group.bench_function("random_forest_fit_500x8", |bench| {
        bench.iter(|| {
            let mut f = RandomForest::new(12, 6, 1);
            f.fit(&x, &y);
            f
        })
    });
    group.bench_function("adaboost_fit_500x8", |bench| {
        bench.iter(|| {
            let mut m = AdaBoost::new(25, 2);
            m.fit(&x, &y);
            m
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_violation,
    bench_stats,
    bench_min_bisection,
    bench_transforms,
    bench_models
);
criterion_main!(benches);
