//! The watcher: live per-column sketches over an append stream, a
//! sliding window for drift scoring, and the escalation path into
//! targeted re-diagnosis.

use std::collections::VecDeque;
use std::time::Instant;

use dataprism::discovery::{discover_profiles, transforms_for};
use dataprism::{
    explain_greedy_parallel_cached_with_pvts, explain_group_test_parallel_cached_with_pvts,
    Explanation, PartitionStrategy, PrismConfig, PrismError, Profile, Pvt, Result, ScoreCache,
    SystemFactory,
};
use dp_frame::DataFrame;
use dp_stats::sketch::{CategoricalSketch, ColumnSummary, NumericSketch, DEFAULT_BUCKETS};
use dp_trace::{Event, MonitorTriggerSpan, RunMetrics, SketchMergeSpan, Tracer};

use crate::config::MonitorConfig;
use crate::drift::{DriftReport, DriftScorer};

/// The live, incrementally-maintained profile of one monitored
/// column: an exact [`ColumnSummary`] plus (dtype permitting) a
/// numeric or keyed categorical dependence sketch. All three are
/// maintained by merging per-batch sketches and are bit-identical to
/// sketches rebuilt from scratch over the concatenated stream.
#[derive(Debug, Clone, Default)]
pub(crate) struct LiveColumn {
    pub(crate) summary: Option<ColumnSummary>,
    pub(crate) numeric: Option<NumericSketch>,
    pub(crate) categorical: Option<CategoricalSketch>,
}

/// One windowed batch: the rows themselves (drift scoring evaluates
/// exact violations over the window) and their per-column summaries
/// (so re-screening merges summaries instead of re-scanning rows).
#[derive(Debug, Clone)]
struct WindowBatch {
    frame: DataFrame,
    summaries: Vec<ColumnSummary>,
}

/// A continuous monitor over one system's data stream.
///
/// Construction discovers the baseline profile set from the passing
/// dataset. [`ingest`](Watcher::ingest) folds row batches into the
/// live sketches; [`check_drift`](Watcher::check_drift) scores the
/// recent window against the baseline;
/// [`diagnose_greedy`](Watcher::diagnose_greedy) /
/// [`diagnose_group_test`](Watcher::diagnose_group_test) escalate a
/// drifted window into a targeted re-diagnosis seeded with only the
/// drifted profiles' candidates.
#[derive(Debug)]
pub struct Watcher {
    d_pass: DataFrame,
    config: PrismConfig,
    monitor: MonitorConfig,
    scorer: DriftScorer,
    live: Vec<LiveColumn>,
    window: VecDeque<WindowBatch>,
    metrics: RunMetrics,
}

impl Watcher {
    /// Start watching: discover the baseline profiles of `d_pass`
    /// under `config.discovery` and set up empty live sketches for
    /// every column.
    pub fn new(d_pass: DataFrame, config: PrismConfig, monitor: MonitorConfig) -> Self {
        let profiles = discover_profiles(&d_pass, &config.discovery);
        let live = d_pass
            .columns()
            .iter()
            .map(|_| LiveColumn::default())
            .collect();
        Watcher {
            scorer: DriftScorer::new(profiles, monitor.tau_drift),
            d_pass,
            config,
            monitor,
            live,
            window: VecDeque::new(),
            metrics: RunMetrics::default(),
        }
    }

    /// The baseline profile set (discovery order); drift report and
    /// candidate indices refer to this slice.
    pub fn profiles(&self) -> &[Profile] {
        self.scorer.profiles()
    }

    /// The passing dataset the baseline was discovered from.
    pub fn d_pass(&self) -> &DataFrame {
        &self.d_pass
    }

    /// The monitoring knobs.
    pub fn monitor_config(&self) -> &MonitorConfig {
        &self.monitor
    }

    /// Ingest counters and latency accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.metrics.batches_ingested
    }

    /// Rows ingested so far (also the global row offset of the next
    /// batch's sketches).
    pub fn rows(&self) -> u64 {
        self.metrics.rows_ingested
    }

    /// Fold one batch into the live sketches and the sliding window.
    ///
    /// The batch must carry exactly the passing dataset's schema
    /// (column names, order, and dtypes). Emits one `sketch_merge`
    /// trace event and records the ingest latency.
    pub fn ingest(&mut self, batch: DataFrame, tracer: &Tracer) -> Result<()> {
        let t0 = Instant::now();
        self.check_schema(&batch)?;
        let offset = self.metrics.rows_ingested as usize;
        let batch_rows = batch.n_rows();
        let mut summaries = Vec::with_capacity(batch.n_cols());
        for (col, live) in batch.columns().iter().zip(self.live.iter_mut()) {
            let summary = ColumnSummary::build(col);
            live.summary = Some(match live.summary.take() {
                Some(acc) => acc.merge(&summary),
                None => summary.clone(),
            });
            summaries.push(summary);
            let dtype = col.dtype();
            if dtype.is_numeric() {
                let values: Vec<(usize, f64)> = col
                    .f64_values()
                    .into_iter()
                    .map(|(i, v)| (offset + i, v))
                    .collect();
                let sketch = NumericSketch::build_at(offset, batch_rows, &values);
                live.numeric = Some(match live.numeric.take() {
                    Some(acc) => acc.merge(&sketch),
                    None => sketch,
                });
            } else if dtype.is_string() {
                let mut cells: Vec<Option<&str>> = vec![None; batch_rows];
                for (i, s) in col.str_values() {
                    cells[i] = Some(s);
                }
                let sketch = CategoricalSketch::from_values_at(offset, &cells, DEFAULT_BUCKETS);
                live.categorical = Some(match live.categorical.take() {
                    Some(acc) => acc.merge(&sketch),
                    None => sketch,
                });
            }
        }
        self.window.push_back(WindowBatch {
            frame: batch,
            summaries,
        });
        while self.window.len() > self.monitor.window_batches.max(1) {
            self.window.pop_front();
        }
        self.metrics.batches_ingested += 1;
        self.metrics.rows_ingested += batch_rows as u64;
        self.metrics
            .ingest_latency
            .record(t0.elapsed().as_nanos() as u64);
        let (columns, total_rows, batches) = (
            self.live.len(),
            self.metrics.rows_ingested,
            self.metrics.batches_ingested,
        );
        tracer.emit(|| {
            Event::SketchMerge(SketchMergeSpan {
                columns,
                batch_rows: batch_rows as u64,
                total_rows,
                batches,
            })
        });
        Ok(())
    }

    fn check_schema(&self, batch: &DataFrame) -> Result<()> {
        let ours = self.d_pass.columns();
        let theirs = batch.columns();
        let ok = ours.len() == theirs.len()
            && ours
                .iter()
                .zip(theirs)
                .all(|(a, b)| a.name() == b.name() && a.dtype() == b.dtype());
        if ok {
            Ok(())
        } else {
            Err(PrismError::BadInput(format!(
                "ingested batch schema [{}] does not match the watched schema [{}]",
                schema_line(batch),
                schema_line(&self.d_pass),
            )))
        }
    }

    /// The live merged summary of one column, or `None` before the
    /// first batch (or for an unknown column).
    pub fn live_summary(&self, column: &str) -> Option<&ColumnSummary> {
        self.live_column(column)?.summary.as_ref()
    }

    /// The live merged numeric sketch of one column (numeric columns
    /// only, after at least one batch).
    pub fn live_numeric_sketch(&self, column: &str) -> Option<&NumericSketch> {
        self.live_column(column)?.numeric.as_ref()
    }

    /// The live merged categorical sketch of one column (string
    /// columns only, after at least one batch).
    pub fn live_categorical_sketch(&self, column: &str) -> Option<&CategoricalSketch> {
        self.live_column(column)?.categorical.as_ref()
    }

    fn live_column(&self, column: &str) -> Option<&LiveColumn> {
        self.d_pass
            .columns()
            .iter()
            .position(|c| c.name() == column)
            .map(|i| &self.live[i])
    }

    /// The current scoring window as one frame (the most recent
    /// `window_batches` batches concatenated), or `None` before the
    /// first batch.
    pub fn window_frame(&self) -> Option<DataFrame> {
        let mut batches = self.window.iter();
        let mut frame = batches.next()?.frame.clone();
        for b in batches {
            frame = frame
                .concat(&b.frame)
                .expect("window batches share the watched schema");
        }
        Some(frame)
    }

    /// Per-column merged summaries of the current window (the screen
    /// input for drift scoring) — merged from the retained per-batch
    /// summaries, no row scan.
    fn window_summaries(&self) -> Vec<(String, ColumnSummary)> {
        let mut batches = self.window.iter();
        let Some(first) = batches.next() else {
            return Vec::new();
        };
        let mut merged = first.summaries.clone();
        for b in batches {
            for (acc, s) in merged.iter_mut().zip(&b.summaries) {
                *acc = acc.merge(s);
            }
        }
        self.d_pass
            .columns()
            .iter()
            .map(|c| c.name().to_string())
            .zip(merged)
            .collect()
    }

    /// Score the current window against every baseline profile.
    /// Bumps `drift_checks` (and `drift_triggers` when anything
    /// crosses `τ_drift`); emits one `drift_score` event per profile.
    pub fn check_drift(&mut self, tracer: &Tracer) -> DriftReport {
        let window = self.window_frame();
        let summaries = self.window_summaries();
        let report = self.scorer.score(window.as_ref(), &summaries, tracer);
        self.metrics.drift_checks += 1;
        if report.any_drifted() {
            self.metrics.drift_triggers += 1;
        }
        report
    }

    /// The candidate PVTs a targeted re-diagnosis over the given
    /// drifted profiles starts from: ids assigned sequentially from 0
    /// in baseline profile order, transforms per profile exactly as
    /// batch discovery assigns them — so a triggered run and an
    /// offline run given these candidates see identical inputs.
    pub fn candidates(&self, drifted: &[usize]) -> Vec<Pvt> {
        let mut pvts = Vec::new();
        let mut id = 0;
        for &i in drifted {
            let profile = &self.scorer.profiles()[i];
            for transform in transforms_for(profile, self.config.discovery.alternative_transforms) {
                pvts.push(Pvt {
                    id,
                    profile: profile.clone(),
                    transform,
                });
                id += 1;
            }
        }
        pvts
    }

    /// Targeted greedy re-diagnosis of the current window: the
    /// drifted profiles seed the candidate set, the window is the
    /// failing dataset, the watched `d_pass` the passing one, and
    /// `cache` (typically the namespace's resident cache) both warms
    /// the run and absorbs its scores. Emits a `monitor_trigger`
    /// event.
    pub fn diagnose_greedy(
        &self,
        factory: &dyn SystemFactory,
        drifted: &[usize],
        cache: &mut ScoreCache,
        tracer: &Tracer,
    ) -> Result<Explanation> {
        let (window, pvts) = self.trigger(drifted, tracer)?;
        explain_greedy_parallel_cached_with_pvts(
            factory,
            &window,
            &self.d_pass,
            pvts,
            &self.config,
            cache,
        )
    }

    /// Targeted group-testing re-diagnosis; see
    /// [`diagnose_greedy`](Watcher::diagnose_greedy).
    pub fn diagnose_group_test(
        &self,
        factory: &dyn SystemFactory,
        drifted: &[usize],
        strategy: PartitionStrategy,
        cache: &mut ScoreCache,
        tracer: &Tracer,
    ) -> Result<Explanation> {
        let (window, pvts) = self.trigger(drifted, tracer)?;
        explain_group_test_parallel_cached_with_pvts(
            factory,
            &window,
            &self.d_pass,
            pvts,
            &self.config,
            strategy,
            cache,
        )
    }

    fn trigger(&self, drifted: &[usize], tracer: &Tracer) -> Result<(DataFrame, Vec<Pvt>)> {
        if drifted.iter().any(|&i| i >= self.scorer.profiles().len()) {
            return Err(PrismError::BadInput(format!(
                "drifted profile index out of range (baseline has {} profiles)",
                self.scorer.profiles().len()
            )));
        }
        let window = self.window_frame().ok_or_else(|| {
            PrismError::BadInput("cannot diagnose before any batch was ingested".into())
        })?;
        let pvts = self.candidates(drifted);
        if pvts.is_empty() {
            return Err(PrismError::NoDiscriminativePvts);
        }
        let (drifted, candidates, window_rows) =
            (drifted.to_vec(), pvts.len(), window.n_rows() as u64);
        tracer.emit(move || {
            Event::MonitorTrigger(MonitorTriggerSpan {
                drifted,
                candidates,
                window_rows,
            })
        });
        Ok((window, pvts))
    }
}

fn schema_line(df: &DataFrame) -> String {
    df.columns()
        .iter()
        .map(|c| format!("{}:{:?}", c.name(), c.dtype()))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::{Column, DType};

    fn pass_frame() -> DataFrame {
        let xs: Vec<Option<f64>> = (0..40).map(|i| Some((i % 10) as f64)).collect();
        let labels: Vec<Option<String>> = (0..40)
            .map(|i| Some(if i % 2 == 0 { "-1" } else { "1" }.to_string()))
            .collect();
        DataFrame::from_columns(vec![
            Column::from_floats("x", xs),
            Column::from_strings("target", DType::Categorical, labels),
        ])
        .unwrap()
    }

    // `labels[i % 2]` with the same x generator as `pass_frame`:
    // `batch(n, 0.0, ["-1", "1"])` replicates the passing
    // distribution exactly (full periods), so no profile drifts.
    fn batch(n: usize, shift: f64, labels: [&str; 2]) -> DataFrame {
        let xs: Vec<Option<f64>> = (0..n).map(|i| Some((i % 10) as f64 + shift)).collect();
        let labels: Vec<Option<String>> = (0..n).map(|i| Some(labels[i % 2].to_string())).collect();
        DataFrame::from_columns(vec![
            Column::from_floats("x", xs),
            Column::from_strings("target", DType::Categorical, labels),
        ])
        .unwrap()
    }

    fn watcher() -> Watcher {
        Watcher::new(
            pass_frame(),
            PrismConfig::with_threshold(0.2),
            MonitorConfig::default(),
        )
    }

    #[test]
    fn live_sketches_match_a_scratch_rebuild() {
        let mut w = watcher();
        let tracer = Tracer::off();
        let mut whole = batch(8, 0.0, ["-1", "1"]);
        w.ingest(whole.clone(), &tracer).unwrap();
        for b in [batch(5, 0.0, ["1", "1"]), batch(11, 2.0, ["-1", "0"])] {
            whole = whole.concat(&b).unwrap();
            w.ingest(b, &tracer).unwrap();
        }
        assert_eq!(w.batches(), 3);
        assert_eq!(w.rows(), 24);
        for col in whole.columns() {
            let live = w.live_summary(col.name()).unwrap();
            assert_eq!(
                live.fingerprint(),
                ColumnSummary::build(col).fingerprint(),
                "summary of {} diverged from scratch rebuild",
                col.name()
            );
        }
        let x = whole.column("x").unwrap();
        assert_eq!(
            w.live_numeric_sketch("x").unwrap().fingerprint(),
            NumericSketch::build(x.len(), &x.f64_values()).fingerprint(),
        );
        let t = whole.column("target").unwrap();
        let cells: Vec<Option<&str>> = (0..t.len())
            .map(|i| {
                t.str_values()
                    .into_iter()
                    .find(|(j, _)| *j == i)
                    .map(|(_, s)| s)
            })
            .collect();
        assert_eq!(
            w.live_categorical_sketch("target").unwrap().fingerprint(),
            CategoricalSketch::from_values(&cells, DEFAULT_BUCKETS).fingerprint(),
        );
    }

    #[test]
    fn window_keeps_only_the_recent_batches() {
        let mut w = watcher();
        let tracer = Tracer::off();
        for _ in 0..5 {
            w.ingest(batch(6, 0.0, ["-1", "1"]), &tracer).unwrap();
        }
        // window_batches = 2 → the window holds 12 of the 30 rows.
        assert_eq!(w.window_frame().unwrap().n_rows(), 12);
        assert_eq!(w.rows(), 30);
    }

    #[test]
    fn clean_stream_never_drifts_and_mostly_screens() {
        let mut w = watcher();
        let tracer = Tracer::off();
        for _ in 0..3 {
            w.ingest(batch(10, 0.0, ["-1", "1"]), &tracer).unwrap();
            let report = w.check_drift(&tracer);
            assert!(!report.any_drifted(), "clean data must not drift");
        }
        assert_eq!(w.metrics().drift_checks, 3);
        assert_eq!(w.metrics().drift_triggers, 0);
        assert_eq!(w.metrics().batches_ingested, 3);
        assert!(w.metrics().ingest_latency.count == 3);
    }

    #[test]
    fn injected_disconnect_drifts_within_the_window() {
        let mut w = watcher();
        let tracer = Tracer::off();
        for _ in 0..3 {
            w.ingest(batch(10, 0.0, ["-1", "1"]), &tracer).unwrap();
            assert!(!w.check_drift(&tracer).any_drifted());
        }
        // Out-of-domain labels ("0"/"4" instead of "-1"/"1").
        w.ingest(batch(10, 0.0, ["0", "4"]), &tracer).unwrap();
        let report = w.check_drift(&tracer);
        assert!(report.any_drifted(), "injected disconnect must drift");
        let drifted = report.drifted();
        assert!(drifted
            .iter()
            .all(|&i| w.profiles()[i].attributes().contains(&"target".to_string())));
        assert_eq!(w.metrics().drift_triggers, 1);
        // Candidates mirror discovery's id assignment: sequential
        // from zero.
        let pvts = w.candidates(&drifted);
        assert!(!pvts.is_empty());
        for (k, p) in pvts.iter().enumerate() {
            assert_eq!(p.id, k);
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut w = watcher();
        let bad =
            DataFrame::from_columns(vec![Column::from_floats("x", vec![Some(1.0), Some(2.0)])])
                .unwrap();
        let err = w.ingest(bad, &Tracer::off()).unwrap_err();
        assert!(matches!(err, PrismError::BadInput(_)));
        assert_eq!(w.batches(), 0, "rejected batch must not count");
    }

    #[test]
    fn diagnose_requires_ingested_data_and_valid_indices() {
        let w = watcher();
        let mut cache = ScoreCache::new();
        let factory = || |_: &DataFrame| 0.0;
        let err = w
            .diagnose_greedy(&factory, &[0], &mut cache, &Tracer::off())
            .unwrap_err();
        assert!(matches!(err, PrismError::BadInput(_)));
    }
}
