//! Drift scoring: the passing-run profile set replayed against a
//! sliding window of the live stream.
//!
//! The score of profile `P` over window `W` is exactly the paper's
//! violation function `V(W, P) ∈ [0, 1]` — the same quantity batch
//! diagnosis uses to decide discriminativeness — so a drifted profile
//! is by construction a candidate the offline pipeline would also
//! consider. Before touching rows, each profile is screened against
//! the window's merged [`ColumnSummary`]s: a summary that *proves*
//! the violation is zero (null fraction under θ, hull inside the
//! domain interval, support inside the domain set) settles the score
//! without scanning the window.

use dataprism::{violation, Profile};
use dp_frame::DataFrame;
use dp_stats::sketch::ColumnSummary;
use dp_trace::{DriftScoreSpan, Event, Tracer};

/// One profile's drift verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScore {
    /// Index of the profile in the watcher's baseline profile set.
    pub profile: usize,
    /// Violation of the profile over the current window, in `[0, 1]`.
    pub score: f64,
    /// Whether the sketch screen proved the score zero without
    /// scanning the window rows.
    pub screened: bool,
    /// Whether `score > τ_drift`.
    pub drifted: bool,
}

/// The outcome of one drift check over the current window.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// One entry per baseline profile, in baseline order.
    pub scores: Vec<DriftScore>,
    /// Rows in the scored window.
    pub window_rows: u64,
    /// The `τ_drift` the verdicts were taken against.
    pub threshold: f64,
}

impl DriftReport {
    /// Indices of the drifted profiles, in baseline order.
    pub fn drifted(&self) -> Vec<usize> {
        self.scores
            .iter()
            .filter(|s| s.drifted)
            .map(|s| s.profile)
            .collect()
    }

    /// Whether any profile drifted past the threshold.
    pub fn any_drifted(&self) -> bool {
        self.scores.iter().any(|s| s.drifted)
    }

    /// How many profiles the sketch screen settled without a scan.
    pub fn screened(&self) -> usize {
        self.scores.iter().filter(|s| s.screened).count()
    }
}

/// Scores a window of live data against a fixed baseline profile
/// set. Stateless between checks — the state (window, sketches)
/// lives in the [`crate::Watcher`].
#[derive(Debug, Clone)]
pub struct DriftScorer {
    profiles: Vec<Profile>,
    tau_drift: f64,
}

impl DriftScorer {
    /// A scorer over the given baseline profiles and threshold.
    pub fn new(profiles: Vec<Profile>, tau_drift: f64) -> Self {
        DriftScorer {
            profiles,
            tau_drift,
        }
    }

    /// The baseline profile set, in discovery order. [`DriftScore`]
    /// and [`DriftReport`] indices refer to this slice.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// The configured `τ_drift`.
    pub fn tau_drift(&self) -> f64 {
        self.tau_drift
    }

    /// Score every baseline profile against the window. `window` is
    /// `None` before any batch arrived (all scores are then zero);
    /// `summaries` are the window's per-column merged summaries used
    /// by the screen. Emits one `drift_score` trace event per
    /// profile.
    pub fn score(
        &self,
        window: Option<&DataFrame>,
        summaries: &[(String, ColumnSummary)],
        tracer: &Tracer,
    ) -> DriftReport {
        let window_rows = window.map_or(0, |f| f.n_rows()) as u64;
        let mut scores = Vec::with_capacity(self.profiles.len());
        for (i, profile) in self.profiles.iter().enumerate() {
            let (score, screened) = match window {
                None => (0.0, true),
                Some(frame) => {
                    if provably_zero(profile, summaries) {
                        (0.0, true)
                    } else {
                        (violation(frame, profile), false)
                    }
                }
            };
            let drifted = score > self.tau_drift;
            tracer.emit(|| {
                Event::DriftScore(DriftScoreSpan {
                    profile: i,
                    score,
                    threshold: self.tau_drift,
                    drifted,
                    screened,
                })
            });
            scores.push(DriftScore {
                profile: i,
                score,
                screened,
                drifted,
            });
        }
        DriftReport {
            scores,
            window_rows,
            threshold: self.tau_drift,
        }
    }
}

/// Whether the window's summaries *prove* `violation(window, p) == 0`
/// — sound, never complete: a `false` only means the screen cannot
/// tell and the exact violation must be computed.
///
/// The three screens mirror the violation formulas exactly:
/// - `Missing`: violation is `max(0, (nulls/rows − θ)/(1 − θ))`, zero
///   iff the null fraction is within θ — which the summary carries.
/// - `DomainNumeric`: violation counts values outside `[lb, ub]`.
///   With no non-finite values, the summary hull bounds every value,
///   so hull ⊆ `[lb, ub]` (or an all-null column) proves zero. NaN
///   never compares outside the interval, but a NaN-poisoned hull no
///   longer bounds ±∞, so `non_finite` disables the screen.
/// - `DomainCategorical`: violation counts values outside the set
///   `S`; support ⊆ `S` proves zero (support is exact when present).
fn provably_zero(profile: &Profile, summaries: &[(String, ColumnSummary)]) -> bool {
    let of = |attr: &str| summaries.iter().find(|(n, _)| n == attr).map(|(_, s)| s);
    match profile {
        Profile::Missing { attr, theta } => of(attr).is_some_and(|s| s.null_fraction() <= *theta),
        Profile::DomainNumeric { attr, lb, ub } => of(attr).is_some_and(|s| {
            !s.non_finite
                && match (s.min, s.max) {
                    (Some(lo), Some(hi)) => *lb <= lo && hi <= *ub,
                    // No finite values and no non-finite ones: every
                    // row is NULL, nothing can fall outside.
                    _ => true,
                }
        }),
        Profile::DomainCategorical { attr, values } => of(attr).is_some_and(|s| {
            s.support
                .as_ref()
                .is_some_and(|sup| sup.iter().all(|v| values.contains(v)))
        }),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::{Column, DType};

    fn summaries_of(df: &DataFrame) -> Vec<(String, ColumnSummary)> {
        df.columns()
            .iter()
            .map(|c| (c.name().to_string(), ColumnSummary::build(c)))
            .collect()
    }

    fn frame(vals: &[Option<f64>]) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_floats("x", vals.to_vec())]).unwrap()
    }

    #[test]
    fn screens_agree_with_violation() {
        let df = frame(&[Some(1.0), Some(2.0), None, Some(3.0)]);
        let summaries = summaries_of(&df);
        // In-domain: screened, and the violation really is zero.
        let inside = Profile::DomainNumeric {
            attr: "x".into(),
            lb: 0.0,
            ub: 5.0,
        };
        assert!(provably_zero(&inside, &summaries));
        assert_eq!(violation(&df, &inside), 0.0);
        // Out-of-domain: not screened.
        let outside = Profile::DomainNumeric {
            attr: "x".into(),
            lb: 0.0,
            ub: 2.5,
        };
        assert!(!provably_zero(&outside, &summaries));
        // Missing under / over threshold.
        let lax = Profile::Missing {
            attr: "x".into(),
            theta: 0.5,
        };
        let strict = Profile::Missing {
            attr: "x".into(),
            theta: 0.1,
        };
        assert!(provably_zero(&lax, &summaries));
        assert_eq!(violation(&df, &lax), 0.0);
        assert!(!provably_zero(&strict, &summaries));
    }

    #[test]
    fn non_finite_disables_the_numeric_screen() {
        let df = frame(&[Some(1.0), Some(f64::INFINITY)]);
        let summaries = summaries_of(&df);
        let p = Profile::DomainNumeric {
            attr: "x".into(),
            lb: 0.0,
            ub: 5.0,
        };
        // +∞ falls outside [0, 5]: the screen must not claim zero.
        assert!(!provably_zero(&p, &summaries));
        assert!(violation(&df, &p) > 0.0);
    }

    #[test]
    fn categorical_screen_requires_support_inside_the_set() {
        let df = DataFrame::from_columns(vec![Column::from_strings(
            "c",
            DType::Categorical,
            vec![Some("a".into()), Some("b".into()), None],
        )])
        .unwrap();
        let summaries = summaries_of(&df);
        let inside = Profile::DomainCategorical {
            attr: "c".into(),
            values: ["a", "b", "z"].iter().map(|s| s.to_string()).collect(),
        };
        let outside = Profile::DomainCategorical {
            attr: "c".into(),
            values: ["a"].iter().map(|s| s.to_string()).collect(),
        };
        assert!(provably_zero(&inside, &summaries));
        assert_eq!(violation(&df, &inside), 0.0);
        assert!(!provably_zero(&outside, &summaries));
        assert!(violation(&df, &outside) > 0.0);
    }

    #[test]
    fn scorer_reports_in_baseline_order_and_counts_screens() {
        let df = frame(&[Some(10.0), Some(20.0)]);
        let summaries = summaries_of(&df);
        let scorer = DriftScorer::new(
            vec![
                Profile::DomainNumeric {
                    attr: "x".into(),
                    lb: 0.0,
                    ub: 100.0,
                },
                Profile::DomainNumeric {
                    attr: "x".into(),
                    lb: 0.0,
                    ub: 15.0,
                },
            ],
            0.1,
        );
        let report = scorer.score(Some(&df), &summaries, &Tracer::off());
        assert_eq!(report.scores.len(), 2);
        assert_eq!(report.window_rows, 2);
        assert!(report.scores[0].screened && report.scores[0].score == 0.0);
        assert!(!report.scores[1].screened);
        assert!((report.scores[1].score - 0.5).abs() < 1e-12);
        assert_eq!(report.drifted(), vec![1]);
        assert_eq!(report.screened(), 1);
    }

    #[test]
    fn empty_window_scores_zero_everywhere() {
        let scorer = DriftScorer::new(
            vec![Profile::Missing {
                attr: "x".into(),
                theta: 0.0,
            }],
            0.1,
        );
        let report = scorer.score(None, &[], &Tracer::off());
        assert_eq!(report.window_rows, 0);
        assert!(!report.any_drifted());
        assert!(report.scores[0].screened);
    }
}
