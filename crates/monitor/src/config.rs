//! Monitoring knobs, deliberately few: the diagnosis side is
//! configured by the [`dataprism::PrismConfig`] the watcher carries.

/// Configuration of the continuous-monitoring loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Drift threshold `τ_drift`: a profile whose violation over the
    /// current window exceeds this is *drifted* and seeds the
    /// targeted re-diagnosis. Violation scores live in `[0, 1]`, so
    /// so does the threshold.
    pub tau_drift: f64,
    /// Sliding-window length in batches. Drift is scored over the
    /// most recent `window_batches` batches only — detection lag is
    /// therefore bounded by the window, not by stream length (a
    /// disconnect injected mid-stream is never diluted by an
    /// arbitrarily long clean prefix).
    pub window_batches: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            tau_drift: 0.1,
            window_batches: 2,
        }
    }
}

impl MonitorConfig {
    /// Default config with the given drift threshold.
    pub fn with_tau(tau_drift: f64) -> Self {
        MonitorConfig {
            tau_drift,
            ..MonitorConfig::default()
        }
    }
}
