//! # dp_monitor — continuous observability for DataPrism
//!
//! Batch diagnosis (the `dataprism` crate) answers *"why does this
//! failing dataset break the system?"* after the fact. This crate
//! turns the same machinery into a **continuous monitoring layer**
//! that answers *"is the data drifting toward a disconnect right
//! now?"* over an append stream of row batches:
//!
//! 1. A [`Watcher`] folds every ingested batch into **mergeable
//!    streaming sketches** — one [`dp_stats::sketch::ColumnSummary`]
//!    plus a numeric or keyed categorical sketch per monitored
//!    column. The merges are associative, commutative, and
//!    *bit-identical* to rebuilding the sketch from scratch over the
//!    concatenated rows, so a live profile is indistinguishable from
//!    an offline one.
//! 2. A [`DriftScorer`] compares a sliding window of recent batches
//!    against the passing-run profile set (the profiles discovered
//!    from `D_pass` at watch time). Each profile gets a drift score
//!    in `[0, 1]` — exactly the paper's violation function over the
//!    window — with a sketch-based screen that proves most scores
//!    zero without touching rows.
//! 3. When any score crosses `τ_drift`, the watcher escalates to a
//!    **targeted re-diagnosis**: only the drifted profiles seed the
//!    candidate set, and the run reuses the namespace's warm
//!    [`dataprism::ScoreCache`] through
//!    [`dataprism::explain_greedy_parallel_cached_with_pvts`] /
//!    [`dataprism::explain_group_test_parallel_cached_with_pvts`].
//!    Given the same candidates, the triggered diagnosis is
//!    digest-identical to an offline run.
//!
//! Every stage is observable: ingests emit `sketch_merge` trace
//! events, scoring emits `drift_score`, escalation emits
//! `monitor_trigger` (schema v5), and the watcher keeps a
//! [`dp_trace::RunMetrics`] with ingest counters and latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod drift;
mod watcher;

pub use config::MonitorConfig;
pub use drift::{DriftReport, DriftScore, DriftScorer};
pub use watcher::Watcher;
