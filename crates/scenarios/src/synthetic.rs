//! Synthetic pipelines with planted root causes (§5.2, appendix D).
//!
//! A synthetic pipeline consists of:
//!
//! - a **passing dataset**: `m` numeric attributes uniform in `[0, 1]`;
//! - a **failing dataset**: the same schema where each *planted*
//!   discriminative PVT corrupts one attribute (domain shift or
//!   missing values), with a controllable severity;
//! - a **system** whose malfunction is a deterministic function of
//!   which planted profiles the (transformed) dataset still violates:
//!   `m(D) = base + span · min_groups(unfixed fraction)` for a
//!   disjunction of conjunctive cause groups. Assumptions A1–A3 hold
//!   by construction (each cause constituent strictly reduces the
//!   score, compositions reduce iff a constituent does), except where
//!   a builder deliberately violates them;
//! - the pre-built discriminative [`Pvt`] list, so experiments can
//!   control the candidate count directly (the paper's Figs 8–9 vary
//!   it up to 300K) without paying for rediscovery.

use dataprism::profile::Profile;
use dataprism::transform::{ImputeStrategy, Transform};
use dataprism::{PrismConfig, Pvt, System};
use dp_frame::{Column, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a planted PVT corrupts its attribute in the failing dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlantKind {
    /// Shift a `severity` fraction of the values out of the passing
    /// domain `[0, 1]` (into `[2, 3]`).
    Domain {
        /// Fraction of rows corrupted.
        severity: f64,
    },
    /// NULL out a `severity` fraction of the values.
    Missing {
        /// Fraction of rows nulled.
        severity: f64,
    },
}

/// One planted discriminative PVT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plant {
    /// Index of the attribute it corrupts (attributes may host
    /// several plants — that is what creates PVT-dependency edges).
    pub attr: usize,
    /// Corruption kind and severity.
    pub kind: PlantKind,
}

/// Full specification of a synthetic pipeline.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Rows per dataset.
    pub n_rows: usize,
    /// Total attributes (≥ the number of planted attributes; the
    /// rest stay clean).
    pub n_attributes: usize,
    /// The planted discriminative PVTs; `plants[i]` becomes PVT id `i`.
    pub plants: Vec<Plant>,
    /// Ground-truth cause: a disjunction of conjunctions over plant
    /// indices. Fixing every PVT of at least one group makes the
    /// system pass.
    pub cause: Vec<Vec<usize>>,
    /// RNG seed for data generation.
    pub seed: u64,
}

/// The synthetic system: scores a dataset by how much of the planted
/// cause is still broken.
#[derive(Debug, Clone)]
pub struct SyntheticSystem {
    plants: Vec<(String, PlantKind)>,
    cause: Vec<Vec<usize>>,
    base: f64,
    span: f64,
    /// When true the score is all-or-nothing per cause group (no
    /// partial credit) — this *violates assumption A2* and is the
    /// appendix-B setting where Algorithm 5 is required.
    pub all_or_nothing: bool,
}

/// Malfunction floor of the synthetic systems (their score on fully
/// repaired data).
pub const BASE_SCORE: f64 = 0.02;
/// Threshold used by all synthetic scenarios.
pub const THRESHOLD: f64 = 0.05;

fn attr_name(i: usize) -> String {
    format!("a{i}")
}

impl SyntheticSystem {
    fn plant_fixed(&self, df: &DataFrame, idx: usize) -> bool {
        let (attr, kind) = &self.plants[idx];
        let Ok(col) = df.column(attr) else {
            return false;
        };
        let n = col.len();
        if n == 0 {
            return false;
        }
        match kind {
            PlantKind::Domain { .. } => {
                let values = col.f64_values();
                if values.is_empty() {
                    return false;
                }
                let outside = values
                    .iter()
                    .filter(|(_, v)| !(-0.1..=1.1).contains(v))
                    .count();
                (outside as f64) <= 0.05 * values.len() as f64
            }
            // Strict: the adversarial scenario's cause is a single
            // NULL cell, which must count as "still broken".
            PlantKind::Missing { .. } => col.null_count() == 0,
        }
    }
}

impl System for SyntheticSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        let fixed: Vec<bool> = (0..self.plants.len())
            .map(|i| self.plant_fixed(df, i))
            .collect();
        let worst = self
            .cause
            .iter()
            .map(|group| {
                let unfixed = group.iter().filter(|&&i| !fixed[i]).count();
                if self.all_or_nothing {
                    f64::from(unfixed > 0)
                } else {
                    unfixed as f64 / group.len().max(1) as f64
                }
            })
            .fold(f64::INFINITY, f64::min);
        let worst = if worst.is_finite() { worst } else { 1.0 };
        self.base + self.span * worst
    }

    fn name(&self) -> &str {
        "synthetic-pipeline"
    }
}

/// A fully materialized synthetic scenario.
pub struct SyntheticScenario {
    /// Clean dataset.
    pub d_pass: DataFrame,
    /// Corrupted dataset.
    pub d_fail: DataFrame,
    /// Pre-built discriminative PVTs (id `i` = plant `i`).
    pub pvts: Vec<Pvt>,
    /// The system under diagnosis.
    pub system: SyntheticSystem,
    /// Diagnosis configuration (τ = [`THRESHOLD`]).
    pub config: PrismConfig,
    /// The planted cause.
    pub cause: Vec<Vec<usize>>,
}

impl SyntheticScenario {
    /// Whether an explanation's PVT ids cover at least one cause
    /// group exactly (minimality included).
    pub fn is_exact_cause(&self, ids: &[usize]) -> bool {
        self.cause.iter().any(|group| {
            let mut g = group.clone();
            g.sort_unstable();
            let mut s = ids.to_vec();
            s.sort_unstable();
            g == s
        })
    }

    /// Whether the ids cover (superset of) some cause group.
    pub fn covers_cause(&self, ids: &[usize]) -> bool {
        self.cause
            .iter()
            .any(|group| group.iter().all(|i| ids.contains(i)))
    }

    /// A [`dataprism::SystemFactory`] that builds independent clones
    /// of this scenario's system for the parallel runtime.
    pub fn factory(&self) -> impl dataprism::SystemFactory {
        let system = self.system.clone();
        move || system.clone()
    }
}

/// Materialize a specification into datasets, PVTs, and a system.
pub fn build(spec: &SyntheticSpec) -> SyntheticScenario {
    assert!(
        spec.plants.iter().all(|p| p.attr < spec.n_attributes),
        "plant attribute out of range"
    );
    assert!(
        spec.cause.iter().flatten().all(|&i| i < spec.plants.len()),
        "cause index out of range"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.n_rows;
    // Passing dataset: everything clean.
    let mut pass_cols = Vec::with_capacity(spec.n_attributes);
    let mut fail_cols_raw: Vec<Vec<Option<f64>>> = Vec::with_capacity(spec.n_attributes);
    for _ in 0..spec.n_attributes {
        let pass_vals: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen::<f64>())).collect();
        let fail_vals: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen::<f64>())).collect();
        pass_cols.push(pass_vals);
        fail_cols_raw.push(fail_vals);
    }
    // Apply corruptions to the failing dataset.
    for plant in &spec.plants {
        let col = &mut fail_cols_raw[plant.attr];
        match plant.kind {
            PlantKind::Domain { severity } => {
                for v in col.iter_mut() {
                    if rng.gen_bool(severity.clamp(0.0, 1.0)) {
                        *v = Some(2.0 + rng.gen::<f64>());
                    }
                }
            }
            PlantKind::Missing { severity } => {
                for v in col.iter_mut() {
                    if rng.gen_bool(severity.clamp(0.0, 1.0)) {
                        *v = None;
                    }
                }
            }
        }
    }
    let d_pass = DataFrame::from_columns(
        pass_cols
            .into_iter()
            .enumerate()
            .map(|(i, vals)| Column::from_floats(attr_name(i), vals))
            .collect(),
    )
    .expect("unique generated names");
    let d_fail = DataFrame::from_columns(
        fail_cols_raw
            .into_iter()
            .enumerate()
            .map(|(i, vals)| Column::from_floats(attr_name(i), vals))
            .collect(),
    )
    .expect("unique generated names");

    // PVTs: parameters as discovered on the passing dataset.
    let pvts: Vec<Pvt> = spec
        .plants
        .iter()
        .enumerate()
        .map(|(id, plant)| {
            let attr = attr_name(plant.attr);
            match plant.kind {
                PlantKind::Domain { severity } => Pvt {
                    id,
                    profile: Profile::DomainNumeric {
                        attr: attr.clone(),
                        lb: 0.0,
                        ub: 1.0,
                    },
                    // Full corruption repairs by rescaling (Fig 1 row
                    // 2 alt 1); partial corruption by winsorizing
                    // only the violating values (alt 2), which also
                    // gives the benefit score its coverage signal.
                    transform: if severity >= 0.999 {
                        Transform::LinearRescale {
                            attr,
                            lb: 0.0,
                            ub: 1.0,
                        }
                    } else {
                        Transform::Winsorize {
                            attr,
                            lb: 0.0,
                            ub: 1.0,
                        }
                    },
                },
                PlantKind::Missing { .. } => Pvt {
                    id,
                    profile: Profile::Missing {
                        attr: attr.clone(),
                        theta: 0.0,
                    },
                    transform: Transform::Impute {
                        attr,
                        strategy: ImputeStrategy::Central,
                    },
                },
            }
        })
        .collect();

    let system = SyntheticSystem {
        plants: spec
            .plants
            .iter()
            .map(|p| (attr_name(p.attr), p.kind))
            .collect(),
        cause: spec.cause.clone(),
        base: BASE_SCORE,
        span: 0.96,
        all_or_nothing: false,
    };
    let config = PrismConfig {
        threshold: THRESHOLD,
        seed: spec.seed ^ 0x5EED,
        ..Default::default()
    };
    SyntheticScenario {
        d_pass,
        d_fail,
        pvts,
        system,
        config,
        cause: spec.cause.clone(),
    }
}

/// Severity used for spurious (non-cause) plants: low coverage keeps
/// their benefit score below the full-severity cause plants, which
/// is exactly the regime where observations O2/O3 hold.
const SPURIOUS_SEVERITY: f64 = 0.3;

/// A pipeline with one single-PVT cause among `n_discriminative`
/// planted PVTs spread over `n_attributes` attributes
/// (Fig 9(a)/(b), Fig 8).
pub fn single_cause(n_attributes: usize, n_discriminative: usize, seed: u64) -> SyntheticScenario {
    single_cause_with_rows(n_attributes, n_discriminative, 100, seed)
}

/// [`single_cause`] at an explicit row count: the Fig 8 row-scaling
/// panel and the CI memory/sampling smoke run it at 10⁶–10⁷ rows,
/// where copy-on-write chunk sharing and the confidence-bounded
/// sampled oracle actually matter.
pub fn single_cause_with_rows(
    n_attributes: usize,
    n_discriminative: usize,
    n_rows: usize,
    seed: u64,
) -> SyntheticScenario {
    assert!(n_attributes >= 1 && n_discriminative >= 1);
    let mut plants = Vec::with_capacity(n_discriminative);
    plants.push(Plant {
        attr: 0,
        kind: PlantKind::Domain { severity: 1.0 },
    });
    for i in 1..n_discriminative {
        let attr = i % n_attributes;
        // Alternate kinds so attributes hosting two plants create
        // dependency edges; same-attr duplicates switch kinds.
        let kind = if (i / n_attributes).is_multiple_of(2) && attr != 0 {
            PlantKind::Domain {
                severity: SPURIOUS_SEVERITY,
            }
        } else {
            PlantKind::Missing {
                severity: SPURIOUS_SEVERITY,
            }
        };
        plants.push(Plant { attr, kind });
    }
    build(&SyntheticSpec {
        n_rows,
        n_attributes,
        plants,
        cause: vec![vec![0]],
        seed,
    })
}

/// A pipeline whose cause is a conjunction of `size` PVTs (Fig 9(c)).
/// All cause plants have full severity.
pub fn conjunctive_cause(
    n_attributes: usize,
    n_discriminative: usize,
    size: usize,
    seed: u64,
) -> SyntheticScenario {
    conjunctive_cause_with_rows(n_attributes, n_discriminative, size, 100, seed)
}

/// [`conjunctive_cause`] at an explicit row count (the CI
/// memory/sampling smoke: a conjunctive explanation gives
/// minimality checking unknown failing compositions to settle on
/// samples).
pub fn conjunctive_cause_with_rows(
    n_attributes: usize,
    n_discriminative: usize,
    size: usize,
    n_rows: usize,
    seed: u64,
) -> SyntheticScenario {
    assert!(size >= 1 && size <= n_discriminative && size <= n_attributes);
    let mut plants = Vec::with_capacity(n_discriminative);
    for i in 0..size {
        plants.push(Plant {
            attr: i,
            kind: PlantKind::Domain { severity: 1.0 },
        });
    }
    for i in size..n_discriminative {
        let attr = i % n_attributes;
        let kind = if attr < size {
            PlantKind::Missing {
                severity: SPURIOUS_SEVERITY,
            }
        } else if (i / n_attributes).is_multiple_of(2) {
            PlantKind::Domain {
                severity: SPURIOUS_SEVERITY,
            }
        } else {
            PlantKind::Missing {
                severity: SPURIOUS_SEVERITY,
            }
        };
        plants.push(Plant { attr, kind });
    }
    build(&SyntheticSpec {
        n_rows,
        n_attributes,
        plants,
        cause: vec![(0..size).collect()],
        seed,
    })
}

/// A pipeline whose cause is a disjunction of `n_groups` single-PVT
/// alternatives (Fig 9(d)).
pub fn disjunctive_cause(
    n_attributes: usize,
    n_discriminative: usize,
    n_groups: usize,
    seed: u64,
) -> SyntheticScenario {
    assert!(n_groups >= 1 && n_groups <= n_discriminative && n_groups <= n_attributes);
    let mut plants = Vec::with_capacity(n_discriminative);
    for i in 0..n_groups {
        plants.push(Plant {
            attr: i,
            kind: PlantKind::Domain { severity: 1.0 },
        });
    }
    for i in n_groups..n_discriminative {
        let attr = i % n_attributes;
        plants.push(Plant {
            attr,
            kind: if (i / n_attributes).is_multiple_of(2) && attr >= n_groups {
                PlantKind::Domain {
                    severity: SPURIOUS_SEVERITY,
                }
            } else {
                PlantKind::Missing {
                    severity: SPURIOUS_SEVERITY,
                }
            },
        });
    }
    build(&SyntheticSpec {
        n_rows: 100,
        n_attributes,
        plants,
        cause: (0..n_groups).map(|i| vec![i]).collect(),
        seed,
    })
}

/// An **A2-violating** pipeline (appendix B's setting): the
/// malfunction is all-or-nothing — it stays at the failing level
/// until *every* PVT of the conjunctive cause is fixed, then drops to
/// the base. No partial credit, so the greedy algorithm keeps no
/// intervention and Algorithm 5's decision-tree search is needed.
pub fn interacting_cause(n_discriminative: usize, size: usize, seed: u64) -> SyntheticScenario {
    assert!(size >= 2 && size <= n_discriminative);
    let mut scenario = conjunctive_cause(n_discriminative, n_discriminative, size, seed);
    scenario.system.all_or_nothing = true;
    scenario
}

/// Ablation scenario isolating observation **O1** (high-degree
/// attribute prioritization): every plant has the same severity (so
/// benefit scores are uninformative) but the cause attribute hosts
/// two discriminative PVTs while every spurious attribute hosts one.
/// With O1 the greedy pick lands on the cause attribute's PVTs
/// immediately; without it the search is a blind scan.
pub fn ablation_o1(n_discriminative: usize, seed: u64) -> SyntheticScenario {
    assert!(n_discriminative >= 3);
    let sev = 0.6;
    let mut plants = vec![
        Plant {
            attr: 0,
            kind: PlantKind::Domain { severity: sev },
        },
        Plant {
            attr: 0,
            kind: PlantKind::Missing { severity: sev },
        },
    ];
    for i in 2..n_discriminative {
        plants.push(Plant {
            attr: i - 1,
            kind: PlantKind::Domain { severity: sev },
        });
    }
    build(&SyntheticSpec {
        n_rows: 100,
        n_attributes: n_discriminative - 1,
        plants,
        cause: vec![vec![0]],
        seed,
    })
}

/// Ablation scenario isolating observations **O2/O3** (benefit
/// scores): every attribute has degree one (O1 is uninformative) but
/// the cause plant has full severity while spurious plants are mild,
/// so violation × coverage points straight at the cause.
pub fn ablation_benefit(n_discriminative: usize, seed: u64) -> SyntheticScenario {
    assert!(n_discriminative >= 2);
    let mut plants = vec![Plant {
        attr: 0,
        kind: PlantKind::Domain { severity: 1.0 },
    }];
    for i in 1..n_discriminative {
        plants.push(Plant {
            attr: i,
            kind: PlantKind::Domain { severity: 0.25 },
        });
    }
    build(&SyntheticSpec {
        n_rows: 100,
        n_attributes: n_discriminative,
        plants,
        cause: vec![vec![0]],
        seed,
    })
}

/// The §5.2 adversarial pipeline: the true cause is a low-benefit
/// Missing PVT (a single corrupted cell) ranked **last** — position
/// `rank` — among `rank` discriminative PVTs, so DataPrism-GRD needs
/// `rank` interventions while group testing needs `O(log rank)`.
/// Observations O1–O3 are all violated: every attribute has degree 1
/// and the cause has the *lowest* violation and coverage.
pub fn adversarial_rank(rank: usize, seed: u64) -> SyntheticScenario {
    assert!(rank >= 2);
    let n_rows = 100;
    let mut plants: Vec<Plant> = (0..rank - 1)
        .map(|i| Plant {
            attr: i,
            kind: PlantKind::Domain { severity: 1.0 },
        })
        .collect();
    // The cause: one missing cell (severity 1/n ⇒ benefit ~1/n²).
    plants.push(Plant {
        attr: rank - 1,
        kind: PlantKind::Missing {
            severity: 1.5 / n_rows as f64,
        },
    });
    let mut scenario = build(&SyntheticSpec {
        n_rows,
        n_attributes: rank,
        plants,
        cause: vec![vec![rank - 1]],
        seed,
    });
    // Guarantee at least one NULL regardless of sampling.
    scenario
        .d_fail
        .column_mut(&attr_name(rank - 1))
        .unwrap()
        .set(0, dp_frame::Value::Null)
        .unwrap();
    scenario
}

/// The Fig 6 toy: 8 PVTs over 4 attributes (two per attribute, so
/// the PVT-dependency graph is the four-pair matching of Fig 6(a)),
/// with the disjunctive ground truth `{X1, X6} ∨ {X4, X8}`.
///
/// PVT ids ↦ paper labels: 0=X1 (A,Domain), 1=X2 (B,Domain),
/// 2=X3 (B,Missing), 3=X4 (A,Missing), 4=X5 (C,Domain),
/// 5=X6 (D,Domain), 6=X7 (C,Missing), 7=X8 (D,Missing).
pub fn toy_fig6(seed: u64) -> SyntheticScenario {
    let sev = 0.5;
    let plants = vec![
        Plant {
            attr: 0,
            kind: PlantKind::Domain { severity: sev },
        }, // X1
        Plant {
            attr: 1,
            kind: PlantKind::Domain { severity: sev },
        }, // X2
        Plant {
            attr: 1,
            kind: PlantKind::Missing { severity: sev },
        }, // X3
        Plant {
            attr: 0,
            kind: PlantKind::Missing { severity: sev },
        }, // X4
        Plant {
            attr: 2,
            kind: PlantKind::Domain { severity: sev },
        }, // X5
        Plant {
            attr: 3,
            kind: PlantKind::Domain { severity: sev },
        }, // X6
        Plant {
            attr: 2,
            kind: PlantKind::Missing { severity: sev },
        }, // X7
        Plant {
            attr: 3,
            kind: PlantKind::Missing { severity: sev },
        }, // X8
    ];
    build(&SyntheticSpec {
        n_rows: 200,
        n_attributes: 4,
        plants,
        cause: vec![vec![0, 5], vec![3, 7]],
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataprism::{explain_greedy_with_pvts, explain_group_test_with_pvts, PartitionStrategy};

    #[test]
    fn pass_and_fail_scores() {
        let mut s = single_cause(10, 10, 1);
        assert!(s.system.malfunction(&s.d_pass) <= THRESHOLD);
        assert!(s.system.malfunction(&s.d_fail) > THRESHOLD);
        // Every planted PVT is genuinely discriminative.
        for pvt in &s.pvts {
            assert!(pvt.violation(&s.d_fail) > 0.0, "{}", pvt.profile);
            assert!(pvt.violation(&s.d_pass) < 0.05, "{}", pvt.profile);
        }
    }

    #[test]
    fn greedy_finds_single_cause_in_few_interventions() {
        let mut s = single_cause(20, 20, 2);
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .unwrap();
        assert!(exp.resolved);
        assert!(s.is_exact_cause(&exp.pvt_ids()), "{:?}", exp.pvt_ids());
        assert!(
            exp.interventions <= 5,
            "O2/O3 hold, so the cause ranks first: {} interventions",
            exp.interventions
        );
    }

    #[test]
    fn group_testing_finds_single_cause_logarithmically() {
        let mut s = single_cause(32, 32, 3);
        let exp = explain_group_test_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
            PartitionStrategy::MinBisection,
        )
        .unwrap();
        assert!(exp.resolved);
        assert!(s.covers_cause(&exp.pvt_ids()), "{:?}", exp.pvt_ids());
        assert!(
            exp.interventions <= 2 * 6 + 4,
            "O(log n) interventions, got {}",
            exp.interventions
        );
    }

    #[test]
    fn conjunctive_cause_requires_all_members() {
        let mut s = conjunctive_cause(10, 15, 3, 4);
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .unwrap();
        assert!(exp.resolved);
        assert!(s.is_exact_cause(&exp.pvt_ids()), "{:?}", exp.pvt_ids());
        assert_eq!(exp.pvts.len(), 3);
    }

    #[test]
    fn disjunctive_cause_needs_any_one_group() {
        let mut s = disjunctive_cause(10, 12, 4, 5);
        let exp = explain_greedy_with_pvts(
            &mut s.system,
            &s.d_fail,
            &s.d_pass,
            s.pvts.clone(),
            &s.config,
        )
        .unwrap();
        assert!(exp.resolved);
        assert!(s.covers_cause(&exp.pvt_ids()), "{:?}", exp.pvt_ids());
        assert_eq!(exp.pvts.len(), 1, "minimality: one alternative suffices");
    }

    #[test]
    fn adversarial_rank_costs_greedy_linear_gt_log() {
        let rank = 20;
        let mut s1 = adversarial_rank(rank, 6);
        let greedy = explain_greedy_with_pvts(
            &mut s1.system,
            &s1.d_fail,
            &s1.d_pass,
            s1.pvts.clone(),
            &s1.config,
        )
        .unwrap();
        assert!(greedy.resolved);
        assert_eq!(
            greedy.interventions, rank,
            "the cause is benefit-ranked last"
        );
        let mut s2 = adversarial_rank(rank, 6);
        let gt = explain_group_test_with_pvts(
            &mut s2.system,
            &s2.d_fail,
            &s2.d_pass,
            s2.pvts.clone(),
            &s2.config,
            PartitionStrategy::MinBisection,
        )
        .unwrap();
        assert!(gt.resolved);
        assert!(
            gt.interventions < greedy.interventions / 2,
            "GT {} vs GRD {}",
            gt.interventions,
            greedy.interventions
        );
    }

    #[test]
    fn toy_fig6_structure() {
        let s = toy_fig6(7);
        assert_eq!(s.pvts.len(), 8);
        // The dependency pairs of Fig 6(a).
        let g = dataprism::graph::PvtAttributeGraph::new(&s.pvts);
        let edges = g.dependency_edges();
        assert_eq!(edges, vec![(0, 3), (1, 2), (4, 6), (5, 7)]);
    }

    #[test]
    fn toy_fig6_both_strategies_resolve() {
        for strategy in [PartitionStrategy::MinBisection, PartitionStrategy::Random] {
            let mut s = toy_fig6(8);
            let exp = explain_group_test_with_pvts(
                &mut s.system,
                &s.d_fail,
                &s.d_pass,
                s.pvts.clone(),
                &s.config,
                strategy,
            )
            .unwrap();
            assert!(exp.resolved, "{strategy:?}");
            assert!(
                s.covers_cause(&exp.pvt_ids()),
                "{strategy:?}: {:?}",
                exp.pvt_ids()
            );
        }
    }

    #[test]
    fn build_validates_spec() {
        let spec = SyntheticSpec {
            n_rows: 10,
            n_attributes: 2,
            plants: vec![Plant {
                attr: 5,
                kind: PlantKind::Domain { severity: 1.0 },
            }],
            cause: vec![vec![0]],
            seed: 0,
        };
        assert!(std::panic::catch_unwind(|| build(&spec)).is_err());
    }
}
