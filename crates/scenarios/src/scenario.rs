//! The common shape of an evaluation scenario.

use dataprism::{PrismConfig, System, SystemFactory};
use dp_frame::DataFrame;

/// A ready-to-diagnose case: system + passing/failing data +
/// threshold + ground truth.
pub struct Scenario {
    /// Human-readable name ("Sentiment Prediction", …).
    pub name: &'static str,
    /// The black-box system under diagnosis.
    pub system: Box<dyn System>,
    /// Builds fresh, independent instances of the same system — the
    /// parallel runtime gives one to each worker thread. `Send +
    /// Sync` so a whole scenario can live in a server-side registry
    /// shared across connection threads (`dp_serve`).
    pub factory: Box<dyn SystemFactory + Send + Sync>,
    /// Dataset the system functions properly on.
    pub d_pass: DataFrame,
    /// Dataset the system malfunctions on.
    pub d_fail: DataFrame,
    /// Diagnosis configuration (threshold τ, discovery knobs, seed).
    pub config: PrismConfig,
    /// Template-key patterns (see `Profile::template_key`) of the
    /// profiles that constitute the planted ground-truth cause; `*`
    /// matches any substring (so `indep_chi2(*,target)` accepts a
    /// shuffle of `target` w.r.t. any attribute — they are all the
    /// same fix). An explanation is "correct" when it contains at
    /// least one matching profile.
    pub ground_truth: Vec<String>,
}

/// Glob-lite match: `*` in `pattern` matches any (possibly empty)
/// substring.
pub fn key_matches(pattern: &str, key: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == key;
    }
    let mut rest = key;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        match rest.find(part) {
            Some(pos) => {
                if i == 0 && pos != 0 {
                    return false;
                }
                rest = &rest[pos + part.len()..];
            }
            None => return false,
        }
    }
    parts.last().map(|p| p.is_empty()).unwrap_or(true) || key.ends_with(parts.last().unwrap())
}

impl Scenario {
    /// Whether an explanation found the planted cause.
    pub fn explains_ground_truth(&self, explanation: &dataprism::Explanation) -> bool {
        self.ground_truth.iter().any(|pattern| {
            explanation
                .pvts
                .iter()
                .any(|p| key_matches(pattern, &p.profile.template_key()))
        })
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("n_pass_rows", &self.d_pass.n_rows())
            .field("n_fail_rows", &self.d_fail.n_rows())
            .field("threshold", &self.config.threshold)
            .field("ground_truth", &self.ground_truth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::key_matches;

    #[test]
    fn glob_lite_matching() {
        assert!(key_matches("domain_cat(target)", "domain_cat(target)"));
        assert!(!key_matches("domain_cat(target)", "domain_cat(other)"));
        assert!(key_matches(
            "indep_chi2(*,target)",
            "indep_chi2(sex,target)"
        ));
        assert!(key_matches(
            "indep_chi2(*,target)",
            "indep_chi2(occupation,target)"
        ));
        assert!(!key_matches(
            "indep_chi2(*,target)",
            "indep_chi2(target,sex)"
        ));
        assert!(!key_matches("indep_chi2(*,target)", "indep_pcc(a,target)"));
        assert!(key_matches("*height*", "domain_num(height)"));
    }
}
