//! Wide-schema synthetic datasets for the discovery pre-filter.
//!
//! The paper's evaluation datasets are narrow (≤ 15 attributes), so
//! the O(m²) pairwise independence pass of §4.1 never dominates. Real
//! feature matrices are not: at a few hundred attributes the pair
//! tests swamp every other discovery cost. This module generates
//! schemas of that shape — a mix of numeric and categorical columns,
//! mostly mutually independent, with a handful of *planted*
//! correlated groups — which is exactly the regime the sketch
//! pre-filter ([`dataprism::Prefilter`]) is built for: the sketch
//! screens the independent bulk and the exact χ²/Pearson tests run
//! only on the planted (and borderline) pairs.
//!
//! The failing dataset additionally carries the usual discriminative
//! corruptions (domain shift, missing values, a categorical domain
//! change, and two dependence *changes* — pairs independent in
//! `d_pass` but coupled in `d_fail`), so discriminative-PVT discovery
//! has real work to do on both frames. Both frames also carry
//! background NULLs so the pre-filter's masked (pairwise-deletion)
//! estimate path is exercised, not just the dense fast path.

use dp_frame::{Column, DType, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct categories of a clean categorical column (`v0`..`v5`).
pub const CAT_DOMAIN: usize = 6;

/// Attribute index of the numeric column that suffers a domain shift
/// in `d_fail`.
pub const PLANT_DOMAIN_NUM: usize = 0;
/// Attribute index of the numeric column that loses values in
/// `d_fail`.
pub const PLANT_MISSING: usize = 1;
/// Attribute index of the categorical column whose domain grows in
/// `d_fail`.
pub const PLANT_DOMAIN_CAT: usize = 3;
/// Numeric pair independent in `d_pass` but correlated in `d_fail`.
pub const PLANT_COUPLED_NUM: (usize, usize) = (2, 7);
/// Categorical pair independent in `d_pass` but dependent in
/// `d_fail`.
pub const PLANT_COUPLED_CAT: (usize, usize) = (8, 9);

/// A wide passing/failing dataset pair (no system: the wide scenario
/// exists to stress *discovery*, which is oracle-free).
pub struct WideScenario {
    /// Clean dataset.
    pub d_pass: DataFrame,
    /// Dataset with the planted discriminative corruptions.
    pub d_fail: DataFrame,
}

/// Whether attribute `i` is numeric (`n{i}`) or categorical (`c{i}`).
/// The cycle is three numeric columns then two categorical ones.
pub fn is_numeric(i: usize) -> bool {
    i % 5 < 3
}

/// Name of attribute `i` (`n{i}` or `c{i}`).
pub fn attr_name(i: usize) -> String {
    if is_numeric(i) {
        format!("n{i}")
    } else {
        format!("c{i}")
    }
}

enum ColData {
    Num(Vec<Option<f64>>),
    Cat(Vec<Option<usize>>),
}

/// Generate a wide passing/failing pair with `n_attributes` columns
/// and `n_rows` rows. Deterministic in `seed`.
///
/// Layout (see the module docs): every 10th numeric column tracks a
/// shared latent factor and every 10th categorical column tracks a
/// shared discrete latent (planted dependence in *both* frames);
/// every 7th-ish column carries ~2.5% background NULLs in both
/// frames; `d_fail` additionally gets the five discriminative plants
/// named by the `PLANT_*` constants.
pub fn wide_schema(n_attributes: usize, n_rows: usize, seed: u64) -> WideScenario {
    assert!(
        n_attributes >= 10,
        "wide_schema needs at least 10 attributes to host its plants"
    );
    assert!(n_rows >= 20, "wide_schema needs at least 20 rows");
    let mut rng = StdRng::seed_from_u64(seed);
    let d_pass = frame(n_attributes, n_rows, &mut rng, false);
    let d_fail = frame(n_attributes, n_rows, &mut rng, true);
    WideScenario { d_pass, d_fail }
}

fn frame(m: usize, n: usize, rng: &mut StdRng, fail: bool) -> DataFrame {
    // Shared latent factors: columns that track them are mutually
    // dependent, everything else is independent.
    let latent_num: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
    let latent_cat: Vec<usize> = (0..n).map(|_| rng.gen_range(0..CAT_DOMAIN)).collect();

    let mut cols: Vec<ColData> = (0..m)
        .map(|i| {
            if is_numeric(i) {
                let vals = (0..n)
                    .map(|r| {
                        Some(if i.is_multiple_of(10) {
                            0.8 * latent_num[r] + 0.2 * rng.gen::<f64>()
                        } else {
                            rng.gen()
                        })
                    })
                    .collect();
                ColData::Num(vals)
            } else {
                let vals = (0..n)
                    .map(|r| {
                        Some(if i % 10 == 4 && !rng.gen_bool(0.15) {
                            latent_cat[r]
                        } else {
                            rng.gen_range(0..CAT_DOMAIN)
                        })
                    })
                    .collect();
                ColData::Cat(vals)
            }
        })
        .collect();

    // Background NULLs in both frames: the pre-filter must take the
    // masked estimate path on these columns, not the dense one.
    for (i, col) in cols.iter_mut().enumerate() {
        if i % 7 != 3 {
            continue;
        }
        match col {
            ColData::Num(vals) => {
                for v in vals.iter_mut() {
                    if rng.gen_bool(0.025) {
                        *v = None;
                    }
                }
            }
            ColData::Cat(vals) => {
                for v in vals.iter_mut() {
                    if rng.gen_bool(0.025) {
                        *v = None;
                    }
                }
            }
        }
    }

    if fail {
        plant_failures(&mut cols, rng);
    }

    DataFrame::from_columns(
        cols.into_iter()
            .enumerate()
            .map(|(i, col)| match col {
                ColData::Num(vals) => Column::from_floats(attr_name(i), vals),
                ColData::Cat(vals) => Column::from_strings(
                    attr_name(i),
                    DType::Categorical,
                    vals.into_iter()
                        .map(|v| v.map(|c| format!("v{c}")))
                        .collect(),
                ),
            })
            .collect(),
    )
    .expect("unique generated names")
}

fn plant_failures(cols: &mut [ColData], rng: &mut StdRng) {
    // Domain shift: 30% of n0 leaves [0, 1].
    if let ColData::Num(vals) = &mut cols[PLANT_DOMAIN_NUM] {
        for v in vals.iter_mut() {
            if rng.gen_bool(0.3) {
                *v = Some(2.0 + rng.gen::<f64>());
            }
        }
    }
    // Missing: 20% of n1 nulled.
    if let ColData::Num(vals) = &mut cols[PLANT_MISSING] {
        for v in vals.iter_mut() {
            if rng.gen_bool(0.2) {
                *v = None;
            }
        }
    }
    // Categorical domain change: 25% of c3 takes a value outside the
    // passing domain.
    if let ColData::Cat(vals) = &mut cols[PLANT_DOMAIN_CAT] {
        for v in vals.iter_mut() {
            if v.is_some() && rng.gen_bool(0.25) {
                *v = Some(CAT_DOMAIN);
            }
        }
    }
    // Dependence change, numeric: n7 starts tracking n2, so the
    // ⟨Indep, (n2, n7), α≈0⟩ profile of d_pass is violated.
    let (a, b) = PLANT_COUPLED_NUM;
    let src: Vec<Option<f64>> = match &cols[a] {
        ColData::Num(vals) => vals.clone(),
        ColData::Cat(_) => unreachable!("n2 is numeric by layout"),
    };
    if let ColData::Num(vals) = &mut cols[b] {
        for (v, s) in vals.iter_mut().zip(&src) {
            if let Some(s) = s {
                *v = Some((s + 0.08 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0));
            }
        }
    }
    // Dependence change, categorical: c9 starts tracking c8.
    let (a, b) = PLANT_COUPLED_CAT;
    let src: Vec<Option<usize>> = match &cols[a] {
        ColData::Cat(vals) => vals.clone(),
        ColData::Num(_) => unreachable!("c8 is categorical by layout"),
    };
    if let ColData::Cat(vals) = &mut cols[b] {
        for (v, s) in vals.iter_mut().zip(&src) {
            if let Some(s) = s {
                if !rng.gen_bool(0.1) {
                    *v = Some(*s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_plants_are_present() {
        let w = wide_schema(25, 200, 42);
        assert_eq!(w.d_pass.n_cols(), 25);
        assert_eq!(w.d_fail.n_cols(), 25);
        assert_eq!(w.d_pass.n_rows(), 200);
        // Column naming and typing follow the 3-numeric/2-categorical
        // cycle.
        for i in 0..25 {
            let col = w.d_pass.column(&attr_name(i)).unwrap();
            assert_eq!(col.dtype() == DType::Float, is_numeric(i), "{}", col.name());
        }
        // The pass frame stays in [0, 1]; the fail frame leaves it.
        let in_unit = |df: &DataFrame, name: &str| {
            df.column(name)
                .unwrap()
                .f64_values()
                .iter()
                .all(|(_, v)| (0.0..=1.0).contains(v))
        };
        assert!(in_unit(&w.d_pass, "n0"));
        assert!(!in_unit(&w.d_fail, "n0"), "domain plant missing");
        // Missing plant: d_fail has far more NULLs in n1.
        assert!(w.d_fail.column("n1").unwrap().null_count() > 20);
        assert_eq!(w.d_pass.column("n1").unwrap().null_count(), 0);
        // Categorical domain plant: v6 only exists in d_fail.
        let has_v6 = |df: &DataFrame| {
            df.column("c3")
                .unwrap()
                .str_values()
                .iter()
                .any(|(_, s)| *s == "v6")
        };
        assert!(!has_v6(&w.d_pass));
        assert!(has_v6(&w.d_fail), "categorical domain plant missing");
        // Background NULLs exist in both frames (masked-path fuel).
        assert!(w.d_pass.column(&attr_name(3)).unwrap().null_count() > 0);
    }

    #[test]
    fn coupled_pairs_change_between_frames() {
        let w = wide_schema(30, 300, 7);
        let corr = |df: &DataFrame, a: &str, b: &str| {
            let xs: Vec<f64> = df
                .column(a)
                .unwrap()
                .f64_values()
                .iter()
                .map(|(_, v)| *v)
                .collect();
            let ys: Vec<f64> = df
                .column(b)
                .unwrap()
                .f64_values()
                .iter()
                .map(|(_, v)| *v)
                .collect();
            let n = xs.len().min(ys.len());
            dp_stats::pearson(&xs[..n], &ys[..n]).r
        };
        assert!(corr(&w.d_pass, "n2", "n7").abs() < 0.2);
        assert!(corr(&w.d_fail, "n2", "n7") > 0.8, "numeric coupling plant");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = wide_schema(15, 60, 9);
        let b = wide_schema(15, 60, 9);
        assert_eq!(
            format!("{:?}", a.d_fail.column("n0").unwrap()),
            format!("{:?}", b.d_fail.column("n0").unwrap()),
        );
    }
}
