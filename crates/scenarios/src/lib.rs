//! # dp-scenarios — the paper's evaluation scenarios
//!
//! Generators for the three real-world case studies of §5.1 —
//! [`sentiment`], [`income`], [`cardio`] — and the synthetic
//! pipelines of §5.2 / appendix D ([`synthetic`]), including the
//! Fig 6 toy ([`synthetic::toy_fig6`]) and the rank-54 adversarial
//! pipeline ([`synthetic::adversarial_rank`]), plus wide-schema
//! datasets ([`wide`]) that stress the O(m²) discovery pre-filter.
//!
//! Each case study returns a [`Scenario`]: a passing dataset, a
//! failing dataset, a black-box [`dataprism::System`], the
//! malfunction threshold, and the ground-truth cause (as profile
//! template keys) so tests and benchmarks can verify that the
//! diagnosis found the planted root cause.
//!
//! The original datasets (IMDb, Sentiment140, UCI Adult, Kaggle
//! cardiovascular) and models (flair, scikit-learn) are not
//! available in this environment; DESIGN.md documents how each
//! generator preserves the behavior the paper's evaluation depends
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardio;
pub mod example1;
pub mod ezgo;
pub mod income;
pub mod scenario;
pub mod sensors;
pub mod sentiment;
pub mod synthetic;
pub mod wide;

pub use scenario::Scenario;
