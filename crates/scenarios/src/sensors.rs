//! A sensor-fusion scenario exercising the **causal** `Indep` profile
//! (Fig 1 row 9) and its `Residualize` transformation end to end.
//!
//! A redundancy-based fault detector cross-checks two sensor
//! channels: a fault in channel A is caught when the two calibration
//! residuals disagree. The design assumption is that the channels'
//! errors are *causally independent*. In the failing dataset the
//! channels share a power supply, so channel B's residual tracks
//! channel A's (`error_b ≈ 0.8 · error_a`): faulty rows no longer
//! disagree and slip through undetected — the paper's "disconnect
//! between the assumptions about the data and the design of the
//! system".
//!
//! Discovery is configured for the causal profile class only (the
//! paper's scope assumption: domain experts supply the relevant
//! classes — here, "the errors must be causally independent"). The
//! fix is Fig 1 row 9's distribution change, implemented as
//! residualization of `error_b` on `error_a`.

use crate::scenario::Scenario;
use dataprism::{DiscoveryConfig, PrismConfig, System};
use dp_frame::{DType, DataFrame, DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gaussian(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// Generate sensor logs. Each row: the two calibration residuals, an
/// ambient temperature covariate, and whether channel A is actually
/// faulty (the detector's ground truth for scoring).
fn build_logs(rng: &mut StdRng, n: usize, coupled: bool) -> DataFrame {
    let mut b = DataFrameBuilder::with_fields(&[
        ("error_a", DType::Float),
        ("error_b", DType::Float),
        ("temperature", DType::Float),
        ("faulty", DType::Categorical),
    ]);
    for _ in 0..n {
        let faulty = rng.gen_bool(0.1);
        let error_a = if faulty {
            6.0 + 2.0 * gaussian(rng).abs()
        } else {
            0.5 * gaussian(rng)
        };
        let error_b = if coupled {
            0.8 * error_a + 0.3 * gaussian(rng)
        } else {
            0.5 * gaussian(rng)
        };
        b.push_row(vec![
            Value::Float(error_a),
            Value::Float(error_b),
            Value::Float(20.0 + 3.0 * gaussian(rng)),
            Value::Str(if faulty { "1" } else { "0" }.to_string()),
        ])
        .expect("schema-conforming row");
    }
    b.build()
}

/// The fault detector: flags a row when the channel residuals
/// disagree by more than the tolerance; the malfunction score is the
/// fraction of truly faulty rows it misses.
pub struct SensorFusionSystem {
    /// Disagreement tolerance.
    pub tolerance: f64,
}

impl Default for SensorFusionSystem {
    fn default() -> Self {
        SensorFusionSystem { tolerance: 2.5 }
    }
}

impl System for SensorFusionSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        let (Ok(ea), Ok(eb), Ok(fault)) = (
            df.column("error_a"),
            df.column("error_b"),
            df.column("faulty"),
        ) else {
            return 1.0;
        };
        let mut faults = 0usize;
        let mut missed = 0usize;
        for i in 0..df.n_rows() {
            if fault.get(i).to_string() != "1" {
                continue;
            }
            faults += 1;
            let (Some(a), Some(b)) = (ea.get(i).as_f64(), eb.get(i).as_f64()) else {
                continue;
            };
            if (a - b).abs() <= self.tolerance {
                missed += 1;
            }
        }
        if faults == 0 {
            return 1.0;
        }
        missed as f64 / faults as f64
    }

    fn name(&self) -> &str {
        "sensor-fusion-fault-detector"
    }
}

/// Build the sensor-fusion scenario with `n` rows per dataset.
pub fn scenario_with_size(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let d_pass = build_logs(&mut rng, n, false);
    let d_fail = build_logs(&mut rng, n, true);
    let config = PrismConfig {
        threshold: 0.25,
        discovery: DiscoveryConfig {
            // The expert-provided profile class for this task: the
            // causal (in)dependence of attribute pairs (Fig 1 row 9).
            domains: false,
            outliers: None,
            missing: false,
            selectivity_max_domain: None,
            selectivity_pair_with: None,
            indep_chi2: false,
            indep_pearson: false,
            indep_causal: true,
            ..DiscoveryConfig::default()
        },
        ..Default::default()
    };
    Scenario {
        name: "Sensor Fusion (causal profile)",
        system: Box::new(SensorFusionSystem::default()),
        factory: Box::new(SensorFusionSystem::default),
        d_pass,
        d_fail,
        config,
        ground_truth: vec!["indep_causal(error_a,error_b)".to_string()],
    }
}

/// Default-size sensor scenario.
pub fn scenario(seed: u64) -> Scenario {
    scenario_with_size(800, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataprism::discovery::discriminative_pvts;
    use dataprism::explain_greedy;

    #[test]
    fn coupled_errors_hide_faults() {
        let mut s = scenario_with_size(600, 4);
        let pass_score = s.system.malfunction(&s.d_pass);
        let fail_score = s.system.malfunction(&s.d_fail);
        assert!(
            pass_score < 0.2,
            "independent errors expose faults: {pass_score}"
        );
        assert!(fail_score > 0.6, "coupled errors hide faults: {fail_score}");
    }

    #[test]
    fn causal_profile_is_discovered() {
        let s = scenario_with_size(600, 4);
        let pvts = discriminative_pvts(&s.d_pass, &s.d_fail, &s.config.discovery);
        assert!(
            pvts.iter()
                .any(|p| p.profile.template_key() == "indep_causal(error_a,error_b)"),
            "{:?}",
            pvts.iter()
                .map(|p| p.profile.template_key())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn residualization_restores_fault_detection() {
        let mut s = scenario_with_size(600, 4);
        let exp = explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config).unwrap();
        assert!(exp.resolved, "{exp}");
        assert!(s.explains_ground_truth(&exp), "{exp}");
        assert!(
            exp.interventions <= 4,
            "the causal profile is nearly the only candidate: {}",
            exp.interventions
        );
    }
}
