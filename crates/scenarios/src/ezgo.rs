//! Example 2 of the paper — the **EZGo process timeout**.
//!
//! "A toll collection software EZGo … uses an external software OCR
//! to extract the registration number … \[which\] is extremely slow
//! for images of black license plates captured in low illumination.
//! As a result, when a batch contains a large number of such cases
//! (significantly skewed distribution), EZGo fails."
//!
//! The system here is that batch processor: it charges a per-vehicle
//! cost (toll-pass reads are instant, OCR is slow, OCR on a black
//! plate in low illumination is pathological) against a fixed
//! one-hour reservation; the malfunction score is the normalized
//! budget overrun. The failing batch skews the pathological
//! combination from ~2% to ~18%, and the root cause is the
//! **Selectivity** profile of
//! `plate_color = black ∧ illumination = low` — the fix undersamples
//! (re-balances) that slice of the batch, exactly Fig 1 row 6.

use crate::scenario::Scenario;
use dataprism::{DiscoveryConfig, PrismConfig, System};
use dp_frame::{DType, DataFrame, DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-vehicle processing cost in seconds.
fn vehicle_cost(has_pass: bool, plate: &str, illumination: &str, axles: i64) -> f64 {
    if has_pass {
        return 0.5;
    }
    // OCR path.
    let base = 2.5 + 0.2 * axles as f64;
    if plate == "black" && illumination == "low" {
        base + 110.0 // the pathological OCR case
    } else if illumination == "low" {
        base + 6.0
    } else {
        base
    }
}

/// Generate one batch of `n` vehicles. `pathological_fraction`
/// controls how many no-pass/black-plate/low-light vehicles it
/// contains.
fn build_batch(rng: &mut StdRng, n: usize, pathological_fraction: f64) -> DataFrame {
    let mut b = DataFrameBuilder::with_fields(&[
        ("has_toll_pass", DType::Categorical),
        ("plate_color", DType::Categorical),
        ("illumination", DType::Categorical),
        ("axles", DType::Int),
        ("speed", DType::Float),
    ]);
    // Plant the pathological slice as an exact count at shuffled
    // positions rather than per-row Bernoulli draws: each such
    // vehicle shifts the batch score by ~110 s, so sampling noise in
    // the count would dominate the pass/fail separation the scenario
    // is built around.
    let n_path = (n as f64 * pathological_fraction).round() as usize;
    let mut path_mask = vec![false; n];
    for slot in path_mask.iter_mut().take(n_path) {
        *slot = true;
    }
    use rand::seq::SliceRandom;
    path_mask.shuffle(rng);
    for pathological in path_mask {
        let (has_pass, plate, illum) = if pathological {
            (false, "black", "low")
        } else {
            let has_pass = rng.gen_bool(0.7);
            let plate = *["white", "yellow", "black"]
                .get(rng.gen_range(0..3))
                .unwrap();
            // Non-pathological black plates appear in normal light.
            let illum = if plate == "black" {
                "normal"
            } else if rng.gen_bool(0.25) {
                "low"
            } else {
                "normal"
            };
            (has_pass, plate, illum)
        };
        b.push_row(vec![
            Value::Str(if has_pass { "yes" } else { "no" }.to_string()),
            Value::Str(plate.to_string()),
            Value::Str(illum.to_string()),
            Value::Int(rng.gen_range(2..=5)),
            Value::Float(40.0 + rng.gen::<f64>() * 60.0),
        ])
        .expect("schema-conforming row");
    }
    b.build()
}

/// The EZGo batch processor: sums per-vehicle costs and scores the
/// overrun of the one-hour budget (scaled to batch size).
pub struct EzgoSystem {
    /// Seconds available per vehicle (the paper reserves one hour per
    /// 1000 vehicles = 3.6 s/vehicle).
    pub budget_per_vehicle: f64,
}

impl Default for EzgoSystem {
    fn default() -> Self {
        EzgoSystem {
            budget_per_vehicle: 3.6,
        }
    }
}

impl System for EzgoSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        let n = df.n_rows();
        if n == 0 {
            return 1.0;
        }
        let (Ok(pass), Ok(plate), Ok(illum), Ok(axles)) = (
            df.column("has_toll_pass"),
            df.column("plate_color"),
            df.column("illumination"),
            df.column("axles"),
        ) else {
            return 1.0;
        };
        let mut total = 0.0;
        for i in 0..n {
            total += vehicle_cost(
                pass.get(i).to_string() == "yes",
                &plate.get(i).to_string(),
                &illum.get(i).to_string(),
                axles.get(i).as_i64().unwrap_or(2),
            );
        }
        let budget = self.budget_per_vehicle * n as f64;
        // Normalized overrun: 0 within budget, →1 at 2× the budget.
        ((total - budget) / budget).clamp(0.0, 1.0)
    }

    fn name(&self) -> &str {
        "ezgo-batch-processor"
    }
}

/// Build the EZGo scenario: a passing batch (~2% pathological
/// vehicles) vs a skewed failing batch (~18%).
pub fn scenario_with_size(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let d_pass = build_batch(&mut rng, n, 0.02);
    let d_fail = build_batch(&mut rng, n, 0.18);
    let config = PrismConfig {
        // Allow a 12% overrun (a few minutes on a one-hour
        // reservation) — randomized re-balancing of a batch cannot
        // hit the exact pathological fraction.
        threshold: 0.12,
        discovery: DiscoveryConfig {
            selectivity_pair_with: Some("illumination".to_string()),
            ..DiscoveryConfig::default()
        },
        ..Default::default()
    };
    Scenario {
        name: "EZGo Process Timeout (Example 2)",
        system: Box::new(EzgoSystem::default()),
        factory: Box::new(EzgoSystem::default),
        d_pass,
        d_fail,
        config,
        // Any selectivity repair that thins the pathological slice
        // resolves the timeout; the most precise is the
        // black ∧ low conjunction.
        ground_truth: vec![
            "selectivity(*black*low*".to_string(),
            "selectivity(*low*black*".to_string(),
            "selectivity(*illumination = low*".to_string(),
            "selectivity(*has_toll_pass = no*".to_string(),
        ],
    }
}

/// Default-size EZGo scenario (one batch of 1000 vehicles, like the
/// paper's example).
pub fn scenario(seed: u64) -> Scenario {
    scenario_with_size(1000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataprism::explain_greedy;

    #[test]
    fn skewed_batch_times_out() {
        let mut s = scenario_with_size(600, 2);
        let pass_score = s.system.malfunction(&s.d_pass);
        let fail_score = s.system.malfunction(&s.d_fail);
        assert!(
            pass_score <= s.config.threshold,
            "normal batch fits the budget, got {pass_score}"
        );
        assert!(
            fail_score > 0.3,
            "skewed batch must overrun significantly, got {fail_score}"
        );
    }

    #[test]
    fn diagnosis_blames_the_pathological_slice() {
        let mut s = scenario_with_size(600, 2);
        let exp = explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config).unwrap();
        assert!(exp.resolved, "{exp}");
        assert!(
            s.explains_ground_truth(&exp),
            "expected a selectivity cause on the slow slice: {exp}"
        );
        // The repaired batch fits the budget again.
        assert!(exp.final_score <= s.config.threshold);
    }

    #[test]
    fn cost_model_is_pathological_exactly_where_the_paper_says() {
        // Black plate + low light + no pass is two orders slower.
        let slow = vehicle_cost(false, "black", "low", 2);
        let ocr = vehicle_cost(false, "white", "normal", 2);
        let pass = vehicle_cost(true, "black", "low", 2);
        assert!(slow > 30.0 * ocr);
        assert!(pass < ocr);
    }
}
