//! §5.1 Sentiment Prediction case study.
//!
//! The paper: a pre-trained flair model predicts the sentiment of
//! input text and the system computes the misclassification rate
//! against the dataset's `target` attribute, assuming
//! `target ∈ {-1, +1}`. On the IMDb dataset (the passing dataset)
//! malfunction is 0.09; on the twitter/Sentiment140 dataset it is
//! 1.0, because Sentiment140 encodes positive as `4` and negative as
//! `0`. The ground-truth cause is the `Domain` profile of `target`;
//! the fix maps `0 → -1, 4 → 1`.
//!
//! This module regenerates that situation synthetically: an
//! IMDb-like corpus of longer reviews labeled `{-1, 1}` with ~9%
//! hard (mixed-signal) examples, and a twitter-like corpus of short
//! tweets labeled `{0, 4}` with ~30% hard examples (so that after
//! the Domain fix the malfunction lands near the paper's 0.36,
//! below the τ = 0.4 threshold).

use crate::scenario::Scenario;
use dataprism::{DiscoveryConfig, PrismConfig, System};
use dp_frame::{DType, DataFrame, DataFrameBuilder, Value};
use dp_ml::sentiment::{NEGATIVE_WORDS, POSITIVE_WORDS};
use dp_ml::SentimentModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const FILLER: &[&str] = &[
    "the",
    "movie",
    "film",
    "plot",
    "acting",
    "story",
    "scene",
    "character",
    "director",
    "ending",
    "script",
    "camera",
    "music",
    "dialogue",
    "really",
    "quite",
    "very",
    "was",
    "with",
    "and",
    "overall",
    "watch",
    "time",
    "year",
    "cast",
    "performance",
];

/// Generate one text of `n_words` words whose sentiment words agree
/// with `label` (+1/-1), or — when `confusing` — lean the other way.
fn generate_text(
    rng: &mut StdRng,
    label: i64,
    n_words: usize,
    n_sentiment: usize,
    confusing: bool,
) -> String {
    let (main, other) = if (label > 0) != confusing {
        (POSITIVE_WORDS, NEGATIVE_WORDS)
    } else {
        (NEGATIVE_WORDS, POSITIVE_WORDS)
    };
    let mut words: Vec<&str> = Vec::with_capacity(n_words);
    for _ in 0..n_sentiment {
        words.push(main[rng.gen_range(0..main.len())]);
    }
    if n_sentiment > 1 && rng.gen_bool(0.3) {
        words.push(other[rng.gen_range(0..other.len())]);
    }
    while words.len() < n_words {
        words.push(FILLER[rng.gen_range(0..FILLER.len())]);
    }
    words.shuffle(rng);
    words.join(" ")
}

fn build_corpus(
    rng: &mut StdRng,
    n: usize,
    labels: (&str, &str), // (negative, positive) rendered labels
    words_range: (usize, usize),
    sentiment_words: usize,
    confusing_fraction: f64,
) -> DataFrame {
    let mut b = DataFrameBuilder::with_fields(&[
        ("text", DType::Text),
        ("target", DType::Categorical),
        ("retweets", DType::Int),
    ]);
    for i in 0..n {
        let label: i64 = if i % 2 == 0 { 1 } else { -1 };
        let confusing = rng.gen_bool(confusing_fraction);
        let n_words = rng.gen_range(words_range.0..=words_range.1);
        let text = generate_text(rng, label, n_words, sentiment_words, confusing);
        let rendered = if label > 0 { labels.1 } else { labels.0 };
        let retweets = rng.gen_range(0..50i64);
        b.push_row(vec![
            Value::Str(text),
            Value::Str(rendered.to_string()),
            Value::Int(retweets),
        ])
        .expect("schema-conforming row");
    }
    b.build()
}

/// The sentiment system: a frozen pre-trained model that predicts
/// `±1` and scores the misclassification rate against `target`
/// (Example 4's malfunction score). Labels outside `{-1, 1}` can
/// never match a prediction, which is exactly the disconnect.
pub struct SentimentSystem {
    model: SentimentModel,
}

impl SentimentSystem {
    /// Build with the pre-trained model.
    pub fn new() -> Self {
        SentimentSystem {
            model: SentimentModel::pretrained(),
        }
    }
}

impl Default for SentimentSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl System for SentimentSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        let n = df.n_rows();
        if n == 0 {
            return 1.0;
        }
        let Ok(text) = df.column("text") else {
            return 1.0;
        };
        let Ok(target) = df.column("target") else {
            return 1.0;
        };
        let mut wrong = 0usize;
        for i in 0..n {
            let predicted = match text.get(i) {
                Value::Str(s) => self.model.predict(&s),
                _ => 1,
            };
            let truth: Option<i64> = match target.get(i) {
                Value::Str(s) => s.trim().parse().ok(),
                Value::Int(v) => Some(v),
                _ => None,
            };
            if truth != Some(predicted) {
                wrong += 1;
            }
        }
        wrong as f64 / n as f64
    }

    fn name(&self) -> &str {
        "sentiment-prediction"
    }
}

/// Build the Sentiment Prediction scenario. `n` rows per dataset
/// (paper: 50K IMDb / 1.6M twitter; default here 1 500 for fast
/// oracles — size does not change the discriminative profiles).
pub fn scenario_with_size(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    // IMDb-like: long reviews, labels {-1, 1}, ~9% hard.
    let d_pass = build_corpus(&mut rng, n, ("-1", "1"), (25, 60), 4, 0.09);
    // Twitter-like: short tweets, labels {0, 4}, ~30% hard.
    let d_fail = build_corpus(&mut rng, n, ("0", "4"), (5, 14), 1, 0.30);
    let config = PrismConfig {
        threshold: 0.40,
        discovery: DiscoveryConfig::default(),
        ..Default::default()
    };
    Scenario {
        name: "Sentiment Prediction",
        system: Box::new(SentimentSystem::new()),
        factory: Box::new(SentimentSystem::new),
        d_pass,
        d_fail,
        config,
        ground_truth: vec!["domain_cat(target)".to_string()],
    }
}

/// Default-size Sentiment scenario.
pub fn scenario(seed: u64) -> Scenario {
    scenario_with_size(1500, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_dataset_passes_and_fail_fails() {
        let mut s = scenario_with_size(600, 7);
        let pass_score = s.system.malfunction(&s.d_pass);
        let fail_score = s.system.malfunction(&s.d_fail);
        assert!(
            pass_score <= 0.25,
            "IMDb-like malfunction should be small, got {pass_score}"
        );
        assert!(
            (fail_score - 1.0).abs() < 1e-9,
            "twitter-like labels never match ±1 predictions, got {fail_score}"
        );
    }

    #[test]
    fn domain_fix_brings_score_near_paper_value() {
        // Manually apply the 0→-1, 4→1 mapping and check the residual
        // misclassification is between the pass score and τ.
        let mut s = scenario_with_size(600, 7);
        let mut fixed = s.d_fail.clone();
        fixed
            .column_mut("target")
            .unwrap()
            .map_str_in_place(|v| match v {
                "0" => Some("-1".into()),
                "4" => Some("1".into()),
                _ => None,
            });
        let score = s.system.malfunction(&fixed);
        assert!(
            score < s.config.threshold,
            "after the Domain fix the system must pass, got {score}"
        );
        assert!(score > 0.1, "tweets are harder than reviews, got {score}");
    }

    #[test]
    fn corpus_shape() {
        let s = scenario_with_size(100, 1);
        assert_eq!(s.d_pass.n_rows(), 100);
        assert_eq!(s.d_fail.n_rows(), 100);
        let target_vals = s.d_fail.column("target").unwrap().value_counts();
        let labels: Vec<&str> = target_vals.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(labels, vec!["0", "4"]);
        // Tweets shorter than reviews.
        let avg_len = |df: &DataFrame| {
            let col = df.column("text").unwrap();
            col.str_values().iter().map(|(_, s)| s.len()).sum::<usize>() as f64 / df.n_rows() as f64
        };
        assert!(avg_len(&s.d_fail) < avg_len(&s.d_pass) / 2.0);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = scenario_with_size(50, 42);
        let b = scenario_with_size(50, 42);
        assert_eq!(a.d_pass, b.d_pass);
        assert_eq!(a.d_fail, b.d_fail);
    }
}
