//! §5.1 Cardiovascular Disease Prediction case study.
//!
//! The paper: an AdaBoost classifier predicts cardiovascular disease
//! from patient records; the pipeline returns `1 − recall` over the
//! diseased patients (the goal is recall > 0.70). The failing dataset
//! is the same data with **height converted from centimeters to
//! inches**: the `Domain` profile of `height` is the ground truth and
//! a monotonic linear transformation the fix (malfunction 0.71 →
//! 0.30). Group testing is **not applicable** here because
//! assumption A3 fails: "adding noise to intervene with respect to
//! the Indep PVT worsens the classifier performance".
//!
//! The generator reproduces all three behaviors:
//!
//! 1. The pipeline cleans heights outside the plausible adult cm
//!    range `[100, 230]` by clamping (the unit assumption baked into
//!    the system). Inch-valued heights all clamp to 100, destroying
//!    the BMI signal the disease depends on, so recall collapses.
//! 2. The pipeline *validates* blood pressure: if more than 2% of
//!    `ap_hi`/`ap_lo` readings are outside `[40, 200]` it aborts
//!    (malfunction 1.0) — medical pipelines reject physically
//!    impossible vitals. The failing dataset plants a stronger
//!    `ap_hi ↔ ap_lo` correlation than the passing one, so a
//!    discriminative Pearson `Indep` PVT exists whose noise
//!    transformation pushes readings out of range → the full
//!    composition scores 1.0 → the A3 check fires (Fig 7's "NA").
//! 3. With the Indep PVTs removed from the candidate set, group
//!    testing works (the paper's "if we remove PVTs that violate
//!    this assumption" remark) — exercised by the benchmarks.

use crate::scenario::Scenario;
use dataprism::{DiscoveryConfig, PrismConfig, System};
use dp_frame::{DType, DataFrame, DataFrameBuilder, Value};
use dp_ml::encoding::extract_labels;
use dp_ml::{AdaBoost, Classifier, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gaussian(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

fn logistic(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Generate a patients dataset (heights in cm).
fn build_patients(rng: &mut StdRng, n: usize) -> DataFrame {
    let mut b = DataFrameBuilder::with_fields(&[
        ("age", DType::Int),
        ("height", DType::Float),
        ("weight", DType::Float),
        ("ap_hi", DType::Float),
        ("ap_lo", DType::Float),
        ("cholesterol", DType::Categorical),
        ("smoke", DType::Categorical),
        ("cardio", DType::Categorical),
    ]);
    for _ in 0..n {
        let age = rng.gen_range(35..=70i64);
        let height = (170.0 + 10.0 * gaussian(rng)).clamp(150.0, 195.0);
        let weight = (76.0 + 9.0 * gaussian(rng)).clamp(45.0, 140.0);
        let ap_hi = (128.0 + 14.0 * gaussian(rng)).clamp(90.0, 185.0);
        let ap_lo = (82.0 + 0.1 * (ap_hi - 128.0) + 7.0 * gaussian(rng)).clamp(50.0, 120.0);
        let chol = rng.gen_range(1..=3i64);
        let smoke = rng.gen_bool(0.2);
        let bmi = weight / (height / 100.0) / (height / 100.0);
        // Disease risk is dominated by BMI (which needs a correct
        // height), with blood pressure / cholesterol / age terms.
        let z = 0.6 * (bmi - 26.5) - 0.20 * (height - 170.0)
            + 0.08 * (ap_hi - 128.0)
            + 0.08 * (ap_lo - 81.0)
            + 0.6 * (chol - 1) as f64
            + 0.04 * (age - 52) as f64
            + if smoke { 0.4 } else { 0.0 }
            - 0.4;
        let diseased = rng.gen_bool(logistic(z).clamp(0.02, 0.98));
        b.push_row(vec![
            Value::Int(age),
            Value::Float(height),
            Value::Float(weight),
            Value::Float(ap_hi),
            Value::Float(ap_lo),
            Value::Str(chol.to_string()),
            Value::Str(if smoke { "yes" } else { "no" }.to_string()),
            Value::Str(if diseased { "1" } else { "0" }.to_string()),
        ])
        .expect("schema-conforming row");
    }
    b.build()
}

/// Convert the height column of a patients frame to inches (the
/// failing dataset's corruption).
pub fn convert_height_to_inches(df: &mut DataFrame) {
    df.column_mut("height")
        .expect("height column")
        .map_numeric_in_place(|cm| cm / 2.54);
}

/// Plant the failing dataset's second profile difference: tighten
/// the `ap_hi ↔ ap_lo` correlation by mixing `ap_lo` toward `ap_hi`,
/// then linearly remap onto the original `ap_lo` range so the
/// marginal `Domain`/`Outlier` profiles stay identical (correlation
/// is invariant under the final linear map).
pub fn tighten_ap_correlation(df: &mut DataFrame) {
    let hi: Vec<f64> = df
        .column("ap_hi")
        .expect("ap_hi column")
        .f64_values()
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let col = df.column_mut("ap_lo").expect("ap_lo column");
    let (old_min, old_max) = col.min_max().expect("non-empty");
    let mut i = 0usize;
    col.map_numeric_in_place(|lo| {
        let mixed = 0.35 * lo + 0.55 * (hi[i] - 128.0 + 82.0);
        i += 1;
        mixed
    });
    let (new_min, new_max) = col.min_max().expect("non-empty");
    if new_max > new_min {
        let scale = (old_max - old_min) / (new_max - new_min);
        col.map_numeric_in_place(|v| old_min + (v - new_min) * scale);
    }
}

/// The cardio pipeline: validate vitals, clean heights under the cm
/// assumption, derive BMI, train AdaBoost, report `1 − recall` on
/// the diseased class.
pub struct CardioSystem {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Weak-learner depth.
    pub depth: usize,
}

impl Default for CardioSystem {
    fn default() -> Self {
        CardioSystem {
            n_rounds: 40,
            depth: 3,
        }
    }
}

impl System for CardioSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        let n = df.n_rows();
        if n < 10 {
            return 1.0;
        }
        // Step 1: validate blood pressure. Medically impossible
        // readings mean corrupted input; the pipeline aborts. The
        // tolerance is strict (2% of rows outside [40, 200]): vitals
        // come from calibrated cuffs, so more than a sliver of
        // implausible readings indicates an upstream corruption the
        // model must not be trained on.
        for ap in ["ap_hi", "ap_lo"] {
            let Ok(col) = df.column(ap) else { return 1.0 };
            let bad = col
                .f64_values()
                .iter()
                .filter(|(_, v)| !(40.0..=200.0).contains(v))
                .count();
            if bad as f64 > 0.02 * n as f64 {
                return 1.0;
            }
        }
        // Step 2: clean heights under the centimeter assumption.
        let Ok(height_col) = df.column("height") else {
            return 1.0;
        };
        let heights: Vec<f64> = (0..n)
            .map(|i| {
                height_col
                    .get(i)
                    .as_f64()
                    .map(|h| h.clamp(100.0, 230.0))
                    .unwrap_or(170.0)
            })
            .collect();
        // Step 3: features with derived BMI.
        let mut rows = Vec::with_capacity(n);
        let numeric = |name: &str, i: usize, default: f64| -> f64 {
            df.column(name)
                .ok()
                .and_then(|c| c.get(i).as_f64())
                .unwrap_or(default)
        };
        let cat_num = |name: &str, i: usize| -> f64 {
            df.column(name)
                .ok()
                .map(|c| c.get(i).to_string())
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(0.0)
        };
        for (i, &height) in heights.iter().enumerate() {
            let weight = numeric("weight", i, 76.0);
            let h_m = height / 100.0;
            let bmi = weight / (h_m * h_m);
            rows.push(vec![
                numeric("age", i, 52.0),
                bmi,
                height,
                numeric("ap_hi", i, 128.0),
                numeric("ap_lo", i, 81.0),
                cat_num("cholesterol", i),
                f64::from(
                    df.column("smoke")
                        .ok()
                        .map(|c| c.get(i).to_string() == "yes")
                        .unwrap_or(false),
                ),
            ]);
        }
        let x = Matrix::from_rows(rows);
        let Ok(y) = extract_labels(df, "cardio", &["1"]) else {
            return 1.0;
        };
        if y.iter().sum::<usize>() == 0 {
            return 1.0;
        }
        // Step 4: train/test split, boost, score recall on test.
        let split = (n * 7) / 10;
        let train_idx: Vec<usize> = (0..split).collect();
        let test_idx: Vec<usize> = (split..n).collect();
        let x_train = x.take_rows(&train_idx);
        let y_train: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
        if y_train.iter().sum::<usize>() == 0 || y_train.iter().sum::<usize>() == y_train.len() {
            return 1.0;
        }
        let mut model = AdaBoost::new(self.n_rounds, self.depth);
        model.fit(&x_train, &y_train);
        let mut tp = 0usize;
        let mut fn_ = 0usize;
        for &i in &test_idx {
            if y[i] == 1 {
                if model.predict(x.row(i)) == 1 {
                    tp += 1;
                } else {
                    fn_ += 1;
                }
            }
        }
        if tp + fn_ == 0 {
            return 1.0;
        }
        1.0 - tp as f64 / (tp + fn_) as f64
    }

    fn name(&self) -> &str {
        "cardiovascular-prediction"
    }
}

/// Build the Cardiovascular scenario with `n` rows per dataset.
pub fn scenario_with_size(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let d_pass = build_patients(&mut rng, n);
    // The failing dataset is the same selection of records (as in the
    // paper, both datasets come from one source) with only the
    // planted differences: inch-valued heights and the tightened
    // blood-pressure correlation.
    let mut d_fail = d_pass.clone();
    convert_height_to_inches(&mut d_fail);
    tighten_ap_correlation(&mut d_fail);
    let config = PrismConfig {
        threshold: 0.30,
        discovery: DiscoveryConfig::default(),
        ..Default::default()
    };
    Scenario {
        name: "Cardiovascular Disease Prediction",
        system: Box::new(CardioSystem::default()),
        factory: Box::new(CardioSystem::default),
        d_pass,
        d_fail,
        config,
        ground_truth: vec!["domain_num(height)".to_string()],
    }
}

/// Default-size Cardio scenario.
pub fn scenario(seed: u64) -> Scenario {
    scenario_with_size(900, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fails_separated() {
        let mut s = scenario_with_size(700, 5);
        let pass_score = s.system.malfunction(&s.d_pass);
        let fail_score = s.system.malfunction(&s.d_fail);
        assert!(
            pass_score < s.config.threshold,
            "cm heights must pass, got {pass_score}"
        );
        assert!(
            fail_score > s.config.threshold,
            "inch heights must fail, got {fail_score}"
        );
    }

    #[test]
    fn linear_rescale_repairs_recall() {
        let mut s = scenario_with_size(700, 5);
        let mut fixed = s.d_fail.clone();
        // The Fig 1 row 2 fix: monotonic linear map onto the passing
        // range.
        let (lo, hi) = fixed.column("height").unwrap().min_max().unwrap();
        let (plo, phi) = s.d_pass.column("height").unwrap().min_max().unwrap();
        fixed
            .column_mut("height")
            .unwrap()
            .map_numeric_in_place(|h| plo + (h - lo) / (hi - lo) * (phi - plo));
        let score = s.system.malfunction(&fixed);
        assert!(
            score < s.config.threshold,
            "rescaled heights must pass, got {score}"
        );
    }

    #[test]
    fn ap_noise_triggers_validation_abort() {
        let mut s = scenario_with_size(700, 5);
        let mut noisy = s.d_fail.clone();
        let mut rng = StdRng::seed_from_u64(1);
        noisy
            .column_mut("ap_lo")
            .unwrap()
            .map_numeric_in_place(|v| v + 120.0 * gaussian(&mut rng));
        let score = s.system.malfunction(&noisy);
        assert_eq!(score, 1.0, "implausible vitals abort the pipeline");
    }

    #[test]
    fn planted_ap_correlation_differs() {
        use dp_stats::pearson;
        let s = scenario_with_size(700, 5);
        let corr = |df: &DataFrame| {
            let hi: Vec<f64> = df
                .column("ap_hi")
                .unwrap()
                .f64_values()
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            let lo: Vec<f64> = df
                .column("ap_lo")
                .unwrap()
                .f64_values()
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            pearson(&hi, &lo).r
        };
        let pass_r = corr(&s.d_pass);
        let fail_r = corr(&s.d_fail);
        assert!(fail_r > pass_r + 0.3, "pass {pass_r}, fail {fail_r}");
    }

    #[test]
    fn heights_are_inch_valued_in_fail() {
        let s = scenario_with_size(200, 5);
        let (lo, hi) = s.d_fail.column("height").unwrap().min_max().unwrap();
        assert!(lo > 50.0 && hi < 80.0, "[{lo}, {hi}]");
    }
}
