//! The paper's running example (Example 1, Figures 2–5): the biased
//! discount classifier over `People_fail` and `People_pass`.
//!
//! This module reproduces the example with the **exact tuples of
//! Fig 2 and Fig 3**. A logistic regression predicts
//! `high_expenditure` after the sensitive attributes (race, gender)
//! are dropped; the malfunction score is the (smoothed normalized)
//! disparate impact of its predictions against the unprivileged
//! groups (race = "A", gender = "F"), as in the §4.1 scenario where
//! `People_fail` scores 0.75 and `People_pass` 0.15 with τ = 0.2.
//!
//! Unit tests assert the artifacts the paper derives from this
//! example: the Fig 5 discriminative-profile list (Domain of age,
//! Missing of zip_code, Indep of race/high_expenditure, Selectivity
//! of gender = F ∧ high_expenditure = yes with θ 0.44 vs 0.1) and the
//! Fig 4 attribute degrees (high_expenditure is the hub).

use crate::scenario::Scenario;
use dataprism::{DiscoveryConfig, PrismConfig, System};
use dp_frame::{DType, DataFrame, DataFrameBuilder, Value};
use dp_ml::encoding::{encode_features, extract_labels};
use dp_ml::fairness::{normalized_disparate_impact_smoothed, Group};
use dp_ml::{Classifier, LogisticRegression};

type Row<'a> = (
    &'a str,         // name
    &'a str,         // gender
    i64,             // age
    &'a str,         // race
    Option<&'a str>, // zip_code
    Option<&'a str>, // phone
    &'a str,         // high_expenditure
);

/// Fig 2 — `People_fail` (10 entities).
const PEOPLE_FAIL: &[Row<'static>] = &[
    (
        "Shanice Johnson",
        "F",
        45,
        "A",
        Some("01004"),
        Some("2088556597"),
        "no",
    ),
    (
        "DeShawn Bad",
        "M",
        40,
        "A",
        Some("01004"),
        Some("2085374523"),
        "no",
    ),
    (
        "Malik Ayer",
        "M",
        60,
        "A",
        Some("01005"),
        Some("2766465009"),
        "no",
    ),
    (
        "Dustin Jenner",
        "M",
        22,
        "W",
        Some("01009"),
        Some("7874891021"),
        "yes",
    ),
    ("Julietta Brown", "F", 41, "W", Some("01009"), None, "yes"),
    (
        "Molly Beasley",
        "F",
        32,
        "W",
        None,
        Some("7872899033"),
        "no",
    ),
    (
        "Jake Bloom",
        "M",
        25,
        "W",
        Some("01101"),
        Some("4047747803"),
        "yes",
    ),
    (
        "Luke Stonewald",
        "M",
        35,
        "W",
        Some("01101"),
        Some("4042127741"),
        "yes",
    ),
    ("Scott Nossenson", "M", 25, "W", Some("01101"), None, "yes"),
    ("Gabe Erwin", "M", 20, "W", None, Some("4048421581"), "yes"),
];

/// Fig 3 — `People_pass` (9 entities).
const PEOPLE_PASS: &[Row<'static>] = &[
    (
        "Darin Brust",
        "M",
        25,
        "W",
        Some("01004"),
        Some("2088556597"),
        "no",
    ),
    ("Rosalie Bad", "F", 22, "W", Some("01005"), None, "no"),
    (
        "Kristine Hilyard",
        "F",
        50,
        "W",
        Some("01004"),
        Some("2766465009"),
        "yes",
    ),
    ("Chloe Ayer", "F", 22, "A", None, Some("7874891021"), "yes"),
    (
        "Julietta Mchugh",
        "F",
        51,
        "W",
        Some("01009"),
        Some("9042899033"),
        "yes",
    ),
    ("Doria Ely", "F", 32, "A", Some("01101"), None, "yes"),
    (
        "Kristan Whidden",
        "F",
        25,
        "W",
        Some("01101"),
        Some("4047747803"),
        "no",
    ),
    (
        "Rene Strelow",
        "M",
        35,
        "W",
        Some("01101"),
        Some("6162127741"),
        "yes",
    ),
    (
        "Arial Brent",
        "M",
        45,
        "W",
        Some("01102"),
        Some("4089065769"),
        "yes",
    ),
];

fn build_people(rows: &[Row<'_>]) -> DataFrame {
    let mut b = DataFrameBuilder::with_fields(&[
        ("name", DType::Text),
        ("gender", DType::Categorical),
        ("age", DType::Int),
        ("race", DType::Categorical),
        ("zip_code", DType::Categorical),
        ("phone", DType::Text),
        ("high_expenditure", DType::Categorical),
    ]);
    for (name, gender, age, race, zip, phone, high) in rows {
        b.push_row(vec![
            Value::Str(name.to_string()),
            Value::Str(gender.to_string()),
            Value::Int(*age),
            Value::Str(race.to_string()),
            zip.map(|z| Value::Str(z.to_string()))
                .unwrap_or(Value::Null),
            phone
                .map(|p| Value::Str(p.to_string()))
                .unwrap_or(Value::Null),
            Value::Str(high.to_string()),
        ])
        .expect("Fig 2/3 rows conform to the schema");
    }
    b.build()
}

/// The Fig 2 dataset.
pub fn people_fail() -> DataFrame {
    build_people(PEOPLE_FAIL)
}

/// The Fig 3 dataset.
pub fn people_pass() -> DataFrame {
    build_people(PEOPLE_PASS)
}

/// The discount pipeline: logistic regression over the non-sensitive
/// attributes; malfunction = worst smoothed normalized disparate
/// impact across the two protected attributes.
pub struct DiscountSystem {
    /// Training epochs for the logistic regression.
    pub epochs: usize,
}

impl Default for DiscountSystem {
    fn default() -> Self {
        DiscountSystem { epochs: 400 }
    }
}

impl System for DiscountSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        // Anita's pre-processing: drop the sensitive attributes.
        let Ok(enc) = encode_features(df, &["high_expenditure", "race", "gender"]) else {
            return 1.0;
        };
        let Ok(y) = extract_labels(df, "high_expenditure", &["yes"]) else {
            return 1.0;
        };
        if y.iter().all(|&v| v == 0) || y.iter().all(|&v| v == 1) {
            return 1.0;
        }
        let mut model = LogisticRegression {
            epochs: self.epochs,
            learning_rate: 0.3,
            ..Default::default()
        };
        let mut x = enc.x.clone();
        dp_ml::encoding::standardize_columns(&mut x);
        model.fit(&x, &y);
        let preds = model.predict_all(&x);
        let mut worst = 0.0f64;
        for (attr, unprivileged) in [("race", "A"), ("gender", "F")] {
            let Ok(col) = df.column(attr) else { return 1.0 };
            let groups: Vec<Group> = (0..df.n_rows())
                .map(|i| {
                    if col.get(i).to_string() == unprivileged {
                        Group::Unprivileged
                    } else {
                        Group::Privileged
                    }
                })
                .collect();
            if let Some(score) = normalized_disparate_impact_smoothed(&preds, &groups) {
                worst = worst.max(score);
            }
        }
        worst
    }

    fn name(&self) -> &str {
        "discount-classifier"
    }
}

/// The §4.1 scenario: `People_fail` vs `People_pass`. The paper uses
/// τ = 0.2 with its classifier scoring 0.15 on `People_pass`; our
/// from-scratch logistic regression with add-one smoothing over nine
/// tuples floors at ≈ 0.26 on the same data (smoothing alone
/// contributes ~0.15 at these group sizes), so the threshold is 0.3 —
/// the failing dataset still scores 0.74 vs the paper's 0.75.
pub fn scenario() -> Scenario {
    let config = PrismConfig {
        threshold: 0.3,
        discovery: DiscoveryConfig {
            // Fig 5's Selectivity profile is the conjunction
            // `gender = F ∧ high_expenditure = yes`.
            selectivity_pair_with: Some("high_expenditure".to_string()),
            ..DiscoveryConfig::default()
        },
        ..Default::default()
    };
    Scenario {
        name: "Example 1 (discount classifier)",
        system: Box::new(DiscountSystem::default()),
        factory: Box::new(DiscountSystem::default),
        d_pass: people_pass(),
        d_fail: people_fail(),
        config,
        // Example 1's two stated issues: (1) race is highly
        // correlated with zip_code — so an Indep profile naming
        // either of them against high_expenditure carries the same
        // shuffle fix — and (2) the female/high-expenditure group is
        // under-represented (the Selectivity profile).
        ground_truth: vec![
            "indep_chi2(*,high_expenditure)".to_string(),
            "selectivity(*gender = F*high_expenditure = yes*".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataprism::discovery::discriminative_pvts;
    use dataprism::graph::PvtAttributeGraph;
    use dataprism::violation::dependence;
    use dataprism::DependenceKind;

    #[test]
    fn datasets_match_the_paper_tables() {
        let fail = people_fail();
        let pass = people_pass();
        assert_eq!(fail.n_rows(), 10, "Fig 2 has 10 entities");
        assert_eq!(pass.n_rows(), 9, "Fig 3 has 9 entities");
        // Example 14's statistics: mean age 34.5, σ ≈ 11.78 in
        // People_fail, with only t3 (age 60) an O_1.5 outlier.
        let ages: Vec<f64> = fail
            .column("age")
            .unwrap()
            .f64_values()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert!((dp_stats::descriptive::mean(&ages).unwrap() - 34.5).abs() < 1e-9);
        assert!((dp_stats::descriptive::std_dev(&ages).unwrap() - 11.78).abs() < 0.01);
        // Fig 5's Missing parameters: 0.11 (pass) vs 0.2 (fail).
        assert_eq!(pass.column("zip_code").unwrap().null_count(), 1);
        assert_eq!(fail.column("zip_code").unwrap().null_count(), 2);
    }

    #[test]
    fn fig5_discriminative_profiles_are_discovered() {
        let s = scenario();
        let pvts = discriminative_pvts(&s.d_pass, &s.d_fail, &s.config.discovery);
        let keys: Vec<String> = pvts.iter().map(|p| p.profile.template_key()).collect();
        // The four profiles of Fig 5.
        assert!(keys.contains(&"domain_num(age)".to_string()), "{keys:?}");
        assert!(keys.contains(&"missing(zip_code)".to_string()), "{keys:?}");
        assert!(
            keys.contains(&"indep_chi2(race,high_expenditure)".to_string()),
            "{keys:?}"
        );
        assert!(
            keys.iter()
                .any(|k| k.contains("gender = F") && k.contains("high_expenditure = yes")),
            "{keys:?}"
        );
    }

    #[test]
    fn fig5_profile_parameters_match() {
        use dataprism::Profile;
        let s = scenario();
        let pvts = discriminative_pvts(&s.d_pass, &s.d_fail, &s.config.discovery);
        for pvt in &pvts {
            match &pvt.profile {
                Profile::DomainNumeric { attr, lb, ub } if attr == "age" => {
                    // Parameters come from the passing dataset: [22, 51].
                    assert_eq!((*lb, *ub), (22.0, 51.0));
                }
                Profile::Missing { attr, theta } if attr == "zip_code" => {
                    assert!((theta - 1.0 / 9.0).abs() < 1e-9, "θ = {theta}");
                }
                Profile::Selectivity { predicate, theta }
                    if predicate.to_string().contains("gender = F")
                        && predicate.to_string().contains("high_expenditure = yes") =>
                {
                    // Fig 5: θ = 0.44 on the passing dataset...
                    assert!((theta - 4.0 / 9.0).abs() < 1e-9, "θ = {theta}");
                    // ... vs 0.1 on the failing dataset.
                    let fail_sel = s.d_fail.selectivity(predicate).unwrap();
                    assert!((fail_sel - 0.1).abs() < 1e-9, "sel = {fail_sel}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn fig4_high_expenditure_is_the_hub_attribute() {
        let s = scenario();
        let pvts = discriminative_pvts(&s.d_pass, &s.d_fail, &s.config.discovery);
        let graph = PvtAttributeGraph::new(&pvts);
        let degrees = graph.attribute_degrees();
        let max_attr = degrees
            .iter()
            .max_by_key(|(_, &d)| d)
            .map(|(a, _)| a.clone())
            .unwrap();
        assert_eq!(
            max_attr, "high_expenditure",
            "Fig 4: high_expenditure has the highest degree ({degrees:?})"
        );
    }

    #[test]
    fn example15_race_dependence_in_people_fail() {
        // ⟨Indep, race, high_expenditure⟩: strong in People_fail
        // (race almost determines the outcome), weak in People_pass.
        let fail_dep = dependence(
            &people_fail(),
            "race",
            "high_expenditure",
            DependenceKind::Chi2,
        );
        let pass_dep = dependence(
            &people_pass(),
            "race",
            "high_expenditure",
            DependenceKind::Chi2,
        );
        assert!(fail_dep > 0.5, "fail dependence {fail_dep}");
        assert!(pass_dep < fail_dep, "pass {pass_dep} vs fail {fail_dep}");
    }

    #[test]
    fn end_to_end_diagnosis_resolves_example1() {
        let mut s = scenario();
        let exp =
            dataprism::explain_greedy(s.system.as_mut(), &s.d_fail, &s.d_pass, &s.config).unwrap();
        assert!(exp.resolved, "{exp}");
        assert!(
            s.explains_ground_truth(&exp),
            "explanation must be an Indep-on-high_expenditure or the
             gender/high_expenditure Selectivity: {exp}"
        );
    }

    #[test]
    fn system_scores_separate_the_datasets() {
        let mut s = scenario();
        let fail_score = s.system.malfunction(&s.d_fail);
        let pass_score = s.system.malfunction(&s.d_pass);
        assert!(
            fail_score > s.config.threshold,
            "People_fail must fail (paper: 0.75), got {fail_score}"
        );
        assert!(
            pass_score <= s.config.threshold,
            "People_pass must pass (paper: 0.15), got {pass_score}"
        );
    }
}
