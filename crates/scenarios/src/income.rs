//! §5.1 Income Prediction case study.
//!
//! The paper: a Random Forest predicts income from census records;
//! the pipeline returns the normalized disparate impact w.r.t. the
//! protected attribute (sex) as the malfunction score. The passing
//! dataset scores 0.195; the failing dataset — where noise was added
//! to *create* a dependence between `target` and `sex` — scores
//! 0.58. DataPrism-GRD finds the `Indep` PVT on `target` (which has
//! the highest degree in the PVT–attribute graph) and one shuffle of
//! `target` drops the malfunction to 0.32.
//!
//! The generator mirrors the construction: census-like attributes
//! where, in the failing variant, `target` depends strongly on `sex`
//! and `occupation` correlates with `sex` (so the trained model can
//! proxy the dropped sensitive attribute — Example 1's mechanism).

use crate::scenario::Scenario;
use dataprism::{DiscoveryConfig, PrismConfig, System};
use dp_frame::{DType, DataFrame, DataFrameBuilder, Value};
use dp_ml::encoding::{encode_features, extract_labels};
use dp_ml::fairness::{normalized_disparate_impact_smoothed, Group};
use dp_ml::{Classifier, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EDUCATION: &[&str] = &[
    "HS-grad",
    "Some-college",
    "Bachelors",
    "Masters",
    "Doctorate",
];
const OCCUPATION: &[&str] = &["Clerical", "Craft", "Exec", "Prof", "Sales", "Service"];
const RACE: &[&str] = &["Asian", "Black", "Other", "White"];

fn logistic(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Generate a census-like dataset. When `biased`, `sex` drives both
/// `occupation` and `target`.
fn build_census(rng: &mut StdRng, n: usize, biased: bool) -> DataFrame {
    let mut b = DataFrameBuilder::with_fields(&[
        ("age", DType::Int),
        ("education", DType::Categorical),
        ("hours", DType::Int),
        ("occupation", DType::Categorical),
        ("sex", DType::Categorical),
        ("race", DType::Categorical),
        ("capital_gain", DType::Float),
        ("target", DType::Categorical),
    ]);
    for _ in 0..n {
        let male = rng.gen_bool(0.5);
        let age = rng.gen_range(18..=80i64);
        let edu_idx = rng.gen_range(0..EDUCATION.len());
        let hours = rng.gen_range(20..=60i64);
        let occ_idx = if biased {
            // Occupation proxies sex: males skew Exec/Craft, females
            // Clerical/Service.
            if male {
                *[1usize, 2, 3, 4].get(rng.gen_range(0..4)).unwrap()
            } else {
                *[0usize, 5, 4, 0].get(rng.gen_range(0..4)).unwrap()
            }
        } else {
            rng.gen_range(0..OCCUPATION.len())
        };
        let race = RACE[rng.gen_range(0..RACE.len())];
        let capital_gain = if rng.gen_bool(0.15) {
            rng.gen_range(1000.0..30000.0)
        } else {
            0.0
        };
        // Base income process: education + hours + capital gains.
        let z = -2.0
            + 0.8 * edu_idx as f64
            + 0.05 * (hours - 40) as f64
            + 0.0001 * capital_gain
            + 0.01 * (age - 40) as f64;
        let p_high = if biased {
            // Planted dependence on sex, dominating the base process.
            if male {
                0.25 + 0.5 * logistic(z)
            } else {
                0.05 + 0.15 * logistic(z)
            }
        } else {
            logistic(z)
        };
        let target = if rng.gen_bool(p_high.clamp(0.0, 1.0)) {
            ">50K"
        } else {
            "<=50K"
        };
        b.push_row(vec![
            Value::Int(age),
            Value::Str(EDUCATION[edu_idx].to_string()),
            Value::Int(hours),
            Value::Str(OCCUPATION[occ_idx].to_string()),
            Value::Str(if male { "Male" } else { "Female" }.to_string()),
            Value::Str(race.to_string()),
            Value::Float(capital_gain),
            Value::Str(target.to_string()),
        ])
        .expect("schema-conforming row");
    }
    b.build()
}

/// The income pipeline: drop the sensitive attributes, train a
/// seeded Random Forest, and report the normalized disparate impact
/// of its predictions w.r.t. `sex`.
pub struct IncomeSystem {
    /// Trees in the forest.
    pub n_trees: usize,
    /// Depth per tree.
    pub max_depth: usize,
    /// Model seed (fixed so the oracle is deterministic).
    pub seed: u64,
}

impl Default for IncomeSystem {
    fn default() -> Self {
        // Deep trees + prediction on the training data deliberately
        // overfit: predictions then track the labels closely, so the
        // oracle's disparate impact reflects the *data's* bias — the
        // property DataPrism is diagnosing — rather than the learner's
        // regularization noise.
        IncomeSystem {
            n_trees: 20,
            max_depth: 12,
            seed: 17,
        }
    }
}

impl System for IncomeSystem {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        if df.n_rows() < 10 {
            return 1.0;
        }
        // Example 1's pre-processing: drop sex and race before
        // training (and of course the label).
        let Ok(enc) = encode_features(df, &["target", "sex", "race"]) else {
            return 1.0;
        };
        let Ok(y) = extract_labels(df, "target", &[">50K"]) else {
            return 1.0;
        };
        if y.iter().all(|&v| v == 0) || y.iter().all(|&v| v == 1) {
            return 1.0; // degenerate labels: pipeline cannot train
        }
        let mut forest = RandomForest::new(self.n_trees, self.max_depth, self.seed);
        // Pure bagging (all features per tree): predictions track the
        // training labels, so the DI oracle measures the data's bias.
        forest.features_per_tree = Some(enc.x.cols());
        forest.fit(&enc.x, &y);
        let preds = forest.predict_all(&enc.x);
        let Ok(sex) = df.column("sex") else {
            return 1.0;
        };
        let groups: Vec<Group> = (0..df.n_rows())
            .map(|i| {
                if sex.get(i).to_string() == "Female" {
                    Group::Unprivileged
                } else {
                    Group::Privileged
                }
            })
            .collect();
        normalized_disparate_impact_smoothed(&preds, &groups).unwrap_or(1.0)
    }

    fn name(&self) -> &str {
        "income-prediction"
    }
}

/// Build the Income Prediction scenario with `n` rows per dataset.
pub fn scenario_with_size(n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let d_pass = build_census(&mut rng, n, false);
    let d_fail = build_census(&mut rng, n, true);
    let config = PrismConfig {
        threshold: 0.45,
        discovery: DiscoveryConfig {
            // The paper's income study discovers pairwise selectivity
            // profiles conjoined with the label.
            selectivity_pair_with: Some("target".to_string()),
            ..DiscoveryConfig::default()
        },
        ..Default::default()
    };
    Scenario {
        name: "Income Prediction",
        system: Box::new(IncomeSystem::default()),
        factory: Box::new(IncomeSystem::default),
        d_pass,
        d_fail,
        config,
        // The planted bias creates a dependency triangle:
        // sex → target (direct), sex → occupation (proxy), and the
        // induced occupation ↔ target link. Cutting ANY edge removes
        // the measured disparity — shuffling target w.r.t. anything
        // destroys the bias to learn, and decoupling occupation from
        // sex removes the model's only channel to express it — so
        // each is a legitimate minimal explanation under
        // Definition 11.
        ground_truth: vec![
            "indep_chi2(*,target)".to_string(),
            "indep_chi2(occupation,sex)".to_string(),
        ],
    }
}

/// Default-size Income scenario.
pub fn scenario(seed: u64) -> Scenario {
    scenario_with_size(800, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fails_separated_by_threshold() {
        let mut s = scenario_with_size(500, 3);
        let pass_score = s.system.malfunction(&s.d_pass);
        let fail_score = s.system.malfunction(&s.d_fail);
        assert!(
            pass_score < s.config.threshold,
            "unbiased census must pass, got {pass_score}"
        );
        assert!(
            fail_score > s.config.threshold,
            "biased census must fail, got {fail_score}"
        );
        assert!(fail_score > pass_score + 0.1);
    }

    #[test]
    fn shuffling_target_repairs_fairness() {
        use rand::seq::SliceRandom;
        let mut s = scenario_with_size(500, 3);
        let mut fixed = s.d_fail.clone();
        let col = fixed.column_mut("target").unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut perm: Vec<usize> = (0..col.len()).collect();
        perm.shuffle(&mut rng);
        let shuffled = col.take(&perm);
        fixed.replace_column(shuffled).unwrap();
        let score = s.system.malfunction(&fixed);
        assert!(
            score < s.config.threshold,
            "after breaking the target dependence the pipeline must pass, got {score}"
        );
    }

    #[test]
    fn planted_dependence_is_chi2_visible() {
        use dp_frame::groupby::ContingencyTable;
        use dp_stats::chi_squared;
        let s = scenario_with_size(500, 3);
        let fail_table = ContingencyTable::from_frame(&s.d_fail, "sex", "target").unwrap();
        let pass_table = ContingencyTable::from_frame(&s.d_pass, "sex", "target").unwrap();
        let fail_chi = chi_squared(&fail_table);
        let pass_chi = chi_squared(&pass_table);
        assert!(fail_chi.significant(0.05));
        assert!(fail_chi.cramers_v > pass_chi.cramers_v + 0.2);
    }
}
