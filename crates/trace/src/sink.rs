//! Trace sinks: where the event stream goes.

use crate::event::TraceRecord;
use crate::json::record_to_json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for trace records.
///
/// Sinks only ever run on the main diagnosis thread, in strict
/// stream order — implementations need no synchronization.
pub trait TraceSink {
    /// Consume one record.
    fn record(&mut self, record: &TraceRecord);

    /// Flush any buffered output (called when the run finishes).
    fn flush(&mut self) {}
}

/// Discards everything. This is the *fallback* no-op sink; in the
/// default `TraceConfig::Off` configuration the tracer holds no sink
/// at all and short-circuits before a record is even built, so this
/// type mostly exists as the explicit "off" for custom-sink call
/// sites.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _record: &TraceRecord) {}
}

/// Collects records in memory, in stream order.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    records: Vec<TraceRecord>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consume the collector, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for Collector {
    fn record(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Streams records to a writer as JSONL (see [`crate::json`]).
///
/// Write errors after creation are deliberately swallowed: tracing
/// must never abort or perturb a diagnosis mid-run. Create the file
/// eagerly (via [`JsonlSink::create`]) so path problems surface
/// before the first oracle query.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) the file at `path` and buffer writes to it.
    pub fn create(path: &Path) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap an arbitrary writer (handy for tests).
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer }
    }

    /// Consume the sink, returning the writer (flushed).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, record: &TraceRecord) {
        let _ = writeln!(self.writer, "{}", record_to_json(record));
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::json::parse_jsonl;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at_ns: seq * 10,
            event: Event::MinimalityDrop { pvt: seq as usize },
        }
    }

    #[test]
    fn collector_keeps_stream_order() {
        let mut c = Collector::new();
        c.record(&rec(0));
        c.record(&rec(1));
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.into_records()[1], rec(1));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, vec![rec(0), rec(1)]);
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.record(&rec(0));
        sink.flush();
    }
}
