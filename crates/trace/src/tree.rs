//! Reconstructing the group-testing recursion tree from a trace.
//!
//! Bisection nodes appear in the stream as strictly nested
//! `BisectionNodeBegin`/`BisectionNodeEnd` pairs (the recursion is
//! serial on the main thread), so a simple stack folds the flat
//! stream back into a tree. Partition and probe events between a
//! node's begin and end attach to that node.

use crate::event::{Event, TraceRecord};

/// How a node's candidate set was split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// First half (probed first).
    pub left: Vec<usize>,
    /// Second half.
    pub right: Vec<usize>,
    /// Dependency edges cut by the split, when enumerated.
    pub cut_edges: Option<usize>,
}

/// One group probe at a node.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeInfo {
    /// 1 = left half, 2 = right half.
    pub half: u8,
    /// The probed candidate ids.
    pub ids: Vec<usize>,
    /// Malfunction score before.
    pub before: f64,
    /// Score of the half's composition.
    pub after: f64,
    /// Whether the half reduced the malfunction.
    pub kept: bool,
    /// Whether speculation had pre-computed the probe's query.
    pub speculative_hit: bool,
}

/// One node of the reconstructed recursion tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Node id (visit order).
    pub id: u64,
    /// Candidate PVT ids at this node.
    pub candidates: Vec<usize>,
    /// Speculative-coverage depth inherited from ancestors.
    pub covered: usize,
    /// The bisection of this node's candidates, if it got that far.
    pub partition: Option<PartitionInfo>,
    /// Group probes run at this node, in order.
    pub probes: Vec<ProbeInfo>,
    /// Candidate ids this subtree selected.
    pub selected: Vec<usize>,
    /// Wall time spent in this node's span (end − begin timestamps).
    pub wall_ns: u64,
    /// Child nodes, in visit order.
    pub children: Vec<TreeNode>,
}

/// The reconstructed group-testing search tree of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchTree {
    /// Top-level recursion nodes (one root per GT run; greedy runs
    /// produce none).
    pub roots: Vec<TreeNode>,
}

impl SearchTree {
    /// Fold a trace stream into its recursion tree.
    ///
    /// Unmatched ends or attachments outside any open node are
    /// ignored rather than errors: a truncated stream (crashed run)
    /// still yields the completed prefix of the tree, and non-node
    /// events are simply skipped.
    pub fn from_records(records: &[TraceRecord]) -> SearchTree {
        let mut roots = Vec::new();
        // Stack of (open node, its begin timestamp).
        let mut stack: Vec<(TreeNode, u64)> = Vec::new();
        for rec in records {
            match &rec.event {
                Event::BisectionNodeBegin(span) => {
                    stack.push((
                        TreeNode {
                            id: span.node,
                            candidates: span.candidates.clone(),
                            covered: span.covered,
                            partition: None,
                            probes: Vec::new(),
                            selected: Vec::new(),
                            wall_ns: 0,
                            children: Vec::new(),
                        },
                        rec.at_ns,
                    ));
                }
                Event::BisectionPartition {
                    node,
                    left,
                    right,
                    cut_edges,
                } => {
                    if let Some((open, _)) = stack.last_mut() {
                        if open.id == *node {
                            open.partition = Some(PartitionInfo {
                                left: left.clone(),
                                right: right.clone(),
                                cut_edges: *cut_edges,
                            });
                        }
                    }
                }
                Event::BisectionProbe {
                    node,
                    half,
                    ids,
                    before,
                    after,
                    kept,
                    speculative_hit,
                } => {
                    if let Some((open, _)) = stack.last_mut() {
                        if open.id == *node {
                            open.probes.push(ProbeInfo {
                                half: *half,
                                ids: ids.clone(),
                                before: *before,
                                after: *after,
                                kept: *kept,
                                speculative_hit: *speculative_hit,
                            });
                        }
                    }
                }
                Event::BisectionNodeEnd { node, selected }
                    if stack.last().is_some_and(|(open, _)| open.id == *node) =>
                {
                    let (mut done, begun_at) = stack.pop().expect("checked non-empty");
                    done.selected = selected.clone();
                    done.wall_ns = rec.at_ns.saturating_sub(begun_at);
                    match stack.last_mut() {
                        Some((parent, _)) => parent.children.push(done),
                        None => roots.push(done),
                    }
                }
                _ => {}
            }
        }
        SearchTree { roots }
    }

    /// Total nodes in the tree.
    pub fn node_count(&self) -> usize {
        fn count(n: &TreeNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Total probes across all nodes.
    pub fn probe_count(&self) -> usize {
        fn count(n: &TreeNode) -> usize {
            n.probes.len() + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Zero out run-volatile detail — wall times and speculative-hit
    /// flags — leaving only the deterministic search structure, so
    /// trees from different runs of the same scenario compare equal.
    pub fn strip_volatile(&self) -> SearchTree {
        fn strip(n: &TreeNode) -> TreeNode {
            TreeNode {
                wall_ns: 0,
                probes: n
                    .probes
                    .iter()
                    .map(|p| ProbeInfo {
                        speculative_hit: false,
                        ..p.clone()
                    })
                    .collect(),
                children: n.children.iter().map(strip).collect(),
                ..n.clone()
            }
        }
        SearchTree {
            roots: self.roots.iter().map(strip).collect(),
        }
    }

    /// Render as an indented text tree. With `include_times` the
    /// line for each node carries its wall time — leave it off for
    /// golden-tested output.
    pub fn render_text(&self, include_times: bool) -> String {
        fn fmt_ids(ids: &[usize]) -> String {
            let body = ids
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!("{{{body}}}")
        }
        fn walk(n: &TreeNode, depth: usize, include_times: bool, out: &mut String) {
            let pad = "  ".repeat(depth);
            out.push_str(&format!(
                "{pad}node {} candidates={}",
                n.id,
                fmt_ids(&n.candidates)
            ));
            if n.covered > 0 {
                out.push_str(&format!(" covered={}", n.covered));
            }
            if include_times {
                out.push_str(&format!(" wall={}us", n.wall_ns / 1_000));
            }
            out.push('\n');
            for p in &n.probes {
                let side = if p.half == 1 { "left" } else { "right" };
                out.push_str(&format!(
                    "{pad}  probe {side} {} {:.4} -> {:.4} {}{}\n",
                    fmt_ids(&p.ids),
                    p.before,
                    p.after,
                    if p.kept { "kept" } else { "rejected" },
                    if p.speculative_hit {
                        " (speculative hit)"
                    } else {
                        ""
                    },
                ));
            }
            for c in &n.children {
                walk(c, depth + 1, include_times, out);
            }
            if !n.children.is_empty() || !n.selected.is_empty() {
                out.push_str(&format!("{pad}  selected={}\n", fmt_ids(&n.selected)));
            }
        }
        let mut out = String::new();
        for root in &self.roots {
            walk(root, 0, include_times, &mut out);
        }
        out
    }

    /// Render as a Graphviz DOT digraph (one box per node: candidate
    /// set, probe verdicts, selection; dashed border marks nodes
    /// whose probes were all speculative hits).
    pub fn render_dot(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn fmt_ids(ids: &[usize]) -> String {
            ids.iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        fn walk(n: &TreeNode, out: &mut String) {
            let mut label = format!("node {}\\ncand {{{}}}", n.id, fmt_ids(&n.candidates));
            for p in &n.probes {
                let side = if p.half == 1 { "L" } else { "R" };
                label.push_str(&format!(
                    "\\n{side} {{{}}} {:.3}->{:.3} {}",
                    fmt_ids(&p.ids),
                    p.before,
                    p.after,
                    if p.kept { "keep" } else { "rej" },
                ));
            }
            if !n.selected.is_empty() {
                label.push_str(&format!("\\nsel {{{}}}", fmt_ids(&n.selected)));
            }
            let speculative = !n.probes.is_empty() && n.probes.iter().all(|p| p.speculative_hit);
            let style = if speculative { ", style=dashed" } else { "" };
            out.push_str(&format!(
                "  n{} [shape=box, label=\"{}\"{}];\n",
                n.id,
                esc(&label).replace("\\\\n", "\\n"),
                style
            ));
            for c in &n.children {
                out.push_str(&format!("  n{} -> n{};\n", n.id, c.id));
                walk(c, out);
            }
        }
        let mut out = String::from("digraph search_tree {\n");
        for root in &self.roots {
            walk(root, &mut out);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BisectionNodeSpan;

    fn rec(seq: u64, at_ns: u64, event: Event) -> TraceRecord {
        TraceRecord { seq, at_ns, event }
    }

    fn sample_stream() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                100,
                Event::BisectionNodeBegin(BisectionNodeSpan {
                    node: 0,
                    parent: None,
                    candidates: vec![0, 1, 2, 3],
                    covered: 0,
                }),
            ),
            rec(
                1,
                110,
                Event::BisectionPartition {
                    node: 0,
                    left: vec![0, 1],
                    right: vec![2, 3],
                    cut_edges: Some(1),
                },
            ),
            rec(
                2,
                150,
                Event::BisectionProbe {
                    node: 0,
                    half: 1,
                    ids: vec![0, 1],
                    before: 0.8,
                    after: 0.3,
                    kept: true,
                    speculative_hit: true,
                },
            ),
            rec(
                3,
                160,
                Event::BisectionNodeBegin(BisectionNodeSpan {
                    node: 1,
                    parent: Some(0),
                    candidates: vec![0, 1],
                    covered: 1,
                }),
            ),
            rec(
                4,
                300,
                Event::BisectionNodeEnd {
                    node: 1,
                    selected: vec![1],
                },
            ),
            rec(
                5,
                400,
                Event::BisectionNodeEnd {
                    node: 0,
                    selected: vec![1],
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_nesting_and_wall_times() {
        let tree = SearchTree::from_records(&sample_stream());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.node_count(), 2);
        assert_eq!(tree.probe_count(), 1);
        let root = &tree.roots[0];
        assert_eq!(root.id, 0);
        assert_eq!(root.wall_ns, 300);
        assert_eq!(root.partition.as_ref().unwrap().cut_edges, Some(1));
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].id, 1);
        assert_eq!(root.children[0].wall_ns, 140);
        assert_eq!(root.children[0].covered, 1);
        assert_eq!(root.selected, vec![1]);
    }

    #[test]
    fn truncated_stream_yields_completed_prefix() {
        let mut records = sample_stream();
        records.truncate(5); // lost the root's end
        let tree = SearchTree::from_records(&records);
        // The inner node completed and would attach to the root, but
        // the root never closed — only fully closed roots appear.
        assert_eq!(tree.roots.len(), 0);
    }

    #[test]
    fn strip_volatile_zeroes_times_and_hits() {
        let tree = SearchTree::from_records(&sample_stream());
        let stripped = tree.strip_volatile();
        assert_eq!(stripped.roots[0].wall_ns, 0);
        assert!(!stripped.roots[0].probes[0].speculative_hit);
        // Structure survives.
        assert_eq!(stripped.node_count(), tree.node_count());
        assert_eq!(stripped, stripped.strip_volatile());
    }

    #[test]
    fn text_rendering_is_deterministic_without_times() {
        let tree = SearchTree::from_records(&sample_stream());
        let text = tree.render_text(false);
        assert!(text.contains("node 0 candidates={0,1,2,3}"), "{text}");
        assert!(
            text.contains("probe left {0,1} 0.8000 -> 0.3000 kept (speculative hit)"),
            "{text}"
        );
        assert!(
            text.contains("  node 1 candidates={0,1} covered=1"),
            "{text}"
        );
        assert!(!text.contains("wall="), "{text}");
        let timed = tree.render_text(true);
        assert!(timed.contains("wall="), "{timed}");
    }

    #[test]
    fn dot_rendering_links_parent_to_child() {
        let tree = SearchTree::from_records(&sample_stream());
        let dot = tree.render_dot();
        assert!(dot.starts_with("digraph search_tree {"), "{dot}");
        assert!(dot.contains("n0 -> n1;"), "{dot}");
        assert!(dot.contains("cand {0,1,2,3}"), "{dot}");
        assert!(dot.ends_with("}\n"), "{dot}");
    }
}
