//! Replaying a recorded JSONL trace stream.
//!
//! Every charged oracle query of a diagnosis run is recorded as an
//! [`OracleQuerySpan`] carrying the content fingerprint of the
//! queried dataset and the malfunction score the system returned.
//! Because both are exact (`u64` fingerprints as raw digit strings,
//! `f64` scores in shortest round-trip form), replaying a prior
//! run's trace file reconstructs the fingerprint → score mapping
//! **bit for bit** — the warm-start substrate of the `dp_serve`
//! cross-run oracle cache.
//!
//! The reader is strict about schema: any record whose `"v"` field
//! differs from this writer's [`SCHEMA_VERSION`] fails the replay
//! with its line number (a forward-version file written by a newer
//! build must never be half-understood into a cache). The one
//! tolerated irregularity is a **truncated final line without a
//! trailing newline** — the readable prefix a crashed run leaves
//! behind — which is skipped rather than failing the whole file.

use crate::event::{Event, OracleQuerySpan, TraceRecord, SCHEMA_VERSION};
use crate::json::{parse_jsonl, ParseError};

/// Outcome of replaying one trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Every oracle query of the run, in charge order (baselines
    /// included — their scores are just as reusable).
    pub queries: Vec<OracleQuerySpan>,
    /// Records of other event kinds that were skipped.
    pub skipped: usize,
    /// Whether a truncated, unterminated final line was dropped (the
    /// tail a crashed writer leaves behind).
    pub truncated_tail: bool,
}

/// Replay a JSONL trace stream, extracting the oracle-query spans.
///
/// Strict on schema version: every parsed line must carry
/// `"v": `[`SCHEMA_VERSION`] or the replay fails with the offending
/// 1-based line number. A final line that does not end in `\n` and
/// does not parse is treated as a crash-truncated tail and skipped
/// (`truncated_tail` reports it); a *terminated* malformed line
/// still fails.
pub fn replay_oracle_queries(input: &str) -> Result<Replay, ParseError> {
    let (body, tail) = match input.rfind('\n') {
        Some(pos) => input.split_at(pos + 1),
        None => ("", input),
    };
    let mut records = parse_jsonl(body)?;
    let mut truncated_tail = false;
    if !tail.trim().is_empty() {
        // The unterminated tail: decode if whole, drop if truncated.
        match parse_jsonl(tail) {
            Ok(tail_records) => records.extend(tail_records),
            Err(e) => {
                // A complete-but-wrong-version tail is a version
                // error, not truncation: refuse it like any other
                // line so a forward-version file never half-loads.
                if e.message.contains("schema version") {
                    let lines = body.lines().count();
                    return Err(ParseError {
                        line: lines + e.line,
                        message: e.message,
                    });
                }
                truncated_tail = true;
            }
        }
    }
    Ok(collect_queries(records, truncated_tail))
}

/// Extract the oracle-query spans from already-decoded records (the
/// in-memory `Collector` path; no version check needed — typed
/// records are this build's schema by construction).
pub fn replay_records(records: &[TraceRecord]) -> Replay {
    collect_queries(records.to_vec(), false)
}

fn collect_queries(records: Vec<TraceRecord>, truncated_tail: bool) -> Replay {
    let mut queries = Vec::new();
    let mut skipped = 0usize;
    for rec in records {
        match rec.event {
            Event::OracleQuery(span) => queries.push(span),
            _ => skipped += 1,
        }
    }
    Replay {
        queries,
        skipped,
        truncated_tail,
    }
}

/// Assert the stream's writer version matches this reader's — the
/// check [`replay_oracle_queries`] applies per line, exposed for
/// callers that pre-screen a file header cheaply.
pub fn is_supported_version(v: u64) -> bool {
    v == SCHEMA_VERSION as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DiagnosisSpan, QueryKind};
    use crate::json::{record_to_json, to_jsonl};

    fn query(seq: u64, fp: u64, score: f64) -> TraceRecord {
        TraceRecord {
            seq,
            at_ns: seq,
            event: Event::OracleQuery(OracleQuerySpan {
                kind: if seq == 0 {
                    QueryKind::Baseline
                } else {
                    QueryKind::Intervention
                },
                fingerprint: fp,
                score,
                cached: false,
                speculative_hit: false,
                latency_ns: Some(10),
            }),
        }
    }

    fn begin(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at_ns: 0,
            event: Event::DiagnosisBegin(DiagnosisSpan {
                algorithm: "greedy".into(),
                system: "s".into(),
                seed: 1,
                threshold: 0.2,
                num_threads: 1,
                speculation_depth: 0,
            }),
        }
    }

    #[test]
    fn extracts_queries_in_order_and_counts_skips() {
        let records = vec![
            begin(0),
            query(1, 0xFEDC_BA98_7654_3210, 0.5),
            query(2, 42, 0.125),
        ];
        let replay = replay_oracle_queries(&to_jsonl(&records)).unwrap();
        assert_eq!(replay.queries.len(), 2);
        assert_eq!(replay.queries[0].fingerprint, 0xFEDC_BA98_7654_3210);
        assert_eq!(replay.queries[1].score.to_bits(), 0.125f64.to_bits());
        assert_eq!(replay.skipped, 1);
        assert!(!replay.truncated_tail);
        assert_eq!(replay_records(&records), replay);
    }

    #[test]
    fn rejects_a_forward_version_file() {
        // A file written by a hypothetical newer build: same shape,
        // bumped schema version. The replay must refuse it wholesale —
        // not guess at field meanings — and name the offending line.
        let next = SCHEMA_VERSION + 1;
        let good = record_to_json(&query(0, 7, 0.25));
        let forward = good.replacen(
            &format!("\"v\":{SCHEMA_VERSION}"),
            &format!("\"v\":{next}"),
            1,
        );
        assert_ne!(good, forward, "version substitution must have happened");
        let expected = format!("schema version {next}");
        let err = replay_oracle_queries(&format!("{forward}\n")).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains(&expected), "{err}");

        // Mixed file: valid line then a forward-version line.
        let err = replay_oracle_queries(&format!("{good}\n{forward}\n")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains(&expected), "{err}");

        // Even as an unterminated tail, a complete forward-version
        // record is a version error, not crash truncation.
        let err = replay_oracle_queries(&format!("{good}\n{forward}")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains(&expected), "{err}");
    }

    #[test]
    fn tolerates_a_crash_truncated_tail() {
        let full = to_jsonl(&[query(0, 1, 0.5), query(1, 2, 0.75)]);
        let cut = record_to_json(&query(2, 3, 0.875));
        let truncated = format!("{full}{}", &cut[..cut.len() / 2]);
        let replay = replay_oracle_queries(&truncated).unwrap();
        assert_eq!(replay.queries.len(), 2, "prefix survives");
        assert!(replay.truncated_tail);

        // A terminated malformed line is still a hard error.
        let bad = format!("{full}{}\n", &cut[..cut.len() / 2]);
        assert!(replay_oracle_queries(&bad).is_err());
    }

    #[test]
    fn unterminated_but_complete_tail_is_read() {
        let mut text = to_jsonl(&[query(0, 1, 0.5)]);
        text.push_str(&record_to_json(&query(1, 2, 0.75)));
        let replay = replay_oracle_queries(&text).unwrap();
        assert_eq!(replay.queries.len(), 2);
        assert!(!replay.truncated_tail);
    }

    #[test]
    fn version_guard() {
        assert!(is_supported_version(SCHEMA_VERSION as u64));
        assert!(!is_supported_version(SCHEMA_VERSION as u64 + 1));
    }
}
