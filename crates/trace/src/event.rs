//! The versioned trace event schema.
//!
//! A diagnosis run emits a flat, strictly ordered stream of
//! [`TraceRecord`]s. Span-shaped activities (the run itself, each
//! bisection node) are encoded as begin/end event pairs so the stream
//! stays append-only and a crashed run still leaves a readable
//! prefix; [`crate::tree::SearchTree`] folds the node spans back into
//! the recursion tree.
//!
//! Events carry ids, fingerprints, and scores — never dataset
//! contents — so a trace is cheap to emit, safe to ship, and stable
//! to diff across runs.

/// Version of the event schema. Bumped whenever a field or variant
/// changes meaning; every JSONL line carries it as `"v"` and the
/// parser rejects lines from other versions.
///
/// v2: `OracleQuerySpan::latency_ns` became optional (absent for
/// cache hits instead of a `0` sentinel) and the
/// [`Event::SpeculationPlan`] controller event was added.
///
/// v3: the [`Event::SampledQuery`] event was added — a
/// confidence-bounded oracle decision settled on a stratified row
/// sample instead of the full dataset.
///
/// v4: the [`Event::LintFact`] event was added — the abstract-
/// interpretation fact counts (L6 subsumption classes, L7
/// τ-unreachability drops, L8 commutation pairs, L9 no-op
/// certificates) the lint pass derived before any oracle query.
///
/// v5: the continuous-monitoring events were added —
/// [`Event::SketchMerge`] (a batch was folded into the live
/// per-column sketches), [`Event::DriftScore`] (one profile's drift
/// score against the live window), and [`Event::MonitorTrigger`]
/// (drift past τ_drift escalated to a targeted re-diagnosis).
pub const SCHEMA_VERSION: u32 = 5;

/// Whether an oracle query was a free baseline or a charged
/// intervention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// One of the two problem-input baselines (never charged).
    Baseline,
    /// A transformed-dataset query (charged as one intervention,
    /// cached or not).
    Intervention,
}

/// Attributes of the span bracketing a whole diagnosis run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisSpan {
    /// `"greedy"` or `"group_test"`.
    pub algorithm: String,
    /// Name of the system under diagnosis.
    pub system: String,
    /// Run seed.
    pub seed: u64,
    /// Acceptable-malfunction threshold τ.
    pub threshold: f64,
    /// Worker threads of the intervention runtime.
    pub num_threads: usize,
    /// Speculative lookahead depth (group testing).
    pub speculation_depth: usize,
}

/// One profile-discovery pass (emitted once, after it completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoverySpan {
    /// Discriminative PVTs found.
    pub n_pvts: usize,
    /// Attribute pairs the pairwise independence pass considered.
    pub pairs: u64,
    /// Pair tests screened out by the sketch pre-filter.
    pub screened: u64,
    /// Exact χ²/Pearson tests actually run.
    pub exact: u64,
    /// Wall time of the discovery pass.
    pub elapsed_ns: u64,
}

/// The static lint pass over the candidate PVT set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintSpan {
    /// Whether the pass ran at all (`false` under `Lint::Off`).
    pub analyzed: bool,
    /// Error-level findings.
    pub errors: usize,
    /// Warn-level findings.
    pub warnings: usize,
    /// Info-level findings.
    pub infos: usize,
    /// Candidates pruned before ranking (`Lint::Prune` only).
    pub pruned: usize,
}

/// The abstract-interpretation fact counts the lint pass derived (v4;
/// emitted right after [`Event::Lint`] whenever the pass ran).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintFactSpan {
    /// L6 equivalence classes of size ≥ 2.
    pub subsumption_classes: usize,
    /// Candidates whose oracle charge another class member carries
    /// (`Lint::Prune` only; 0 under `Report`).
    pub subsumed: usize,
    /// Candidates with an L7 τ-unreachability certificate.
    pub unreachable: usize,
    /// L8 certified commuting candidate pairs.
    pub commuting_pairs: usize,
    /// Candidates with an L9 abstract no-op certificate.
    pub noop_certified: usize,
}

/// One oracle query, with how the fingerprint cache served it.
///
/// The `fingerprint` is the content hash of the queried dataset —
/// stable across runs of the same scenario, which is what makes these
/// spans the natural key for a future cross-run oracle cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleQuerySpan {
    /// Baseline or charged intervention.
    pub kind: QueryKind,
    /// Content fingerprint of the queried dataset.
    pub fingerprint: u64,
    /// The malfunction score returned.
    pub score: f64,
    /// Served from the fingerprint cache (no system evaluation on
    /// the charged path).
    pub cached: bool,
    /// The cache entry was produced by a speculative worker — the
    /// lookahead guessed this query right.
    pub speculative_hit: bool,
    /// Wall time of the system evaluation; `None` for cache hits
    /// (no evaluation happened). Absent on the wire when `None`.
    pub latency_ns: Option<u64>,
}

/// One sampled oracle decision: a charged query whose pass/fail
/// verdict at τ was settled on a stratified row sample at the
/// configured confidence, without touching the full dataset. Queries
/// that escalated to a full evaluation emit an ordinary
/// [`Event::OracleQuery`] instead (their sample work is aggregated in
/// `RunMetrics::escalations`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledQuerySpan {
    /// Content fingerprint of the queried dataset.
    pub fingerprint: u64,
    /// Estimated malfunction score on the sample.
    pub estimate: f64,
    /// Rows the estimate scored.
    pub rows: u64,
    /// Rows of the full dataset the sample stands in for.
    pub total_rows: u64,
    /// Confidence level `1 − δ` of the Hoeffding settlement.
    pub confidence: f64,
}

/// The adaptive speculation controller's decision at one cold
/// bisection node: how deep to pre-bisect and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationPlanSpan {
    /// Bisection node the plan applies to.
    pub node: u64,
    /// Configured depth cap (`gt_speculation_depth`).
    pub cap: usize,
    /// Depth the controller chose (≤ `cap`; equals `cap` under
    /// static speculation).
    pub depth: usize,
    /// In-flight frame budget in force at plan time; `None` means
    /// unbounded (static mode without a budget).
    pub budget: Option<usize>,
    /// Mean observed cold-query latency feeding the decision, in
    /// nanoseconds; `None` when no sample existed yet.
    pub mean_query_ns: Option<u64>,
    /// Frames the resulting frontier enqueues.
    pub frames: usize,
}

/// One node of the group-testing recursion (begin side; the end side
/// is [`Event::BisectionNodeEnd`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectionNodeSpan {
    /// Node id, assigned in recursion (= serial visit) order.
    pub node: u64,
    /// Parent node id; `None` for the root.
    pub parent: Option<u64>,
    /// Candidate PVT ids at this node.
    pub candidates: Vec<usize>,
    /// Levels below this node an ancestor's speculative frontier
    /// already covers.
    pub covered: usize,
}

/// One ingested batch folded into a watcher's live sketches (v5).
/// Emitted once per batch; the per-column merges it stands for are
/// bit-identical to rebuilding the sketches over the whole stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchMergeSpan {
    /// Columns whose summaries were merged.
    pub columns: usize,
    /// Rows in the ingested batch.
    pub batch_rows: u64,
    /// Rows of the stream after the merge.
    pub total_rows: u64,
    /// Batches ingested so far (this one included).
    pub batches: u64,
}

/// One passing-run profile scored against the live drift window (v5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScoreSpan {
    /// Index of the profile in the watcher's baseline profile set.
    pub profile: usize,
    /// The drift score — the profile's violation over the window.
    pub score: f64,
    /// The violation threshold τ_drift in force.
    pub threshold: f64,
    /// Whether the score exceeded τ_drift.
    pub drifted: bool,
    /// Whether the sketch screen proved the score zero without
    /// touching rows.
    pub screened: bool,
}

/// A drift check crossed τ_drift and the watcher escalated to a
/// targeted re-diagnosis seeded with only the drifted profiles (v5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorTriggerSpan {
    /// Indices of the drifted profiles (ascending baseline order).
    pub drifted: Vec<usize>,
    /// Candidate PVTs the drifted profiles expanded into.
    pub candidates: usize,
    /// Rows of the drift window handed to the diagnosis as `D_fail`.
    pub window_rows: u64,
}

/// One event of the trace stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The run began (always the first record).
    DiagnosisBegin(DiagnosisSpan),
    /// Profile discovery completed.
    Discovery(DiscoverySpan),
    /// The lint pass completed.
    Lint(LintSpan),
    /// The lint pass's abstract-interpretation fact counts (v4).
    LintFact(LintFactSpan),
    /// An oracle query completed.
    OracleQuery(OracleQuerySpan),
    /// A charged oracle decision was settled on a row sample (the
    /// confidence-bounded sampled oracle; never emitted for queries
    /// whose exact score is consumed downstream).
    SampledQuery(SampledQuerySpan),
    /// Greedy decided on one candidate (Alg 1 lines 12–19).
    GreedyPick {
        /// Candidate PVT id.
        pvt: usize,
        /// Malfunction score before the intervention.
        before: f64,
        /// Malfunction score after.
        after: f64,
        /// Whether the candidate was kept (reduced the malfunction).
        kept: bool,
    },
    /// Entered a group-testing recursion node.
    BisectionNodeBegin(BisectionNodeSpan),
    /// The speculation controller planned a lookahead frontier for a
    /// cold bisection node (emitted before the frames are enqueued).
    SpeculationPlan(SpeculationPlanSpan),
    /// The node's candidate set was bisected.
    BisectionPartition {
        /// Node id.
        node: u64,
        /// First half (probed first).
        left: Vec<usize>,
        /// Second half.
        right: Vec<usize>,
        /// Dependency-graph edges cut by the split, when the
        /// partitioner enumerated them (min-bisection below the
        /// local-search limit).
        cut_edges: Option<usize>,
    },
    /// A half of the node's partition was probed as a group.
    BisectionProbe {
        /// Node id.
        node: u64,
        /// 1 = left half, 2 = right half.
        half: u8,
        /// The probed candidate ids.
        ids: Vec<usize>,
        /// Malfunction score before.
        before: f64,
        /// Malfunction score of the half's composition.
        after: f64,
        /// Whether the half reduced the malfunction.
        kept: bool,
        /// Whether the probe's oracle query was served by a
        /// speculative worker's evaluation.
        speculative_hit: bool,
    },
    /// Left a group-testing recursion node.
    BisectionNodeEnd {
        /// Node id.
        node: u64,
        /// Candidate ids this subtree selected into the explanation.
        selected: Vec<usize>,
    },
    /// Make-Minimal dropped a redundant PVT.
    MinimalityDrop {
        /// The dropped PVT id.
        pvt: usize,
    },
    /// A batch was folded into a watcher's live sketches (v5).
    SketchMerge(SketchMergeSpan),
    /// One profile's drift score against the live window (v5).
    DriftScore(DriftScoreSpan),
    /// Drift crossed τ_drift; a targeted re-diagnosis was seeded with
    /// the drifted profiles (v5).
    MonitorTrigger(MonitorTriggerSpan),
    /// The run ended (always the last record of a completed run).
    DiagnosisEnd {
        /// Whether the final score is at or below τ.
        resolved: bool,
        /// Interventions charged.
        interventions: usize,
        /// Final malfunction score.
        final_score: f64,
    },
}

/// One record of the trace stream: a strictly increasing sequence
/// number, a monotonic timestamp relative to the run start, and the
/// event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Position in the stream (0-based, dense).
    pub seq: u64,
    /// Nanoseconds since the run started.
    pub at_ns: u64,
    /// What happened.
    pub event: Event,
}
