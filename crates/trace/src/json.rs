//! JSONL serialization of the trace stream.
//!
//! One JSON object per line, each carrying the schema version as
//! `"v"` (see [`SCHEMA_VERSION`]). The encoder/decoder pair is
//! hand-rolled (the workspace is offline — no serde) and exact:
//! `u64` values are written as full-precision decimal integers (JSON
//! numbers are arbitrary-precision; the *parser* keeps the raw digit
//! string, so fingerprints above 2⁵³ survive), and `f64` scores use
//! Rust's shortest round-trip formatting, so
//! `parse_jsonl(to_jsonl(r)) == r` bit for bit.

use crate::event::{
    BisectionNodeSpan, DiagnosisSpan, DiscoverySpan, DriftScoreSpan, Event, LintFactSpan, LintSpan,
    MonitorTriggerSpan, OracleQuerySpan, QueryKind, SampledQuerySpan, SketchMergeSpan,
    SpeculationPlanSpan, TraceRecord, SCHEMA_VERSION,
};
use std::fmt;

/// A malformed trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------

fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is the shortest representation that round-trips
        // through `str::parse::<f64>` exactly.
        out.push_str(&format!("{x:?}"));
    } else {
        // Scores are sanitized into [0, 1] upstream; a non-finite
        // value can only reach here through a custom sink user. JSON
        // has no NaN/Inf — encode as null, decoded back as NaN.
        out.push_str("null");
    }
}

fn push_ids(out: &mut String, ids: &[usize]) {
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out.push(']');
}

struct Obj {
    buf: String,
}

impl Obj {
    fn new(seq: u64, at_ns: u64, ev: &str) -> Obj {
        let mut buf = String::with_capacity(128);
        buf.push_str(&format!(
            "{{\"v\":{SCHEMA_VERSION},\"seq\":{seq},\"at_ns\":{at_ns},\"ev\":\"{ev}\""
        ));
        Obj { buf }
    }

    fn u64(mut self, key: &str, v: u64) -> Obj {
        self.buf.push_str(&format!(",\"{key}\":{v}"));
        self
    }

    fn usize(self, key: &str, v: usize) -> Obj {
        self.u64(key, v as u64)
    }

    fn f64(mut self, key: &str, v: f64) -> Obj {
        self.buf.push_str(&format!(",\"{key}\":"));
        push_f64(&mut self.buf, v);
        self
    }

    fn bool(mut self, key: &str, v: bool) -> Obj {
        self.buf.push_str(&format!(",\"{key}\":{v}"));
        self
    }

    fn str(mut self, key: &str, v: &str) -> Obj {
        self.buf.push_str(&format!(",\"{key}\":"));
        push_str_escaped(&mut self.buf, v);
        self
    }

    fn ids(mut self, key: &str, v: &[usize]) -> Obj {
        self.buf.push_str(&format!(",\"{key}\":"));
        push_ids(&mut self.buf, v);
        self
    }

    fn opt_u64(self, key: &str, v: Option<u64>) -> Obj {
        match v {
            Some(v) => self.u64(key, v),
            None => self,
        }
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Encode one record as a single JSON line (no trailing newline).
pub fn record_to_json(rec: &TraceRecord) -> String {
    let (seq, at) = (rec.seq, rec.at_ns);
    match &rec.event {
        Event::DiagnosisBegin(s) => Obj::new(seq, at, "diagnosis_begin")
            .str("algorithm", &s.algorithm)
            .str("system", &s.system)
            .u64("seed", s.seed)
            .f64("threshold", s.threshold)
            .usize("num_threads", s.num_threads)
            .usize("speculation_depth", s.speculation_depth)
            .finish(),
        Event::Discovery(s) => Obj::new(seq, at, "discovery")
            .usize("n_pvts", s.n_pvts)
            .u64("pairs", s.pairs)
            .u64("screened", s.screened)
            .u64("exact", s.exact)
            .u64("elapsed_ns", s.elapsed_ns)
            .finish(),
        Event::Lint(s) => Obj::new(seq, at, "lint")
            .bool("analyzed", s.analyzed)
            .usize("errors", s.errors)
            .usize("warnings", s.warnings)
            .usize("infos", s.infos)
            .usize("pruned", s.pruned)
            .finish(),
        Event::LintFact(s) => Obj::new(seq, at, "lint_fact")
            .usize("subsumption_classes", s.subsumption_classes)
            .usize("subsumed", s.subsumed)
            .usize("unreachable", s.unreachable)
            .usize("commuting_pairs", s.commuting_pairs)
            .usize("noop_certified", s.noop_certified)
            .finish(),
        Event::OracleQuery(s) => Obj::new(seq, at, "oracle_query")
            .str(
                "kind",
                match s.kind {
                    QueryKind::Baseline => "baseline",
                    QueryKind::Intervention => "intervention",
                },
            )
            .u64("fingerprint", s.fingerprint)
            .f64("score", s.score)
            .bool("cached", s.cached)
            .bool("speculative_hit", s.speculative_hit)
            .opt_u64("latency_ns", s.latency_ns)
            .finish(),
        Event::SampledQuery(s) => Obj::new(seq, at, "sampled_query")
            .u64("fingerprint", s.fingerprint)
            .f64("estimate", s.estimate)
            .u64("rows", s.rows)
            .u64("total_rows", s.total_rows)
            .f64("confidence", s.confidence)
            .finish(),
        Event::GreedyPick {
            pvt,
            before,
            after,
            kept,
        } => Obj::new(seq, at, "greedy_pick")
            .usize("pvt", *pvt)
            .f64("before", *before)
            .f64("after", *after)
            .bool("kept", *kept)
            .finish(),
        Event::BisectionNodeBegin(s) => Obj::new(seq, at, "node_begin")
            .u64("node", s.node)
            .opt_u64("parent", s.parent)
            .ids("candidates", &s.candidates)
            .usize("covered", s.covered)
            .finish(),
        Event::SpeculationPlan(s) => Obj::new(seq, at, "speculation_plan")
            .u64("node", s.node)
            .usize("cap", s.cap)
            .usize("depth", s.depth)
            .opt_u64("budget", s.budget.map(|b| b as u64))
            .opt_u64("mean_query_ns", s.mean_query_ns)
            .usize("frames", s.frames)
            .finish(),
        Event::BisectionPartition {
            node,
            left,
            right,
            cut_edges,
        } => Obj::new(seq, at, "partition")
            .u64("node", *node)
            .ids("left", left)
            .ids("right", right)
            .opt_u64("cut_edges", cut_edges.map(|c| c as u64))
            .finish(),
        Event::BisectionProbe {
            node,
            half,
            ids,
            before,
            after,
            kept,
            speculative_hit,
        } => Obj::new(seq, at, "probe")
            .u64("node", *node)
            .u64("half", *half as u64)
            .ids("ids", ids)
            .f64("before", *before)
            .f64("after", *after)
            .bool("kept", *kept)
            .bool("speculative_hit", *speculative_hit)
            .finish(),
        Event::BisectionNodeEnd { node, selected } => Obj::new(seq, at, "node_end")
            .u64("node", *node)
            .ids("selected", selected)
            .finish(),
        Event::MinimalityDrop { pvt } => Obj::new(seq, at, "minimality_drop")
            .usize("pvt", *pvt)
            .finish(),
        Event::SketchMerge(s) => Obj::new(seq, at, "sketch_merge")
            .usize("columns", s.columns)
            .u64("batch_rows", s.batch_rows)
            .u64("total_rows", s.total_rows)
            .u64("batches", s.batches)
            .finish(),
        Event::DriftScore(s) => Obj::new(seq, at, "drift_score")
            .usize("profile", s.profile)
            .f64("score", s.score)
            .f64("threshold", s.threshold)
            .bool("drifted", s.drifted)
            .bool("screened", s.screened)
            .finish(),
        Event::MonitorTrigger(s) => Obj::new(seq, at, "monitor_trigger")
            .ids("drifted", &s.drifted)
            .usize("candidates", s.candidates)
            .u64("window_rows", s.window_rows)
            .finish(),
        Event::DiagnosisEnd {
            resolved,
            interventions,
            final_score,
        } => Obj::new(seq, at, "diagnosis_end")
            .bool("resolved", *resolved)
            .usize("interventions", *interventions)
            .f64("final_score", *final_score)
            .finish(),
    }
}

/// Encode a whole stream as JSONL (one record per line, trailing
/// newline).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_to_json(rec));
        out.push('\n');
    }
    out
}

/// Escape a string for embedding in a JSON document (adds the
/// surrounding quotes). Shared with `dp_serve`'s wire protocol so
/// both line formats escape identically.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_escaped(&mut out, s);
    out
}

// ---------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw digit string so `u64`
/// keys (content fingerprints) survive beyond 2⁵³.
///
/// Public so other line-oriented JSON protocols in the workspace
/// (`dp_serve`) can reuse the offline parser instead of hand-rolling
/// a second one.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw digit string (exact for u64 keys).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in document order.
    Obj(Vec<(String, JsonValue)>),
}

type Json = JsonValue;

impl JsonValue {
    /// Parse one JSON document, requiring it to span the whole input
    /// (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut parser = Parser::new(input);
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing data after JSON value"));
        }
        Ok(value)
    }

    /// Field lookup on an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The raw digit string of a number, parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        Ok(Json::Num(
            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in our own
                            // output (we only \u-escape control
                            // chars); map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact:
                    // re-decode from the byte position.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

struct Fields<'a>(&'a [(String, Json)]);

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<&'a Json, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("field '{key}': '{raw}' is not a u64")),
            _ => Err(format!("field '{key}' is not a number")),
        }
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.u64(key).map(|v| v as usize)
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        if self.0.iter().any(|(k, _)| k == key) {
            self.u64(key).map(Some)
        } else {
            Ok(None)
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("field '{key}': '{raw}' is not an f64")),
            Json::Null => Ok(f64::NAN),
            _ => Err(format!("field '{key}' is not a number")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("field '{key}' is not a bool")),
        }
    }

    fn str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(format!("field '{key}' is not a string")),
        }
    }

    fn ids(&self, key: &str) -> Result<Vec<usize>, String> {
        match self.get(key)? {
            Json::Arr(items) => items
                .iter()
                .map(|item| match item {
                    Json::Num(raw) => raw
                        .parse::<usize>()
                        .map_err(|_| format!("field '{key}': bad id '{raw}'")),
                    _ => Err(format!("field '{key}' holds a non-number")),
                })
                .collect(),
            _ => Err(format!("field '{key}' is not an array")),
        }
    }
}

fn decode_record(line: &str) -> Result<TraceRecord, String> {
    let mut parser = Parser::new(line);
    let Json::Obj(fields) = parser.value()? else {
        return Err("record is not a JSON object".into());
    };
    let f = Fields(&fields);
    let v = f.u64("v")?;
    if v != SCHEMA_VERSION as u64 {
        return Err(format!(
            "schema version {v} (this parser reads v{SCHEMA_VERSION})"
        ));
    }
    let seq = f.u64("seq")?;
    let at_ns = f.u64("at_ns")?;
    let ev = f.str("ev")?;
    let event = match ev.as_str() {
        "diagnosis_begin" => Event::DiagnosisBegin(DiagnosisSpan {
            algorithm: f.str("algorithm")?,
            system: f.str("system")?,
            seed: f.u64("seed")?,
            threshold: f.f64("threshold")?,
            num_threads: f.usize("num_threads")?,
            speculation_depth: f.usize("speculation_depth")?,
        }),
        "discovery" => Event::Discovery(DiscoverySpan {
            n_pvts: f.usize("n_pvts")?,
            pairs: f.u64("pairs")?,
            screened: f.u64("screened")?,
            exact: f.u64("exact")?,
            elapsed_ns: f.u64("elapsed_ns")?,
        }),
        "lint" => Event::Lint(LintSpan {
            analyzed: f.bool("analyzed")?,
            errors: f.usize("errors")?,
            warnings: f.usize("warnings")?,
            infos: f.usize("infos")?,
            pruned: f.usize("pruned")?,
        }),
        "lint_fact" => Event::LintFact(LintFactSpan {
            subsumption_classes: f.usize("subsumption_classes")?,
            subsumed: f.usize("subsumed")?,
            unreachable: f.usize("unreachable")?,
            commuting_pairs: f.usize("commuting_pairs")?,
            noop_certified: f.usize("noop_certified")?,
        }),
        "oracle_query" => Event::OracleQuery(OracleQuerySpan {
            kind: match f.str("kind")?.as_str() {
                "baseline" => QueryKind::Baseline,
                "intervention" => QueryKind::Intervention,
                other => return Err(format!("unknown query kind '{other}'")),
            },
            fingerprint: f.u64("fingerprint")?,
            score: f.f64("score")?,
            cached: f.bool("cached")?,
            speculative_hit: f.bool("speculative_hit")?,
            latency_ns: f.opt_u64("latency_ns")?,
        }),
        "sampled_query" => Event::SampledQuery(SampledQuerySpan {
            fingerprint: f.u64("fingerprint")?,
            estimate: f.f64("estimate")?,
            rows: f.u64("rows")?,
            total_rows: f.u64("total_rows")?,
            confidence: f.f64("confidence")?,
        }),
        "greedy_pick" => Event::GreedyPick {
            pvt: f.usize("pvt")?,
            before: f.f64("before")?,
            after: f.f64("after")?,
            kept: f.bool("kept")?,
        },
        "node_begin" => Event::BisectionNodeBegin(BisectionNodeSpan {
            node: f.u64("node")?,
            parent: f.opt_u64("parent")?,
            candidates: f.ids("candidates")?,
            covered: f.usize("covered")?,
        }),
        "speculation_plan" => Event::SpeculationPlan(SpeculationPlanSpan {
            node: f.u64("node")?,
            cap: f.usize("cap")?,
            depth: f.usize("depth")?,
            budget: f.opt_u64("budget")?.map(|b| b as usize),
            mean_query_ns: f.opt_u64("mean_query_ns")?,
            frames: f.usize("frames")?,
        }),
        "partition" => Event::BisectionPartition {
            node: f.u64("node")?,
            left: f.ids("left")?,
            right: f.ids("right")?,
            cut_edges: f.opt_u64("cut_edges")?.map(|c| c as usize),
        },
        "probe" => Event::BisectionProbe {
            node: f.u64("node")?,
            half: f.u64("half")? as u8,
            ids: f.ids("ids")?,
            before: f.f64("before")?,
            after: f.f64("after")?,
            kept: f.bool("kept")?,
            speculative_hit: f.bool("speculative_hit")?,
        },
        "node_end" => Event::BisectionNodeEnd {
            node: f.u64("node")?,
            selected: f.ids("selected")?,
        },
        "minimality_drop" => Event::MinimalityDrop {
            pvt: f.usize("pvt")?,
        },
        "sketch_merge" => Event::SketchMerge(SketchMergeSpan {
            columns: f.usize("columns")?,
            batch_rows: f.u64("batch_rows")?,
            total_rows: f.u64("total_rows")?,
            batches: f.u64("batches")?,
        }),
        "drift_score" => Event::DriftScore(DriftScoreSpan {
            profile: f.usize("profile")?,
            score: f.f64("score")?,
            threshold: f.f64("threshold")?,
            drifted: f.bool("drifted")?,
            screened: f.bool("screened")?,
        }),
        "monitor_trigger" => Event::MonitorTrigger(MonitorTriggerSpan {
            drifted: f.ids("drifted")?,
            candidates: f.usize("candidates")?,
            window_rows: f.u64("window_rows")?,
        }),
        "diagnosis_end" => Event::DiagnosisEnd {
            resolved: f.bool("resolved")?,
            interventions: f.usize("interventions")?,
            final_score: f.f64("final_score")?,
        },
        other => return Err(format!("unknown event '{other}'")),
    };
    Ok(TraceRecord { seq, at_ns, event })
}

/// Parse a JSONL trace stream back into records. Empty lines are
/// skipped; any malformed or wrong-version line fails the whole
/// parse with its 1-based line number.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(decode_record(line).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                seq: 0,
                at_ns: 17,
                event: Event::DiagnosisBegin(DiagnosisSpan {
                    algorithm: "group_test".into(),
                    system: "weird \"name\"\twith\nescapes".into(),
                    seed: 0xDA7A,
                    threshold: 0.2,
                    num_threads: 8,
                    speculation_depth: 2,
                }),
            },
            TraceRecord {
                seq: 1,
                at_ns: 215,
                event: Event::OracleQuery(OracleQuerySpan {
                    kind: QueryKind::Baseline,
                    // Above 2^53: would corrupt if routed through f64.
                    fingerprint: 0xFEDC_BA98_7654_3210,
                    score: 0.1 + 0.2, // a non-shortest-decimal f64
                    cached: false,
                    speculative_hit: false,
                    latency_ns: Some(123_456_789),
                }),
            },
            TraceRecord {
                seq: 2,
                at_ns: 300,
                event: Event::BisectionNodeBegin(BisectionNodeSpan {
                    node: 0,
                    parent: None,
                    candidates: vec![0, 3, 7],
                    covered: 1,
                }),
            },
            TraceRecord {
                seq: 3,
                at_ns: 400,
                event: Event::BisectionPartition {
                    node: 0,
                    left: vec![0],
                    right: vec![3, 7],
                    cut_edges: Some(2),
                },
            },
            TraceRecord {
                seq: 4,
                at_ns: 450,
                event: Event::BisectionProbe {
                    node: 0,
                    half: 2,
                    ids: vec![3, 7],
                    before: 0.75,
                    after: 0.1,
                    kept: true,
                    speculative_hit: true,
                },
            },
            TraceRecord {
                seq: 5,
                at_ns: 500,
                event: Event::BisectionNodeEnd {
                    node: 0,
                    selected: vec![3],
                },
            },
            TraceRecord {
                seq: 6,
                at_ns: 600,
                event: Event::DiagnosisEnd {
                    resolved: true,
                    interventions: 9,
                    final_score: 0.0,
                },
            },
            TraceRecord {
                seq: 7,
                at_ns: 650,
                event: Event::SpeculationPlan(SpeculationPlanSpan {
                    node: 0,
                    cap: 4,
                    depth: 2,
                    budget: Some(64),
                    mean_query_ns: Some(12_000_000),
                    frames: 14,
                }),
            },
            TraceRecord {
                seq: 8,
                at_ns: 660,
                event: Event::OracleQuery(OracleQuerySpan {
                    kind: QueryKind::Intervention,
                    fingerprint: 42,
                    score: 0.0,
                    cached: true,
                    speculative_hit: true,
                    // A cache hit: no latency sample at all.
                    latency_ns: None,
                }),
            },
            TraceRecord {
                seq: 9,
                at_ns: 700,
                event: Event::LintFact(LintFactSpan {
                    subsumption_classes: 2,
                    subsumed: 3,
                    unreachable: 1,
                    commuting_pairs: 12,
                    noop_certified: 1,
                }),
            },
            TraceRecord {
                seq: 10,
                at_ns: 710,
                event: Event::SketchMerge(SketchMergeSpan {
                    columns: 6,
                    batch_rows: 50,
                    total_rows: 350,
                    batches: 7,
                }),
            },
            TraceRecord {
                seq: 11,
                at_ns: 720,
                event: Event::DriftScore(DriftScoreSpan {
                    profile: 4,
                    score: 0.1 + 0.2, // a non-shortest-decimal f64
                    threshold: 0.1,
                    drifted: true,
                    screened: false,
                }),
            },
            TraceRecord {
                seq: 12,
                at_ns: 730,
                event: Event::MonitorTrigger(MonitorTriggerSpan {
                    drifted: vec![2, 4],
                    candidates: 3,
                    window_rows: 100,
                }),
            },
        ]
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let records = sample_records();
        let text = to_jsonl(&records);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(records, back);
        // Scores round-trip exactly, not just approximately.
        let (Event::OracleQuery(a), Event::OracleQuery(b)) = (&records[1].event, &back[1].event)
        else {
            panic!("wrong event")
        };
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn every_line_carries_the_schema_version() {
        let prefix = format!("{{\"v\":{SCHEMA_VERSION},");
        let text = to_jsonl(&sample_records());
        for line in text.lines() {
            assert!(line.starts_with(&prefix), "{line}");
        }
    }

    #[test]
    fn rejects_other_schema_versions_with_line_numbers() {
        let good = record_to_json(&sample_records()[0]);
        let forward = SCHEMA_VERSION + 1;
        let bad = good.replacen(
            &format!("\"v\":{SCHEMA_VERSION}"),
            &format!("\"v\":{forward}"),
            1,
        );
        assert_ne!(good, bad, "version substitution must have happened");
        let err = parse_jsonl(&format!("{good}\n{bad}\n")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            err.message.contains(&format!("schema version {forward}")),
            "{err}"
        );
    }

    #[test]
    fn rejects_garbage_and_missing_fields() {
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl(&format!("{{\"v\":{SCHEMA_VERSION}}}\n")).is_err());
        let err = parse_jsonl(&format!(
            "{{\"v\":{SCHEMA_VERSION},\"seq\":0,\"at_ns\":0,\"ev\":\"martian\"}}\n"
        ))
        .unwrap_err();
        assert!(err.message.contains("unknown event"), "{err}");
    }

    #[test]
    fn cache_hits_omit_latency_on_the_wire() {
        let records = sample_records();
        let hit = record_to_json(&records[8]);
        assert!(!hit.contains("latency_ns"), "{hit}");
        let miss = record_to_json(&records[1]);
        assert!(miss.contains("\"latency_ns\":123456789"), "{miss}");
    }

    #[test]
    fn skips_blank_lines() {
        let records = sample_records();
        let text = format!("\n{}\n\n", to_jsonl(&records));
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }
}
