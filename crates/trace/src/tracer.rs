//! The emitting handle the diagnosis algorithms carry.

use crate::event::{Event, TraceRecord};
use crate::sink::{Collector, JsonlSink, TraceSink};
use crate::TraceConfig;
use std::cell::RefCell;
use std::io;
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

enum ActiveSink {
    Collect(Collector),
    Custom(Box<dyn TraceSink>),
}

struct TracerCore {
    sink: ActiveSink,
    seq: u64,
    next_node: u64,
    start: Instant,
}

/// A cheap, cloneable handle the diagnosis code threads through its
/// call graph. In the default off state it holds nothing: `emit`
/// returns before the event closure runs, `now_ns`/`next_node_id`
/// return 0, and no clock is read — the zero-cost-when-off
/// guarantee.
///
/// A tracer is single-threaded by construction (`Rc`): events are
/// only ever emitted from the main diagnosis thread, in the serial
/// deterministic order, which is what makes a trace bit-identical
/// across thread counts. Worker threads report through
/// [`crate::MetricsShard`]s instead.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TracerCore>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer (same as `Tracer::default()`).
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer collecting records in memory; retrieve them with
    /// [`Tracer::finish`].
    pub fn collect() -> Tracer {
        Tracer::with_active(ActiveSink::Collect(Collector::new()))
    }

    /// A tracer feeding a custom sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer::with_active(ActiveSink::Custom(sink))
    }

    /// A tracer streaming JSONL to `path` (created/truncated now, so
    /// IO problems surface before the run starts).
    pub fn jsonl(path: &Path) -> io::Result<Tracer> {
        Ok(Tracer::with_sink(Box::new(JsonlSink::create(path)?)))
    }

    /// Build the tracer a [`TraceConfig`] asks for.
    pub fn from_config(config: &TraceConfig) -> io::Result<Tracer> {
        match config {
            TraceConfig::Off => Ok(Tracer::off()),
            TraceConfig::Collect => Ok(Tracer::collect()),
            TraceConfig::Jsonl(path) => Tracer::jsonl(path),
        }
    }

    fn with_active(sink: ActiveSink) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TracerCore {
                sink,
                seq: 0,
                next_node: 0,
                start: Instant::now(),
            }))),
        }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. The closure only runs when a sink is attached,
    /// so call sites can gather event fields (clone id vectors, read
    /// query stats) without cost in the off state.
    pub fn emit(&self, event: impl FnOnce() -> Event) {
        let Some(inner) = &self.inner else { return };
        // Run the closure before borrowing the core, so event
        // builders may themselves call `now_ns`/`next_node_id`.
        let event = event();
        let mut core = inner.borrow_mut();
        let record = TraceRecord {
            seq: core.seq,
            at_ns: core.start.elapsed().as_nanos() as u64,
            event,
        };
        core.seq += 1;
        match &mut core.sink {
            ActiveSink::Collect(c) => c.record(&record),
            ActiveSink::Custom(s) => s.record(&record),
        }
    }

    /// Allocate the next bisection-node id (visit order). Returns 0
    /// when off — node ids only appear inside emitted events, which
    /// don't exist in the off state.
    pub fn next_node_id(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let mut core = inner.borrow_mut();
        let id = core.next_node;
        core.next_node += 1;
        id
    }

    /// Nanoseconds since the tracer was created (0 when off). Used
    /// for span elapsed times that live inside event payloads.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.borrow().start.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Finish the run: flush the sink and, for a collecting tracer,
    /// take and return the records (subsequent calls return empty).
    /// Takes `&self` because clones of the handle may still be held
    /// by context structs up the stack.
    pub fn finish(&self) -> Vec<TraceRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut core = inner.borrow_mut();
        match &mut core.sink {
            ActiveSink::Collect(c) => std::mem::take(c).into_records(),
            ActiveSink::Custom(s) => {
                s.flush();
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn off_tracer_never_runs_the_closure() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.emit(|| panic!("closure must not run when off"));
        assert_eq!(t.next_node_id(), 0);
        assert_eq!(t.now_ns(), 0);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn collect_assigns_dense_seq_and_monotonic_time() {
        let t = Tracer::collect();
        t.emit(|| Event::MinimalityDrop { pvt: 1 });
        t.emit(|| Event::MinimalityDrop { pvt: 2 });
        let records = t.finish();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert!(records[0].at_ns <= records[1].at_ns);
        // Finish drained the collector.
        assert!(t.finish().is_empty());
    }

    #[test]
    fn clones_share_the_stream() {
        let t = Tracer::collect();
        let t2 = t.clone();
        t.emit(|| Event::MinimalityDrop { pvt: 1 });
        t2.emit(|| Event::MinimalityDrop { pvt: 2 });
        assert_eq!(t.next_node_id(), 0);
        assert_eq!(t2.next_node_id(), 1);
        let records = t.finish();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].seq, 1);
    }

    #[test]
    fn custom_sink_receives_records() {
        use crate::sink::JsonlSink;
        let t = Tracer::with_sink(Box::new(JsonlSink::new(Vec::new())));
        assert!(t.enabled());
        t.emit(|| Event::MinimalityDrop { pvt: 7 });
        // Custom sinks keep their records; finish just flushes.
        assert!(t.finish().is_empty());
    }
}
