//! # dp-trace — observability for the DataPrism diagnosis pipeline
//!
//! A lightweight, std-only tracing and metrics layer the diagnosis
//! algorithms thread through discovery, lint, greedy, group testing,
//! the speculation pool, and the oracle. Three pieces:
//!
//! 1. **Spans and events** ([`event`]): a run emits a stream of
//!    [`TraceRecord`]s — a `DiagnosisSpan` bracketing the run,
//!    `DiscoverySpan`/`OracleQuerySpan` events, and
//!    `BisectionNodeSpan` begin/end pairs mirroring the group-testing
//!    recursion — through a [`TraceSink`]. Three sinks are built in:
//!    [`NullSink`] (the default; the emitting side short-circuits to
//!    a no-op before any event is even constructed), the in-memory
//!    [`Collector`], and the buffered [`JsonlSink`] writing one JSON
//!    object per line under the stable, versioned schema
//!    ([`SCHEMA_VERSION`], [`json`]).
//! 2. **Metrics** ([`metrics`]): monotonic counters and fixed-bucket
//!    latency histograms, always on. Worker threads record into
//!    per-worker [`MetricsShard`]s (atomics, no locks on the query
//!    path) that the runtime merges into one [`RunMetrics`] at
//!    settle.
//! 3. **Search-tree reconstruction** ([`tree`]): [`SearchTree`]
//!    folds the event stream back into the group-testing recursion
//!    tree — per node the candidate set, partition, oracle verdicts,
//!    speculative-hit flags, and wall time — rendered as indented
//!    text or DOT.
//!
//! The crate deliberately has **no dependencies** (not even on the
//! dataframe): events carry ids, fingerprints, and scores, never
//! data, so attaching a sink can neither slow the oracle down
//! meaningfully nor perturb the diagnosis. Parity is asserted by
//! `tests/trace_parity.rs` in the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod replay;
pub mod sink;
pub mod tracer;
pub mod tree;

pub use event::{
    BisectionNodeSpan, DiagnosisSpan, DiscoverySpan, DriftScoreSpan, Event, LintFactSpan, LintSpan,
    MonitorTriggerSpan, OracleQuerySpan, QueryKind, SampledQuerySpan, SketchMergeSpan,
    SpeculationPlanSpan, TraceRecord, SCHEMA_VERSION,
};
pub use json::{json_escape, parse_jsonl, to_jsonl, JsonValue, ParseError};
pub use metrics::{LatencyHistogram, MetricsShard, QueryStat, RunMetrics, LATENCY_BOUNDS_NS};
pub use replay::{replay_oracle_queries, replay_records, Replay};
pub use sink::{Collector, JsonlSink, NullSink, TraceSink};
pub use tracer::Tracer;
pub use tree::{PartitionInfo, ProbeInfo, SearchTree, TreeNode};

/// Which sink — if any — a diagnosis run attaches.
///
/// Carried by `PrismConfig::trace` in the core crate. The default is
/// [`TraceConfig::Off`]: no sink, no events, and the emitting side
/// compiles down to a branch on an `Option` that is `None`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TraceConfig {
    /// No tracing (the default). Metrics are still collected — they
    /// are plain counters the runtime maintains anyway.
    #[default]
    Off,
    /// Collect events in memory; they surface as
    /// `Explanation::trace_records`.
    Collect,
    /// Stream events to a JSONL file (one JSON object per line,
    /// schema [`SCHEMA_VERSION`]). The file is created eagerly when
    /// the run starts; IO errors surface before any oracle query.
    Jsonl(std::path::PathBuf),
}
