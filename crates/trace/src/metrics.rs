//! Monotonic counters and fixed-bucket latency histograms.
//!
//! Metrics are **always on** — unlike event tracing they are plain
//! integer bumps, too cheap to gate. The main thread owns a
//! [`RunMetrics`] directly; worker threads (the `ParOracle` scoped
//! workers and the detached speculation pool) each own a
//! [`MetricsShard`] of relaxed atomics so the query path never takes
//! a lock, and the runtime merges the shards in at settle.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Upper bounds (exclusive) of the latency histogram buckets, in
/// nanoseconds: 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s. An eighth
/// bucket catches everything ≥ 10s.
pub const LATENCY_BOUNDS_NS: [u64; 7] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

const NUM_BUCKETS: usize = LATENCY_BOUNDS_NS.len() + 1;

fn bucket_of(ns: u64) -> usize {
    LATENCY_BOUNDS_NS
        .iter()
        .position(|&bound| ns < bound)
        .unwrap_or(LATENCY_BOUNDS_NS.len())
}

/// A fixed-bucket latency histogram (bounds in
/// [`LATENCY_BOUNDS_NS`]) plus count/sum/max, mergeable across
/// workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Samples per bucket; the last bucket is the ≥ 10s overflow.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-worker metrics shard: relaxed atomics bumped on the worker's
/// own query path (no locks, no contention with the cache mutex) and
/// merged into [`RunMetrics`] by the main thread at settle.
#[derive(Debug, Default)]
pub struct MetricsShard {
    evaluated: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl MetricsShard {
    /// Record one completed speculative evaluation and its wall time.
    pub fn record(&self, ns: u64) {
        self.evaluated.fetch_add(1, Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    /// Evaluations recorded so far.
    pub fn evaluated(&self) -> u64 {
        self.evaluated.load(Relaxed)
    }

    /// Snapshot the shard's histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Relaxed);
        }
        LatencyHistogram {
            buckets,
            count: self.count.load(Relaxed),
            sum_ns: self.sum_ns.load(Relaxed),
            max_ns: self.max_ns.load(Relaxed),
        }
    }
}

/// The most recent charged query, kept by the runtime so the caller
/// that triggered it can emit an [`crate::OracleQuerySpan`] without
/// re-deriving cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStat {
    /// Content fingerprint of the queried dataset.
    pub fingerprint: u64,
    /// Whether the fingerprint cache served it.
    pub cached: bool,
    /// Whether the serving cache entry came from a speculative
    /// worker.
    pub speculative_hit: bool,
    /// Wall time of the system evaluation. `None` for cache hits:
    /// no evaluation happened, so there is no latency sample — hit
    /// queries must never be averaged into query cost (the adaptive
    /// speculation controller reads that mean).
    pub latency_ns: Option<u64>,
}

/// All counters and histograms of one diagnosis run, merged across
/// workers. Surfaced as `Explanation::metrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Baseline queries answered (never charged).
    pub baseline_queries: u64,
    /// Charged intervention queries (= `CacheStats::interventions`).
    pub charged_queries: u64,
    /// Charged queries served from the fingerprint cache.
    pub cache_hits: u64,
    /// Charged queries that evaluated the system.
    pub cache_misses: u64,
    /// Charged queries served by cache entries injected **before the
    /// run started** — a cross-run warm start (trace replay, snapshot
    /// load, or a server-resident cache). Always ≤ `cache_hits`; zero
    /// on cold runs.
    pub warm_hits: u64,
    /// Speculative jobs issued (sync probes + detached pool jobs).
    pub speculative_issued: u64,
    /// Speculative evaluations completed by workers.
    pub speculative_evaluated: u64,
    /// Cache entries written by speculation and later consumed by a
    /// real query.
    pub speculative_used: u64,
    /// Speculative evaluations never consumed (waste; counted at
    /// settle).
    pub speculative_wasted: u64,
    /// Speculative jobs shed by pool backpressure before any worker
    /// picked them up (oldest queued jobs dropped when the in-flight
    /// budget was exceeded). Always ≤ `speculative_issued`.
    pub speculative_shed: u64,
    /// Speculative jobs still queued when the pool settled (the
    /// search terminated before any worker could start them). Unlike
    /// `speculative_wasted` these never cost an evaluation.
    pub speculative_discarded: u64,
    /// High-water mark of in-flight speculative frames (queued +
    /// executing) over the run. With a configured budget this never
    /// exceeds budget + worker count.
    pub peak_inflight: u64,
    /// Attribute pairs the discovery independence pass considered.
    pub prefilter_pairs: u64,
    /// Pair tests the sketch pre-filter screened out.
    pub prefilter_screened: u64,
    /// Exact χ²/Pearson tests actually run.
    pub prefilter_exact: u64,
    /// Error-level lint findings.
    pub lint_errors: u64,
    /// Warn-level lint findings.
    pub lint_warnings: u64,
    /// Info-level lint findings.
    pub lint_infos: u64,
    /// Candidates the lint pass pruned before ranking.
    pub lint_pruned: u64,
    /// Candidates dropped because an L6 equivalence-class sibling
    /// already carries their oracle charge (`Lint::Prune` only;
    /// disjoint from `lint_pruned`).
    pub lint_subsumed: u64,
    /// Candidates with an L7 τ-unreachability certificate.
    pub lint_unreachable: u64,
    /// Charged queries the sampled oracle settled on a stratified row
    /// sample (confidence-bounded FAIL decisions that never touched
    /// the full dataset). Zero with `oracle_sampling` off.
    pub sampled_queries: u64,
    /// Sampling-eligible queries whose estimate sat inside the
    /// confidence band of τ (or confidently passed) and therefore
    /// escalated to a full-dataset evaluation.
    pub escalations: u64,
    /// Rows actually scored by settled sampled queries — the work the
    /// early exits paid instead of `sampled_queries × |D|`.
    pub rows_touched: u64,
    /// Latency of charged cache-miss evaluations (main thread).
    pub query_latency: LatencyHistogram,
    /// Latency of speculative evaluations (worker shards).
    pub speculative_latency: LatencyHistogram,
    /// Row batches folded into a watcher's live sketches (continuous
    /// monitoring; zero in batch diagnosis runs).
    pub batches_ingested: u64,
    /// Rows across all ingested batches.
    pub rows_ingested: u64,
    /// Drift checks run against the passing-run profile set.
    pub drift_checks: u64,
    /// Drift checks whose score crossed τ_drift (each escalates to a
    /// targeted re-diagnosis).
    pub drift_triggers: u64,
    /// Latency of batch ingests (sketch builds + merges).
    pub ingest_latency: LatencyHistogram,
}

impl RunMetrics {
    /// Fold one worker shard in (called at settle, main thread).
    pub fn merge_worker(&mut self, shard: &MetricsShard) {
        self.speculative_evaluated += shard.evaluated();
        self.speculative_latency.merge(&shard.snapshot());
    }

    /// One-line counts-only summary for the markdown report.
    ///
    /// Deliberately excludes latencies: the report is golden-tested
    /// byte-for-byte and must be identical across serial/parallel
    /// runs of the same scenario.
    pub fn summary_line(&self) -> String {
        format!(
            "queries {} (hits {}, misses {}), baselines {}, \
             speculation {}/{}/{} issued/used/wasted, \
             prefilter {}/{} screened/exact, lint {}/{} pruned/subsumed, \
             sampling {}/{} settled/escalated",
            self.charged_queries,
            self.cache_hits,
            self.cache_misses,
            self.baseline_queries,
            self.speculative_issued,
            self.speculative_used,
            self.speculative_wasted,
            self.prefilter_screened,
            self.prefilter_exact,
            self.lint_pruned,
            self.lint_subsumed,
            self.sampled_queries,
            self.escalations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::default();
        h.record(5_000); // bucket 0 (< 10µs)
        h.record(50_000); // bucket 1
        h.record(2_000_000); // bucket 3 (< 10ms)
        h.record(20_000_000_000); // overflow bucket
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(h.max_ns, 20_000_000_000);
        assert_eq!(
            h.mean_ns(),
            (5_000 + 50_000 + 2_000_000 + 20_000_000_000) / 4
        );
    }

    #[test]
    fn histogram_merge_is_additive() {
        let mut a = LatencyHistogram::default();
        a.record(1_000);
        let mut b = LatencyHistogram::default();
        b.record(500_000);
        b.record(3_000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.buckets[0], 2);
        assert_eq!(a.buckets[2], 1);
        assert_eq!(a.max_ns, 500_000);
    }

    #[test]
    fn shard_snapshot_matches_records() {
        let shard = MetricsShard::default();
        shard.record(7_000);
        shard.record(700_000_000);
        assert_eq!(shard.evaluated(), 2);
        let snap = shard.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_ns, 700_000_000);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[5], 1);
    }

    #[test]
    fn merge_worker_accumulates() {
        let shard = MetricsShard::default();
        shard.record(1_000);
        shard.record(2_000);
        let mut m = RunMetrics::default();
        m.merge_worker(&shard);
        assert_eq!(m.speculative_evaluated, 2);
        assert_eq!(m.speculative_latency.count, 2);
    }

    #[test]
    fn summary_line_has_no_latencies() {
        let mut m = RunMetrics {
            charged_queries: 9,
            cache_hits: 3,
            cache_misses: 6,
            ..RunMetrics::default()
        };
        m.query_latency.record(123_456);
        let line = m.summary_line();
        assert!(line.contains("queries 9 (hits 3, misses 6)"), "{line}");
        assert!(
            !line.contains("123"),
            "latency leaked into report line: {line}"
        );
    }
}
