//! Descriptive statistics over `f64` slices.
//!
//! All functions ignore nothing: callers are expected to pass the
//! non-NULL values only (e.g. via `Column::f64_values`). Empty input
//! yields `None` so profile discovery can skip all-NULL attributes.

/// Arithmetic mean. `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divides by `n`). `None` on empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n - 1`). `None` when `n < 2`.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Minimum. `None` on empty input.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum. `None` on empty input.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Quantile by linear interpolation of the sorted order statistics
/// (type-7, the numpy default). `q` is clamped to `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (`quantile(0.5)`).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Median absolute deviation (raw, not scaled by 1.4826).
pub fn mad(xs: &[f64]) -> Option<f64> {
    let med = median(xs)?;
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// Most frequent value among the inputs (ties broken by smaller
/// value). Uses exact bit patterns, so intended for discrete-valued
/// float data (label columns, ints widened to float).
pub fn mode(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut counts: std::collections::BTreeMap<u64, (usize, f64)> = Default::default();
    for &x in xs {
        let e = counts.entry(x.to_bits()).or_insert((0, x));
        e.0 += 1;
    }
    counts
        .into_values()
        .max_by(|a, b| a.0.cmp(&b.0).then(b.1.total_cmp(&a.1)))
        .map(|(_, v)| v)
}

/// Skewness (Fisher-Pearson, population). `None` when `n < 2` or the
/// data is constant.
pub fn skewness(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    if s == 0.0 {
        return None;
    }
    let n = xs.len() as f64;
    Some(xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < EPS);
        assert!((variance(&xs).unwrap() - 4.0).abs() < EPS);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < EPS);
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(mean(&[]).is_none());
        assert!(variance(&[]).is_none());
        assert!(median(&[]).is_none());
        assert!(mode(&[]).is_none());
        assert!(sample_variance(&[1.0]).is_none());
        assert!(min(&[]).is_none() && max(&[]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs).unwrap() - 2.5).abs() < EPS);
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < EPS);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < EPS);
    }

    #[test]
    fn paper_example_age_stats() {
        // People_fail ages from Fig 2: mean 34.5, std ~11.78, and t3's
        // age 60 exceeds mean + 1.5σ = 52.17.
        let ages = [45.0, 40.0, 60.0, 22.0, 41.0, 32.0, 25.0, 35.0, 25.0, 20.0];
        let m = mean(&ages).unwrap();
        let s = std_dev(&ages).unwrap();
        assert!((m - 34.5).abs() < EPS);
        assert!((s - 11.78).abs() < 0.01);
        assert!(60.0 > m + 1.5 * s);
        assert!(45.0 < m + 1.5 * s);
    }

    #[test]
    fn mad_is_robust() {
        let xs = [1.0, 2.0, 3.0, 4.0, 1000.0];
        assert!((mad(&xs).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn mode_breaks_ties_low() {
        assert_eq!(mode(&[1.0, 2.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(mode(&[3.0, 1.0]).unwrap(), 1.0);
    }

    #[test]
    fn skewness_sign() {
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.0);
        let left = [-10.0, -2.0, -1.0, -1.0, -1.0];
        assert!(skewness(&left).unwrap() < 0.0);
        assert!(skewness(&[5.0, 5.0, 5.0]).is_none(), "constant data");
    }
}
