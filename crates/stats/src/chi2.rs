//! Pearson χ² test of independence over contingency tables.
//!
//! Fig 1 row 7 parameterizes the categorical `Indep` profile with the
//! χ² statistic between `D.A_j` and `D.A_k`, requiring `p ≤ 0.05`.

use crate::distributions::chi2_sf;
use dp_frame::groupby::ContingencyTable;

/// Result of a χ² independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Upper-tail p-value with `(r-1)(c-1)` degrees of freedom.
    pub p_value: f64,
    /// Degrees of freedom.
    pub df: usize,
    /// Cramér's V effect size in `[0, 1]` (scale-free version of the
    /// statistic; useful for comparing tables of different sizes).
    pub cramers_v: f64,
}

impl Chi2Result {
    /// Whether the dependence is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// The independent (degenerate) test result: zero statistic, p = 1.
const INDEPENDENT: Chi2Result = Chi2Result {
    statistic: 0.0,
    p_value: 1.0,
    df: 0,
    cramers_v: 0.0,
};

/// Pearson χ² statistic for a contingency table.
///
/// Degenerate tables (any dimension < 2, or zero total) return a zero
/// statistic with p-value 1 — attributes with a single observed value
/// cannot exhibit dependence.
pub fn chi_squared(table: &ContingencyTable) -> Chi2Result {
    chi_squared_counts(&table.counts)
}

/// [`chi_squared`] over a raw count matrix (rows × columns).
///
/// Degrees of freedom are computed from the *effective* dimensions —
/// rows and columns with at least one observation. Tables whose
/// occupancy collapses to a single non-empty row or column carry no
/// measurable dependence and return the independent result; the
/// previous `(r-1)(c-1)` over raw dimensions produced a misleadingly
/// small p-value for such tables. For tables without empty rows or
/// columns (every [`ContingencyTable::from_frame`] table) the result
/// is unchanged. Empty cells never contribute to the statistic, so
/// padding a table with empty rows/columns is a no-op — the
/// pre-filter sketches rely on this to evaluate fixed-width
/// co-occurrence tables without compaction.
pub fn chi_squared_counts(counts: &[Vec<u64>]) -> Chi2Result {
    let r = counts.len();
    let c = counts.iter().map(|row| row.len()).max().unwrap_or(0);
    let row_totals: Vec<u64> = counts.iter().map(|row| row.iter().sum()).collect();
    let mut col_totals = vec![0u64; c];
    for row in counts {
        for (j, &v) in row.iter().enumerate() {
            col_totals[j] += v;
        }
    }
    let n = row_totals.iter().sum::<u64>() as f64;
    let eff_r = row_totals.iter().filter(|&&t| t > 0).count();
    let eff_c = col_totals.iter().filter(|&&t| t > 0).count();
    if eff_r < 2 || eff_c < 2 || n == 0.0 {
        return INDEPENDENT;
    }
    let mut stat = 0.0;
    for i in 0..r {
        for j in 0..counts[i].len() {
            let expected = row_totals[i] as f64 * col_totals[j] as f64 / n;
            if expected > 0.0 {
                let diff = counts[i][j] as f64 - expected;
                stat += diff * diff / expected;
            }
        }
    }
    let df = (eff_r - 1) * (eff_c - 1);
    let p_value = chi2_sf(stat, df as f64);
    let k = (eff_r.min(eff_c) - 1) as f64;
    let cramers_v = (stat / (n * k)).sqrt().min(1.0);
    Chi2Result {
        statistic: stat,
        p_value,
        df,
        cramers_v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::column::Column;
    use dp_frame::dtype::DType;
    use dp_frame::frame::DataFrame;

    fn table(a: &[&str], b: &[&str]) -> ContingencyTable {
        let df = DataFrame::from_columns(vec![
            Column::from_strings(
                "a",
                DType::Categorical,
                a.iter().map(|s| Some(s.to_string())).collect(),
            ),
            Column::from_strings(
                "b",
                DType::Categorical,
                b.iter().map(|s| Some(s.to_string())).collect(),
            ),
        ])
        .unwrap();
        ContingencyTable::from_frame(&df, "a", "b").unwrap()
    }

    #[test]
    fn independent_table_has_zero_statistic() {
        // Perfectly balanced 2x2: counts all equal.
        let a = ["x", "x", "y", "y"];
        let b = ["p", "q", "p", "q"];
        let res = chi_squared(&table(&a, &b));
        assert!(res.statistic.abs() < 1e-12);
        assert!((res.p_value - 1.0).abs() < 1e-9);
        assert_eq!(res.df, 1);
    }

    #[test]
    fn perfectly_dependent_table() {
        // a determines b exactly; χ² = n for a 2x2, Cramér's V = 1.
        let a = ["x", "x", "x", "y", "y", "y"];
        let b = ["p", "p", "p", "q", "q", "q"];
        let res = chi_squared(&table(&a, &b));
        assert!((res.statistic - 6.0).abs() < 1e-9);
        assert!((res.cramers_v - 1.0).abs() < 1e-9);
        assert!(res.p_value < 0.05);
        assert!(res.significant(0.05));
    }

    #[test]
    fn reference_value_2x2() {
        // Table [[10, 20], [30, 5]], n = 65. Hand computation:
        // expected = [[18.4615, 11.5385], [21.5385, 13.4615]],
        // chi2 = 8.4615^2 * (1/18.4615 + 1/11.5385 + 1/21.5385
        //        + 1/13.4615) ≈ 18.7266, p ≈ 1.5e-5.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (count, (va, vb)) in [
            (10, ("x", "p")),
            (20, ("x", "q")),
            (30, ("y", "p")),
            (5, ("y", "q")),
        ] {
            for _ in 0..count {
                a.push(va);
                b.push(vb);
            }
        }
        let res = chi_squared(&table(&a, &b));
        assert!((res.statistic - 18.7266).abs() < 1e-3, "{}", res.statistic);
        assert!(res.p_value < 1e-4 && res.p_value > 1e-6, "{}", res.p_value);
    }

    #[test]
    fn collapsed_occupancy_is_independent() {
        // Regression: a manually built table whose observations all
        // land in one row used to report df = 1 and a real statistic
        // even though a single non-empty row cannot show dependence.
        let res = chi_squared_counts(&[vec![30, 10], vec![0, 0]]);
        assert_eq!(res.statistic, 0.0);
        assert_eq!(res.p_value, 1.0);
        assert_eq!(res.df, 0);
        assert!(!res.significant(0.05));
        // Same for a single non-empty column.
        let res = chi_squared_counts(&[vec![30, 0], vec![10, 0]]);
        assert_eq!(res.df, 0);
        assert_eq!(res.p_value, 1.0);
    }

    #[test]
    fn empty_rows_and_columns_are_padding() {
        // The pre-filter sketches evaluate fixed-width tables where
        // unused buckets stay empty; those must not change the result.
        let dense = chi_squared_counts(&[vec![10, 20], vec![30, 5]]);
        let padded = chi_squared_counts(&[vec![10, 0, 20, 0], vec![0, 0, 0, 0], vec![30, 0, 5, 0]]);
        assert_eq!(dense.statistic.to_bits(), padded.statistic.to_bits());
        assert_eq!(dense.p_value.to_bits(), padded.p_value.to_bits());
        assert_eq!(dense.df, padded.df);
        assert_eq!(dense.cramers_v.to_bits(), padded.cramers_v.to_bits());
    }

    #[test]
    fn counts_match_table_path() {
        let a = ["x", "x", "x", "y", "y", "y"];
        let b = ["p", "p", "q", "q", "q", "p"];
        let t = table(&a, &b);
        let via_table = chi_squared(&t);
        let via_counts = chi_squared_counts(&t.counts);
        assert_eq!(via_table, via_counts);
    }

    #[test]
    fn degenerate_tables() {
        // Single-valued attribute: no dependence measurable.
        let a = ["x", "x", "x"];
        let b = ["p", "q", "p"];
        let res = chi_squared(&table(&a, &b));
        assert_eq!(res.statistic, 0.0);
        assert_eq!(res.p_value, 1.0);
        assert!(!res.significant(0.05));
    }
}
