//! Streaming pre-filter sketches for pairwise dependence discovery.
//!
//! Profile discovery's independence pass (Fig 1 rows 7–8) is O(m²)
//! in attributes, and each exact test re-extracts, re-codes and
//! re-allocates both columns. This module provides per-column
//! one-pass summaries that make a *conservative* pairwise dependence
//! estimate cheap, so the exact test only runs on pairs the sketch
//! cannot rule out:
//!
//! - [`NumericSketch`] — one-pass (Welford) moments plus a centered,
//!   zero-filled value array and a presence bitmap. For a pair of
//!   null-free columns the Pearson estimate is a single dot product;
//!   with missing values a bitmap-masked pass recovers the exact
//!   joint-pair statistics. Either way the estimate agrees with
//!   [`crate::correlation::pearson`] over the aligned non-null pairs
//!   up to floating-point noise. Average-rank summaries support a
//!   Spearman estimate the same way.
//! - [`CategoricalSketch`] — a per-row code array (the value's index
//!   in the column's sorted distinct order, hashed into a fixed
//!   bucket width when the domain is larger). For injectively coded
//!   pairs the χ² estimate is **bit-identical** to
//!   [`crate::chi2::chi_squared`] over the
//!   `ContingencyTable::from_frame` table: the joint-count pass uses
//!   the same pairwise deletion, the sorted code order reproduces the
//!   table's label order, and [`crate::chi2::chi_squared_counts`]
//!   ignores empty padding rows/columns.
//!
//! The `*_upper` functions inflate the estimate by a slack margin
//! before the significance check: a tiny floating-point floor when
//! the estimate is exact-equivalent, a caller-scaled term otherwise
//! (hashed categorical codes can only merge cells, which shrinks the
//! χ² statistic). A pair whose *inflated* estimate is still
//! insignificant would also fail the exact test, so discovery can
//! skip it.

use crate::chi2::{chi_squared_counts, Chi2Result};
use crate::correlation::{ranks, Correlation};
use crate::distributions::{chi2_sf, t_sf_two_sided};

/// Default bucket width of the categorical co-occurrence sketch.
/// Columns with at most this many distinct values are coded
/// injectively, making the sketched χ² bit-identical to the exact
/// test; wider domains fall back to hashed (lossy) codes.
pub const DEFAULT_BUCKETS: usize = 64;

/// Floating-point slack on an exact-equivalent correlation estimate:
/// the sketch accumulates the same sums in a different order/form, so
/// the coefficient can differ from the two-pass computation by a few
/// ulps — never by more than this.
const R_FP_MARGIN: f64 = 1e-6;

/// Distinct-value cap of [`ColumnSummary`]: a string column with more
/// distinct values than this reports no support set (the abstract
/// domain degrades to Top rather than carrying an unbounded set).
pub const SUPPORT_CAP: usize = 64;

/// Exact one-pass summary of a single column, the seeding input for
/// abstract interpretation (dp_lint's `AbsState`): total rows, null
/// count, the min/max hull of the finite numeric values, and the
/// distinct string support up to [`SUPPORT_CAP`].
///
/// Unlike the dependence sketches above, nothing here is estimated —
/// every field is exact over the column it summarizes, so an abstract
/// state seeded from it *contains* the concrete column by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Total rows (including nulls).
    pub rows: usize,
    /// NULL count.
    pub nulls: usize,
    /// Smallest finite non-null numeric value, when any.
    pub min: Option<f64>,
    /// Largest finite non-null numeric value, when any.
    pub max: Option<f64>,
    /// Whether any non-null numeric value was NaN or infinite — the
    /// min/max hull then does not bound the column and the interval
    /// abstraction must degrade to Top.
    pub non_finite: bool,
    /// Sorted distinct non-null string values, present only for
    /// string-typed columns with at most [`SUPPORT_CAP`] distinct
    /// values.
    pub support: Option<Vec<String>>,
}

impl ColumnSummary {
    /// Summarize one column exactly.
    pub fn build(col: &dp_frame::Column) -> Self {
        let rows = col.len();
        let nulls = col.null_count();
        let (mut min, mut max, mut non_finite) = (None, None, false);
        let mut support = None;
        let dtype = col.dtype();
        if dtype.is_numeric() {
            let mut seen = 0usize;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, v) in col.f64_values() {
                if v.is_finite() {
                    seen += 1;
                    lo = lo.min(v);
                    hi = hi.max(v);
                } else {
                    non_finite = true;
                }
            }
            if seen > 0 {
                min = Some(lo);
                max = Some(hi);
            }
        } else if dtype.is_string() {
            let counts = col.value_counts();
            if counts.len() <= SUPPORT_CAP {
                let mut values: Vec<String> = counts.into_iter().map(|(v, _)| v).collect();
                values.sort_unstable();
                support = Some(values);
            }
        }
        ColumnSummary {
            rows,
            nulls,
            min,
            max,
            non_finite,
            support,
        }
    }

    /// Exact null fraction (`0.0` on an empty column).
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }
}

/// One-pass summary of a numeric column: moments, centered values,
/// presence bitmap, and average-rank analogues for Spearman.
#[derive(Debug, Clone)]
pub struct NumericSketch {
    n_rows: usize,
    /// Finite, non-null observations.
    n: usize,
    /// Sum of squared deviations from the column mean.
    m2: f64,
    /// `value - mean` per row; `0.0` where absent.
    centered: Vec<f64>,
    /// Sum of squared deviations of the average ranks.
    rank_m2: f64,
    /// `rank - mean_rank` per row; `0.0` where absent.
    rank_centered: Vec<f64>,
    /// Presence bitmap (little-endian 64-bit words).
    present: Vec<u64>,
    /// No row is missing or non-finite.
    exact: bool,
}

impl NumericSketch {
    /// Build from the column's non-null `(row index, value)` list and
    /// the total row count. NaN and infinite observations are treated
    /// as absent, mirroring the listwise deletion of
    /// [`crate::correlation::pearson`].
    pub fn build(n_rows: usize, values: &[(usize, f64)]) -> Self {
        let mut n = 0usize;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for &(_, v) in values {
            if v.is_finite() {
                n += 1;
                let d = v - mean;
                mean += d / n as f64;
                m2 += d * (v - mean);
            }
        }
        let words = n_rows.div_ceil(64);
        let mut centered = vec![0.0; n_rows];
        let mut present = vec![0u64; words];
        let mut finite = Vec::with_capacity(n);
        let mut finite_rows = Vec::with_capacity(n);
        for &(i, v) in values {
            if v.is_finite() {
                centered[i] = v - mean;
                present[i / 64] |= 1u64 << (i % 64);
                finite.push(v);
                finite_rows.push(i);
            }
        }
        let rk = ranks(&finite);
        let rank_mean = (n as f64 + 1.0) / 2.0;
        let mut rank_centered = vec![0.0; n_rows];
        let mut rank_m2 = 0.0;
        for (&i, &r) in finite_rows.iter().zip(&rk) {
            let d = r - rank_mean;
            rank_centered[i] = d;
            rank_m2 += d * d;
        }
        NumericSketch {
            n_rows,
            n,
            m2,
            centered,
            rank_m2,
            rank_centered,
            present,
            exact: n == n_rows,
        }
    }

    /// Finite, non-null observations summarized.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Whether every row is present (pair estimates against another
    /// exact sketch are then exact up to floating-point noise).
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

/// The t-distribution p-value [`crate::correlation::pearson`] attaches
/// to a coefficient over `n` pairs.
fn p_of_r(r: f64, n: usize) -> f64 {
    if n < 3 {
        return 1.0;
    }
    if r.abs() >= 1.0 {
        return 0.0;
    }
    let df = (n - 2) as f64;
    let t = r * (df / (1.0 - r * r)).sqrt();
    t_sf_two_sided(t, df)
}

/// Correlation estimate from joint sums over `n` pairs of values that
/// were centered by per-column (not per-pair) means: recenter by the
/// joint means, then form the coefficient.
fn corr_from_sums(n: usize, sx: f64, sy: f64, sxx: f64, syy: f64, sxy: f64) -> Correlation {
    if n < 2 {
        return Correlation {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let nf = n as f64;
    let cxx = sxx - sx * sx / nf;
    let cyy = syy - sy * sy / nf;
    let cxy = sxy - sx * sy / nf;
    if cxx <= 0.0 || cyy <= 0.0 {
        return Correlation {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let r = (cxy / (cxx * cyy).sqrt()).clamp(-1.0, 1.0);
    Correlation {
        r,
        p_value: p_of_r(r, n),
        n,
    }
}

/// Pearson estimate for a column pair from their sketches.
///
/// Agrees with [`crate::correlation::pearson`] over the aligned
/// non-null finite pairs up to floating-point noise: when both
/// columns are fully present the joint co-moment is a dot product of
/// the centered arrays; otherwise a bitmap-masked pass recovers the
/// joint-pair sums exactly.
pub fn pearson_estimate(a: &NumericSketch, b: &NumericSketch) -> Correlation {
    assert_eq!(a.n_rows, b.n_rows, "sketches of the same frame required");
    if a.exact && b.exact {
        if a.m2 <= 0.0 || b.m2 <= 0.0 || a.n < 2 {
            return Correlation {
                r: 0.0,
                p_value: 1.0,
                n: a.n,
            };
        }
        let dot: f64 = a.centered.iter().zip(&b.centered).map(|(x, y)| x * y).sum();
        let r = (dot / (a.m2 * b.m2).sqrt()).clamp(-1.0, 1.0);
        return Correlation {
            r,
            p_value: p_of_r(r, a.n),
            n: a.n,
        };
    }
    masked_estimate(a, b, &a.centered, &b.centered)
}

/// Spearman estimate from the average-rank summaries. Exact-equivalent
/// to [`crate::correlation::spearman`] only when both columns are
/// fully present (with missing values, ranks over the joint subset
/// differ from masked full-column ranks), so it carries no exactness
/// guarantee — use it as a monotone-dependence screen.
pub fn spearman_estimate(a: &NumericSketch, b: &NumericSketch) -> Correlation {
    assert_eq!(a.n_rows, b.n_rows, "sketches of the same frame required");
    if a.exact && b.exact {
        if a.rank_m2 <= 0.0 || b.rank_m2 <= 0.0 || a.n < 2 {
            return Correlation {
                r: 0.0,
                p_value: 1.0,
                n: a.n,
            };
        }
        let dot: f64 = a
            .rank_centered
            .iter()
            .zip(&b.rank_centered)
            .map(|(x, y)| x * y)
            .sum();
        let r = (dot / (a.rank_m2 * b.rank_m2).sqrt()).clamp(-1.0, 1.0);
        return Correlation {
            r,
            p_value: p_of_r(r, a.n),
            n: a.n,
        };
    }
    masked_estimate(a, b, &a.rank_centered, &b.rank_centered)
}

/// Joint-pair sums over the rows present in both sketches.
fn masked_estimate(a: &NumericSketch, b: &NumericSketch, xs: &[f64], ys: &[f64]) -> Correlation {
    let mut n = 0usize;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (w, (&wa, &wb)) in a.present.iter().zip(&b.present).enumerate() {
        let mut bits = wa & wb;
        while bits != 0 {
            let i = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (x, y) = (xs[i], ys[i]);
            n += 1;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
    }
    corr_from_sums(n, sx, sy, sxx, syy, sxy)
}

/// Conservative upper envelope of the exact Pearson test: the
/// estimate's |r| inflated by a slack margin, with the matching
/// p-value. If this is still insignificant, the exact test over the
/// same pairs is too.
///
/// The numeric estimate reproduces the exact joint-pair statistics,
/// so the margin is the floating-point floor plus `margin_se`
/// standard errors of extra caution (`0.0` trusts the estimate to
/// the fp floor; discovery's default is driven by
/// `Prefilter::margin`).
pub fn pearson_upper(a: &NumericSketch, b: &NumericSketch, margin_se: f64) -> Correlation {
    let est = pearson_estimate(a, b);
    let se = 1.0 / ((est.n as f64 - 3.0).max(1.0)).sqrt();
    let r_up = (est.r.abs() + R_FP_MARGIN + margin_se * se).min(1.0);
    Correlation {
        r: r_up,
        p_value: p_of_r(r_up, est.n),
        n: est.n,
    }
}

/// Per-row co-occurrence codes of a categorical (or boolean) column.
#[derive(Debug, Clone)]
pub struct CategoricalSketch {
    /// Bucket per row; `NULL_CODE` where absent.
    codes: Vec<u32>,
    /// Bucket width actually used.
    buckets: usize,
    /// Codes are injective (domain fits the bucket width).
    exact: bool,
}

const NULL_CODE: u32 = u32::MAX;

/// SplitMix64 finalizer — mixes sorted-order indices so hashed
/// buckets don't systematically merge adjacent values.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CategoricalSketch {
    /// Build from per-row value codes, where `codes[i]` is the row's
    /// index into the column's **sorted distinct-value order** (as
    /// produced by `value_counts`) and `None` marks NULL. `distinct`
    /// is the domain size; when it fits `buckets` the codes are kept
    /// injective — sorted order included — so the pairwise table
    /// reproduces `ContingencyTable::from_frame` exactly. Larger
    /// domains are hashed into the bucket width.
    pub fn from_codes(codes: &[Option<u32>], distinct: usize, buckets: usize) -> Self {
        assert!(buckets > 0, "at least one bucket required");
        let exact = distinct <= buckets;
        let mapped = codes
            .iter()
            .map(|c| match c {
                None => NULL_CODE,
                Some(v) if exact => *v,
                Some(v) => (splitmix64(*v as u64) % buckets as u64) as u32,
            })
            .collect();
        CategoricalSketch {
            codes: mapped,
            buckets: if exact { distinct.max(1) } else { buckets },
            exact,
        }
    }

    /// Whether the coding is injective (the χ² estimate is then
    /// bit-identical to the exact test).
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

/// χ² estimate for a column pair from their co-occurrence sketches:
/// one joint-count pass over the code arrays (pairwise deletion, like
/// `ContingencyTable::from_frame`) into a fixed-width table, scored
/// by [`chi_squared_counts`]. Bit-identical to the exact test when
/// both sketches are injective.
pub fn chi2_estimate(a: &CategoricalSketch, b: &CategoricalSketch) -> Chi2Result {
    assert_eq!(
        a.codes.len(),
        b.codes.len(),
        "sketches of the same frame required"
    );
    let mut counts = vec![vec![0u64; b.buckets]; a.buckets];
    for (&ca, &cb) in a.codes.iter().zip(&b.codes) {
        if ca != NULL_CODE && cb != NULL_CODE {
            counts[ca as usize][cb as usize] += 1;
        }
    }
    chi_squared_counts(&counts)
}

/// Conservative upper envelope of the exact χ² test. Injective pairs
/// return the estimate unchanged (it *is* the exact test); hashed
/// codes can only merge cells — which shrinks the statistic — so the
/// statistic is inflated by `margin_sd` standard deviations of the
/// null χ² distribution (`√(2·df)`) before the p-value is taken.
pub fn chi2_upper(a: &CategoricalSketch, b: &CategoricalSketch, margin_sd: f64) -> Chi2Result {
    let est = chi2_estimate(a, b);
    if a.exact && b.exact {
        return est;
    }
    let df = est.df.max(1);
    let stat = est.statistic + margin_sd * (2.0 * df as f64).sqrt();
    Chi2Result {
        statistic: stat,
        p_value: chi2_sf(stat, df as f64),
        df: est.df,
        cramers_v: est.cramers_v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi2::chi_squared;
    use crate::correlation::{pearson, spearman};
    use dp_frame::groupby::ContingencyTable;
    use dp_frame::{Column, DType, DataFrame};

    fn dense_sketch(values: &[f64]) -> NumericSketch {
        let pairs: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
        NumericSketch::build(values.len(), &pairs)
    }

    /// Deterministic pseudo-random stream (LCG) for test data.
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(13);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn dense_pearson_estimate_matches_exact() {
        let xs = stream(1, 500);
        let ys: Vec<f64> = stream(2, 500)
            .iter()
            .zip(&xs)
            .map(|(e, x)| 0.3 * x + e)
            .collect();
        let exact = pearson(&xs, &ys);
        let est = pearson_estimate(&dense_sketch(&xs), &dense_sketch(&ys));
        assert_eq!(est.n, exact.n);
        assert!(
            (est.r - exact.r).abs() < 1e-12,
            "estimate {} vs exact {}",
            est.r,
            exact.r
        );
        assert!((est.p_value - exact.p_value).abs() < 1e-9);
    }

    #[test]
    fn masked_pearson_estimate_matches_exact_over_joint_pairs() {
        // Missing values on both sides: the estimate must agree with
        // pearson over the aligned non-null pairs, not the full rows.
        let xs = stream(3, 400);
        let ys = stream(4, 400);
        let a_vals: Vec<(usize, f64)> = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 5 != 0)
            .map(|(i, &v)| (i, v))
            .collect();
        let b_vals: Vec<(usize, f64)> = ys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 != 3)
            .map(|(i, &v)| (i, v))
            .collect();
        let a = NumericSketch::build(400, &a_vals);
        let b = NumericSketch::build(400, &b_vals);
        assert!(!a.is_exact() && !b.is_exact());
        // Reference: pairwise deletion by hand.
        let mut jx = Vec::new();
        let mut jy = Vec::new();
        for i in 0..400 {
            if i % 5 != 0 && i % 7 != 3 {
                jx.push(xs[i]);
                jy.push(ys[i]);
            }
        }
        let exact = pearson(&jx, &jy);
        let est = pearson_estimate(&a, &b);
        assert_eq!(est.n, exact.n);
        assert!(
            (est.r - exact.r).abs() < 1e-10,
            "estimate {} vs exact {}",
            est.r,
            exact.r
        );
    }

    #[test]
    fn non_finite_values_are_treated_as_absent() {
        let mut xs = stream(5, 100);
        xs[17] = f64::NAN;
        xs[42] = f64::INFINITY;
        let pairs: Vec<(usize, f64)> = xs.iter().copied().enumerate().collect();
        let a = NumericSketch::build(100, &pairs);
        assert_eq!(a.count(), 98);
        assert!(!a.is_exact());
        let ys = stream(6, 100);
        let est = pearson_estimate(&a, &dense_sketch(&ys));
        let exact = pearson(&xs, &ys); // drops non-finite pairs itself
        assert_eq!(est.n, exact.n);
        assert!((est.r - exact.r).abs() < 1e-10);
    }

    #[test]
    fn upper_envelope_dominates_exact_coefficient() {
        let xs = stream(7, 300);
        let ys: Vec<f64> = stream(8, 300)
            .iter()
            .zip(&xs)
            .map(|(e, x)| 0.15 * x + e)
            .collect();
        let exact = pearson(&xs, &ys);
        let up = pearson_upper(&dense_sketch(&xs), &dense_sketch(&ys), 0.0);
        assert!(up.r >= exact.r.abs());
        assert!(up.p_value <= exact.p_value + 1e-12);
        // A significant exact test can never be screened.
        if exact.significant(0.05) {
            assert!(up.significant(0.05));
        }
    }

    #[test]
    fn dense_spearman_estimate_matches_exact() {
        let xs = stream(9, 200);
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x).exp()).collect();
        let exact = spearman(&xs, &ys);
        let est = spearman_estimate(&dense_sketch(&xs), &dense_sketch(&ys));
        assert!(
            (est.r - exact.r).abs() < 1e-10,
            "estimate {} vs exact {}",
            est.r,
            exact.r
        );
    }

    fn codes_of(vals: &[Option<&str>]) -> (Vec<Option<u32>>, usize) {
        let mut distinct: Vec<&str> = vals.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let codes = vals
            .iter()
            .map(|v| v.map(|s| distinct.binary_search(&s).unwrap() as u32))
            .collect();
        (codes, distinct.len())
    }

    #[test]
    fn injective_chi2_estimate_is_bit_identical_to_exact() {
        // Interleave nulls so pairwise deletion is exercised.
        let a_vals: Vec<Option<&str>> = (0..240)
            .map(|i| match i % 8 {
                0 => None,
                1..=3 => Some("x"),
                4 | 5 => Some("y"),
                _ => Some("z"),
            })
            .collect();
        let b_vals: Vec<Option<&str>> = (0..240)
            .map(|i| match (i / 3) % 5 {
                0 => Some("p"),
                1 | 2 => Some("q"),
                3 => None,
                _ => Some("r"),
            })
            .collect();
        let df = DataFrame::from_columns(vec![
            Column::from_strings(
                "a",
                DType::Categorical,
                a_vals.iter().map(|v| v.map(str::to_string)).collect(),
            ),
            Column::from_strings(
                "b",
                DType::Categorical,
                b_vals.iter().map(|v| v.map(str::to_string)).collect(),
            ),
        ])
        .unwrap();
        let exact = chi_squared(&ContingencyTable::from_frame(&df, "a", "b").unwrap());
        let (ca, da) = codes_of(&a_vals);
        let (cb, db) = codes_of(&b_vals);
        let sa = CategoricalSketch::from_codes(&ca, da, DEFAULT_BUCKETS);
        let sb = CategoricalSketch::from_codes(&cb, db, DEFAULT_BUCKETS);
        assert!(sa.is_exact() && sb.is_exact());
        let est = chi2_estimate(&sa, &sb);
        assert_eq!(est.statistic.to_bits(), exact.statistic.to_bits());
        assert_eq!(est.p_value.to_bits(), exact.p_value.to_bits());
        assert_eq!(est.df, exact.df);
        assert_eq!(est.cramers_v.to_bits(), exact.cramers_v.to_bits());
        // The upper envelope of an injective pair IS the exact test.
        let up = chi2_upper(&sa, &sb, 1.0);
        assert_eq!(up, est);
    }

    #[test]
    fn column_summary_is_exact_on_numeric_columns() {
        let col = Column::from_floats(
            "x",
            vec![Some(3.5), None, Some(-1.0), Some(9.25), None, Some(0.0)],
        );
        let s = ColumnSummary::build(&col);
        assert_eq!((s.rows, s.nulls), (6, 2));
        assert_eq!((s.min, s.max), (Some(-1.0), Some(9.25)));
        assert!(!s.non_finite);
        assert!(s.support.is_none());
        assert!((s.null_fraction() - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn column_summary_flags_non_finite_observations() {
        // NaN becomes NULL at construction, but infinities are
        // storable and must poison the hull.
        let col = Column::from_floats("x", vec![Some(1.0), Some(f64::INFINITY), Some(2.0)]);
        let s = ColumnSummary::build(&col);
        assert!(s.non_finite, "∞ must poison the hull");
        assert_eq!((s.min, s.max), (Some(1.0), Some(2.0)));
        let empty = ColumnSummary::build(&Column::from_floats("x", vec![None, None]));
        assert_eq!((empty.min, empty.max), (None, None));
        assert!((empty.null_fraction() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn column_summary_caps_string_support() {
        let col = Column::from_strings(
            "c",
            DType::Categorical,
            vec![Some("b".into()), Some("a".into()), None, Some("b".into())],
        );
        let s = ColumnSummary::build(&col);
        assert_eq!(
            s.support,
            Some(vec!["a".to_string(), "b".to_string()]),
            "sorted distinct support"
        );
        assert_eq!(s.nulls, 1);
        // Over the cap: no support set.
        let wide = Column::from_strings(
            "w",
            DType::Text,
            (0..SUPPORT_CAP + 1)
                .map(|i| Some(format!("v{i:03}")))
                .collect(),
        );
        assert!(ColumnSummary::build(&wide).support.is_none());
    }

    #[test]
    fn hashed_chi2_upper_inflates_the_statistic() {
        // Force hashing with a tiny bucket width.
        let vals: Vec<Option<u32>> = (0..300).map(|i| Some(i % 12)).collect();
        let other: Vec<Option<u32>> = (0..300).map(|i| Some((i / 25) % 12)).collect();
        let sa = CategoricalSketch::from_codes(&vals, 12, 4);
        let sb = CategoricalSketch::from_codes(&other, 12, 4);
        assert!(!sa.is_exact());
        let est = chi2_estimate(&sa, &sb);
        let up = chi2_upper(&sa, &sb, 2.0);
        assert!(up.statistic > est.statistic);
        assert!(up.p_value <= est.p_value);
    }
}
