//! Streaming pre-filter sketches for pairwise dependence discovery.
//!
//! Profile discovery's independence pass (Fig 1 rows 7–8) is O(m²)
//! in attributes, and each exact test re-extracts, re-codes and
//! re-allocates both columns. This module provides per-column
//! one-pass summaries that make a *conservative* pairwise dependence
//! estimate cheap, so the exact test only runs on pairs the sketch
//! cannot rule out:
//!
//! - [`NumericSketch`] — one-pass (Welford) moments plus a centered,
//!   zero-filled value array and a presence bitmap. For a pair of
//!   null-free columns the Pearson estimate is a single dot product;
//!   with missing values a bitmap-masked pass recovers the exact
//!   joint-pair statistics. Either way the estimate agrees with
//!   [`crate::correlation::pearson`] over the aligned non-null pairs
//!   up to floating-point noise. Average-rank summaries support a
//!   Spearman estimate the same way.
//! - [`CategoricalSketch`] — a per-row code array (the value's index
//!   in the column's sorted distinct order, hashed into a fixed
//!   bucket width when the domain is larger). For injectively coded
//!   pairs the χ² estimate is **bit-identical** to
//!   [`crate::chi2::chi_squared`] over the
//!   `ContingencyTable::from_frame` table: the joint-count pass uses
//!   the same pairwise deletion, the sorted code order reproduces the
//!   table's label order, and [`crate::chi2::chi_squared_counts`]
//!   ignores empty padding rows/columns.
//!
//! The `*_upper` functions inflate the estimate by a slack margin
//! before the significance check: a tiny floating-point floor when
//! the estimate is exact-equivalent, a caller-scaled term otherwise
//! (hashed categorical codes can only merge cells, which shrinks the
//! χ² statistic). A pair whose *inflated* estimate is still
//! insignificant would also fail the exact test, so discovery can
//! skip it.
//!
//! # Mergeability
//!
//! All three summaries are **mergeable**: two sketches built over
//! disjoint row ranges of the same column combine into the sketch of
//! the union, and for adjacent ranges the merge is **bit-identical**
//! to a from-scratch build over the concatenated rows. The merge is
//! commutative and associative because each sketch carries its global
//! row range and the combine canonicalizes by ascending row order —
//! argument order never matters. This is what lets `dp_monitor`
//! maintain live per-column profiles incrementally over an append
//! stream of batches: the moments fold continues exactly where the
//! earlier chunk's Welford state left off, presence bitmaps and
//! centered arrays are rebuilt around the merged mean, and the
//! categorical co-occurrence codes go through a keyed merge (the
//! sorted distinct union) before re-deriving the bucket mapping.

use crate::chi2::{chi_squared_counts, Chi2Result};
use crate::correlation::{ranks, Correlation};
use crate::distributions::{chi2_sf, t_sf_two_sided};

/// Default bucket width of the categorical co-occurrence sketch.
/// Columns with at most this many distinct values are coded
/// injectively, making the sketched χ² bit-identical to the exact
/// test; wider domains fall back to hashed (lossy) codes.
pub const DEFAULT_BUCKETS: usize = 64;

/// Floating-point slack on an exact-equivalent correlation estimate:
/// the sketch accumulates the same sums in a different order/form, so
/// the coefficient can differ from the two-pass computation by a few
/// ulps — never by more than this.
const R_FP_MARGIN: f64 = 1e-6;

/// Distinct-value cap of [`ColumnSummary`]: a string column with more
/// distinct values than this reports no support set (the abstract
/// domain degrades to Top rather than carrying an unbounded set).
pub const SUPPORT_CAP: usize = 64;

/// Floating-point floor on a collision-free *hashed* χ² statistic:
/// the co-occurrence table is then a row/column permutation of the
/// exact table, so the statistic is mathematically equal and can
/// differ only in summation order — never by more than this relative
/// slack.
const CHI2_FP_MARGIN: f64 = 1e-9;

/// Total-order minimum (`-0.0 < +0.0`): unlike `f64::min`, the result
/// is uniquely determined, which makes the min/max hull folds
/// associative and commutative *bit-for-bit* — the property
/// [`ColumnSummary::merge`] relies on. Only finite values reach these.
fn total_min(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a).is_lt() {
        b
    } else {
        a
    }
}

/// Total-order maximum (`+0.0 > -0.0`); see [`total_min`].
fn total_max(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a).is_gt() {
        b
    } else {
        a
    }
}

/// FNV-1a over a stream of `u64` words — the bit-exact state digest
/// backing the sketches' `fingerprint` methods.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.word(bs.len() as u64);
        for &b in bs {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Exact one-pass summary of a single column, the seeding input for
/// abstract interpretation (dp_lint's `AbsState`): total rows, null
/// count, the min/max hull of the finite numeric values, and the
/// distinct string support up to [`SUPPORT_CAP`].
///
/// Unlike the dependence sketches above, nothing here is estimated —
/// every field is exact over the column it summarizes, so an abstract
/// state seeded from it *contains* the concrete column by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Total rows (including nulls).
    pub rows: usize,
    /// NULL count.
    pub nulls: usize,
    /// Smallest finite non-null numeric value, when any.
    pub min: Option<f64>,
    /// Largest finite non-null numeric value, when any.
    pub max: Option<f64>,
    /// Whether any non-null numeric value was NaN or infinite — the
    /// min/max hull then does not bound the column and the interval
    /// abstraction must degrade to Top.
    pub non_finite: bool,
    /// Sorted distinct non-null string values, present only for
    /// string-typed columns with at most [`SUPPORT_CAP`] distinct
    /// values.
    pub support: Option<Vec<String>>,
}

impl ColumnSummary {
    /// Summarize one column exactly.
    pub fn build(col: &dp_frame::Column) -> Self {
        let rows = col.len();
        let nulls = col.null_count();
        let (mut min, mut max, mut non_finite) = (None, None, false);
        let mut support = None;
        let dtype = col.dtype();
        if dtype.is_numeric() {
            let mut seen = 0usize;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, v) in col.f64_values() {
                if v.is_finite() {
                    seen += 1;
                    lo = total_min(lo, v);
                    hi = total_max(hi, v);
                } else {
                    non_finite = true;
                }
            }
            if seen > 0 {
                min = Some(lo);
                max = Some(hi);
            }
        } else if dtype.is_string() {
            let counts = col.value_counts();
            if counts.len() <= SUPPORT_CAP {
                let mut values: Vec<String> = counts.into_iter().map(|(v, _)| v).collect();
                values.sort_unstable();
                support = Some(values);
            }
        }
        ColumnSummary {
            rows,
            nulls,
            min,
            max,
            non_finite,
            support,
        }
    }

    /// Exact null fraction (`0.0` on an empty column).
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Combine the summaries of two disjoint row sets of the same
    /// column. Every field is exact, so the merge is too: counts add,
    /// the hull is the total-order min/max of the hulls, non-finite
    /// poisoning is sticky, and the support is the sorted union
    /// (degrading to `None` past [`SUPPORT_CAP`], or when either side
    /// already degraded). Commutative, associative, and bit-identical
    /// to [`ColumnSummary::build`] over the concatenated rows.
    pub fn merge(&self, other: &ColumnSummary) -> ColumnSummary {
        let min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(total_min(a, b)),
            (a, b) => a.or(b),
        };
        let max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(total_max(a, b)),
            (a, b) => a.or(b),
        };
        let support = match (&self.support, &other.support) {
            (Some(a), Some(b)) => {
                let mut union = sorted_union(a, b);
                if union.len() <= SUPPORT_CAP {
                    union.shrink_to_fit();
                    Some(union)
                } else {
                    None
                }
            }
            _ => None,
        };
        ColumnSummary {
            rows: self.rows + other.rows,
            nulls: self.nulls + other.nulls,
            min,
            max,
            non_finite: self.non_finite || other.non_finite,
            support,
        }
    }

    /// Bit-exact state digest for merge-parity tests: two summaries
    /// fingerprint equal iff every field (hull bounds compared as raw
    /// bits) is identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.rows as u64);
        h.word(self.nulls as u64);
        h.word(self.non_finite as u64);
        for bound in [self.min, self.max] {
            match bound {
                Some(v) => {
                    h.word(1);
                    h.f64(v);
                }
                None => h.word(0),
            }
        }
        match &self.support {
            Some(values) => {
                h.word(1 + values.len() as u64);
                for v in values {
                    h.bytes(v.as_bytes());
                }
            }
            None => h.word(0),
        }
        h.0
    }
}

/// Sorted union of two sorted, deduplicated string slices.
fn sorted_union(a: &[String], b: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One-pass summary of a numeric column: moments, centered values,
/// presence bitmap, and average-rank analogues for Spearman.
///
/// The sketch covers the global row range `[start, start + n_rows)`
/// and retains its raw finite observations (value + global row, in
/// row order), so two sketches over disjoint ranges [`merge`]
/// exactly: the Welford fold continues from the earlier range's
/// `(n, mean, m2)` state over the later range's values, reproducing a
/// single-pass build over the concatenation bit for bit.
///
/// [`merge`]: NumericSketch::merge
#[derive(Debug, Clone)]
pub struct NumericSketch {
    /// First global row covered (`0` for a whole-column sketch).
    start: usize,
    n_rows: usize,
    /// Finite, non-null observations.
    n: usize,
    /// Running mean of the finite observations (the Welford state
    /// alongside `n` and `m2`; retained so a merge can continue the
    /// fold exactly).
    mean: f64,
    /// Sum of squared deviations from the column mean.
    m2: f64,
    /// `value - mean` per row; `0.0` where absent.
    centered: Vec<f64>,
    /// Sum of squared deviations of the average ranks.
    rank_m2: f64,
    /// `rank - mean_rank` per row; `0.0` where absent.
    rank_centered: Vec<f64>,
    /// Presence bitmap (little-endian 64-bit words).
    present: Vec<u64>,
    /// Raw finite observations in ascending row order.
    finite: Vec<f64>,
    /// Global row index of each entry in `finite`.
    finite_rows: Vec<usize>,
    /// No row is missing or non-finite.
    exact: bool,
}

impl NumericSketch {
    /// Build from the column's non-null `(row index, value)` list and
    /// the total row count. NaN and infinite observations are treated
    /// as absent, mirroring the listwise deletion of
    /// [`crate::correlation::pearson`].
    pub fn build(n_rows: usize, values: &[(usize, f64)]) -> Self {
        Self::build_at(0, n_rows, values)
    }

    /// Build over the global row range `[start, start + n_rows)`,
    /// where `values` carries **global** row indices in that range
    /// (ascending). Chunk sketches built this way merge into exactly
    /// the sketch [`build`](Self::build) produces on the whole column.
    pub fn build_at(start: usize, n_rows: usize, values: &[(usize, f64)]) -> Self {
        let mut n = 0usize;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for &(_, v) in values {
            if v.is_finite() {
                n += 1;
                let d = v - mean;
                mean += d / n as f64;
                m2 += d * (v - mean);
            }
        }
        let mut finite = Vec::with_capacity(n);
        let mut finite_rows = Vec::with_capacity(n);
        for &(i, v) in values {
            if v.is_finite() {
                debug_assert!(i >= start && i < start + n_rows, "row outside sketch range");
                finite.push(v);
                finite_rows.push(i);
            }
        }
        Self::assemble(start, n_rows, n, mean, m2, finite, finite_rows)
    }

    /// Rebuild the derived state (centered arrays, presence bitmap,
    /// ranks) around final moments — shared by build and merge so
    /// both produce identical bits from identical inputs.
    fn assemble(
        start: usize,
        n_rows: usize,
        n: usize,
        mean: f64,
        m2: f64,
        finite: Vec<f64>,
        finite_rows: Vec<usize>,
    ) -> Self {
        let words = n_rows.div_ceil(64);
        let mut centered = vec![0.0; n_rows];
        let mut present = vec![0u64; words];
        for (&i, &v) in finite_rows.iter().zip(&finite) {
            let local = i - start;
            centered[local] = v - mean;
            present[local / 64] |= 1u64 << (local % 64);
        }
        let rk = ranks(&finite);
        let rank_mean = (n as f64 + 1.0) / 2.0;
        let mut rank_centered = vec![0.0; n_rows];
        let mut rank_m2 = 0.0;
        for (&i, &r) in finite_rows.iter().zip(&rk) {
            let d = r - rank_mean;
            rank_centered[i - start] = d;
            rank_m2 += d * d;
        }
        NumericSketch {
            start,
            n_rows,
            n,
            mean,
            m2,
            centered,
            rank_m2,
            rank_centered,
            present,
            finite,
            finite_rows,
            exact: n == n_rows,
        }
    }

    /// Combine with a sketch over a disjoint row range of the same
    /// column (panics on overlap). Commutative and associative: the
    /// operands are canonicalized by ascending global row order, the
    /// Welford fold continues from the earlier range's retained state
    /// over the later range's values, and centered/rank/presence
    /// state is rebuilt around the merged moments. For adjacent
    /// ranges the result is **bit-identical** to
    /// [`build`](Self::build) over the concatenated rows; a gap
    /// between the ranges counts as absent rows.
    pub fn merge(&self, other: &NumericSketch) -> NumericSketch {
        // Order by (start, end) so an empty chunk sharing its start
        // with a non-empty one still canonicalizes deterministically.
        let key = |s: &NumericSketch| (s.start, s.start + s.n_rows);
        let (first, second) = if key(self) <= key(other) {
            (self, other)
        } else {
            (other, self)
        };
        assert!(
            first.start + first.n_rows <= second.start,
            "merge requires disjoint row ranges ([{}, {}) overlaps [{}, {}))",
            first.start,
            first.start + first.n_rows,
            second.start,
            second.start + second.n_rows,
        );
        let start = first.start;
        let n_rows = second.start + second.n_rows - start;
        // Continue the single-pass fold where `first` left off.
        let mut n = first.n;
        let mut mean = first.mean;
        let mut m2 = first.m2;
        for &v in &second.finite {
            n += 1;
            let d = v - mean;
            mean += d / n as f64;
            m2 += d * (v - mean);
        }
        let mut finite = Vec::with_capacity(n);
        finite.extend_from_slice(&first.finite);
        finite.extend_from_slice(&second.finite);
        let mut finite_rows = Vec::with_capacity(n);
        finite_rows.extend_from_slice(&first.finite_rows);
        finite_rows.extend_from_slice(&second.finite_rows);
        Self::assemble(start, n_rows, n, mean, m2, finite, finite_rows)
    }

    /// Finite, non-null observations summarized.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Rows covered (including absent ones).
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// First global row covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether every row is present (pair estimates against another
    /// exact sketch are then exact up to floating-point noise).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Bit-exact state digest for merge-parity tests: equal iff every
    /// field — moments, centered arrays, ranks, bitmap, retained
    /// observations — is bitwise identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.start as u64);
        h.word(self.n_rows as u64);
        h.word(self.n as u64);
        h.f64(self.mean);
        h.f64(self.m2);
        h.f64(self.rank_m2);
        h.word(self.exact as u64);
        for &v in &self.centered {
            h.f64(v);
        }
        for &v in &self.rank_centered {
            h.f64(v);
        }
        for &w in &self.present {
            h.word(w);
        }
        for (&i, &v) in self.finite_rows.iter().zip(&self.finite) {
            h.word(i as u64);
            h.f64(v);
        }
        h.0
    }
}

/// The t-distribution p-value [`crate::correlation::pearson`] attaches
/// to a coefficient over `n` pairs.
fn p_of_r(r: f64, n: usize) -> f64 {
    if n < 3 {
        return 1.0;
    }
    if r.abs() >= 1.0 {
        return 0.0;
    }
    let df = (n - 2) as f64;
    let t = r * (df / (1.0 - r * r)).sqrt();
    t_sf_two_sided(t, df)
}

/// Correlation estimate from joint sums over `n` pairs of values that
/// were centered by per-column (not per-pair) means: recenter by the
/// joint means, then form the coefficient.
fn corr_from_sums(n: usize, sx: f64, sy: f64, sxx: f64, syy: f64, sxy: f64) -> Correlation {
    if n < 2 {
        return Correlation {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let nf = n as f64;
    let cxx = sxx - sx * sx / nf;
    let cyy = syy - sy * sy / nf;
    let cxy = sxy - sx * sy / nf;
    if cxx <= 0.0 || cyy <= 0.0 {
        return Correlation {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let r = (cxy / (cxx * cyy).sqrt()).clamp(-1.0, 1.0);
    Correlation {
        r,
        p_value: p_of_r(r, n),
        n,
    }
}

/// Pearson estimate for a column pair from their sketches.
///
/// Agrees with [`crate::correlation::pearson`] over the aligned
/// non-null finite pairs up to floating-point noise: when both
/// columns are fully present the joint co-moment is a dot product of
/// the centered arrays; otherwise a bitmap-masked pass recovers the
/// joint-pair sums exactly.
pub fn pearson_estimate(a: &NumericSketch, b: &NumericSketch) -> Correlation {
    assert_eq!(
        (a.start, a.n_rows),
        (b.start, b.n_rows),
        "sketches of the same frame required"
    );
    if a.exact && b.exact {
        if a.m2 <= 0.0 || b.m2 <= 0.0 || a.n < 2 {
            return Correlation {
                r: 0.0,
                p_value: 1.0,
                n: a.n,
            };
        }
        let dot: f64 = a.centered.iter().zip(&b.centered).map(|(x, y)| x * y).sum();
        let r = (dot / (a.m2 * b.m2).sqrt()).clamp(-1.0, 1.0);
        return Correlation {
            r,
            p_value: p_of_r(r, a.n),
            n: a.n,
        };
    }
    masked_estimate(a, b, &a.centered, &b.centered)
}

/// Spearman estimate from the average-rank summaries. Exact-equivalent
/// to [`crate::correlation::spearman`] only when both columns are
/// fully present (with missing values, ranks over the joint subset
/// differ from masked full-column ranks), so it carries no exactness
/// guarantee — use it as a monotone-dependence screen.
pub fn spearman_estimate(a: &NumericSketch, b: &NumericSketch) -> Correlation {
    assert_eq!(
        (a.start, a.n_rows),
        (b.start, b.n_rows),
        "sketches of the same frame required"
    );
    if a.exact && b.exact {
        if a.rank_m2 <= 0.0 || b.rank_m2 <= 0.0 || a.n < 2 {
            return Correlation {
                r: 0.0,
                p_value: 1.0,
                n: a.n,
            };
        }
        let dot: f64 = a
            .rank_centered
            .iter()
            .zip(&b.rank_centered)
            .map(|(x, y)| x * y)
            .sum();
        let r = (dot / (a.rank_m2 * b.rank_m2).sqrt()).clamp(-1.0, 1.0);
        return Correlation {
            r,
            p_value: p_of_r(r, a.n),
            n: a.n,
        };
    }
    masked_estimate(a, b, &a.rank_centered, &b.rank_centered)
}

/// Joint-pair sums over the rows present in both sketches.
fn masked_estimate(a: &NumericSketch, b: &NumericSketch, xs: &[f64], ys: &[f64]) -> Correlation {
    let mut n = 0usize;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (w, (&wa, &wb)) in a.present.iter().zip(&b.present).enumerate() {
        let mut bits = wa & wb;
        while bits != 0 {
            let i = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (x, y) = (xs[i], ys[i]);
            n += 1;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
    }
    corr_from_sums(n, sx, sy, sxx, syy, sxy)
}

/// Conservative upper envelope of the exact Pearson test: the
/// estimate's |r| inflated by a slack margin, with the matching
/// p-value. If this is still insignificant, the exact test over the
/// same pairs is too.
///
/// The numeric estimate reproduces the exact joint-pair statistics,
/// so the margin is the floating-point floor plus `margin_se`
/// standard errors of extra caution (`0.0` trusts the estimate to
/// the fp floor; discovery's default is driven by
/// `Prefilter::margin`).
pub fn pearson_upper(a: &NumericSketch, b: &NumericSketch, margin_se: f64) -> Correlation {
    let est = pearson_estimate(a, b);
    let se = 1.0 / ((est.n as f64 - 3.0).max(1.0)).sqrt();
    let r_up = (est.r.abs() + R_FP_MARGIN + margin_se * se).min(1.0);
    Correlation {
        r: r_up,
        p_value: p_of_r(r_up, est.n),
        n: est.n,
    }
}

/// Per-row co-occurrence codes of a categorical (or boolean) column.
///
/// Built key-retaining (via [`from_values`]) the sketch also carries
/// the sorted distinct values and the per-row pre-hash codes, which
/// is what makes the co-occurrence table **keyed-mergeable**: two
/// sketches over disjoint row ranges union their key tables, remap
/// both code streams through the union, and re-derive the bucket
/// mapping — bit-identical to building over the concatenated rows,
/// because the sorted distinct order of a concatenation *is* the
/// sorted union of the chunks' distinct orders. Sketches built from
/// bare codes ([`from_codes`]) carry no keys and cannot merge.
///
/// [`from_values`]: CategoricalSketch::from_values
/// [`from_codes`]: CategoricalSketch::from_codes
#[derive(Debug, Clone)]
pub struct CategoricalSketch {
    /// First global row covered (`0` for a whole-column sketch).
    start: usize,
    /// Bucket per row; `NULL_CODE` where absent.
    codes: Vec<u32>,
    /// Bucket width actually used.
    buckets: usize,
    /// No two *observed* values share a bucket (collision-aware; see
    /// [`is_exact`](CategoricalSketch::is_exact)).
    exact: bool,
    /// The mapping is the identity on sorted distinct order — the
    /// strictly stronger property the bit-identity claims need.
    order_preserving: bool,
    /// Bucket width originally requested; a merge re-derives the
    /// mapping decision against this, not the collapsed width.
    requested_buckets: usize,
    /// Sorted distinct values (key-retaining builds only).
    keys: Option<Vec<String>>,
    /// Per-row index into `keys` pre-hashing; `NULL_CODE` where
    /// absent (key-retaining builds only).
    raw: Option<Vec<u32>>,
}

const NULL_CODE: u32 = u32::MAX;

/// SplitMix64 finalizer — mixes sorted-order indices so hashed
/// buckets don't systematically merge adjacent values.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CategoricalSketch {
    /// Build from per-row value codes, where `codes[i]` is the row's
    /// index into the column's **sorted distinct-value order** (as
    /// produced by `value_counts`) and `None` marks NULL. `distinct`
    /// is the domain size; when it fits `buckets` the codes are kept
    /// injective — sorted order included — so the pairwise table
    /// reproduces `ContingencyTable::from_frame` exactly. Larger
    /// domains are hashed into the bucket width.
    pub fn from_codes(codes: &[Option<u32>], distinct: usize, buckets: usize) -> Self {
        assert!(buckets > 0, "at least one bucket required");
        let order_preserving = distinct <= buckets;
        let mapped: Vec<u32> = codes
            .iter()
            .map(|c| match c {
                None => NULL_CODE,
                Some(v) if order_preserving => *v,
                Some(v) => (splitmix64(*v as u64) % buckets as u64) as u32,
            })
            .collect();
        let exact = order_preserving || hashing_is_collision_free(codes.iter().flatten(), buckets);
        CategoricalSketch {
            start: 0,
            codes: mapped,
            buckets: if order_preserving {
                distinct.max(1)
            } else {
                buckets
            },
            exact,
            order_preserving,
            requested_buckets: buckets,
            keys: None,
            raw: None,
        }
    }

    /// Key-retaining build from per-row values (`None` marks NULL):
    /// computes the sorted distinct order and the codes itself and
    /// keeps both, so the sketch can [`merge`](Self::merge).
    pub fn from_values(values: &[Option<&str>], buckets: usize) -> Self {
        Self::from_values_at(0, values, buckets)
    }

    /// Key-retaining build over the global row range
    /// `[start, start + values.len())`; see
    /// [`from_values`](Self::from_values).
    pub fn from_values_at(start: usize, values: &[Option<&str>], buckets: usize) -> Self {
        let mut keys: Vec<String> = values.iter().flatten().map(|s| s.to_string()).collect();
        keys.sort_unstable();
        keys.dedup();
        let raw: Vec<u32> = values
            .iter()
            .map(|v| match v {
                None => NULL_CODE,
                Some(s) => keys.binary_search_by(|k| k.as_str().cmp(s)).unwrap() as u32,
            })
            .collect();
        Self::from_parts(start, keys, raw, buckets)
    }

    /// Shared tail of the key-retaining constructors and
    /// [`merge`](Self::merge): derive the bucket mapping from the key
    /// table exactly the way [`from_codes`](Self::from_codes) would,
    /// so a merged sketch is bitwise the sketch of the concatenation.
    fn from_parts(start: usize, keys: Vec<String>, raw: Vec<u32>, buckets: usize) -> Self {
        assert!(buckets > 0, "at least one bucket required");
        let distinct = keys.len();
        let order_preserving = distinct <= buckets;
        let mapped: Vec<u32> = raw
            .iter()
            .map(|&c| match c {
                NULL_CODE => NULL_CODE,
                v if order_preserving => v,
                v => (splitmix64(v as u64) % buckets as u64) as u32,
            })
            .collect();
        let exact = order_preserving
            || hashing_is_collision_free(raw.iter().filter(|&&c| c != NULL_CODE), buckets);
        CategoricalSketch {
            start,
            codes: mapped,
            buckets: if order_preserving {
                distinct.max(1)
            } else {
                buckets
            },
            exact,
            order_preserving,
            requested_buckets: buckets,
            keys: Some(keys),
            raw: Some(raw),
        }
    }

    /// Keyed merge with a sketch over a disjoint row range of the
    /// same column (panics on overlap, on mismatched requested bucket
    /// widths, or when either side was built without keys).
    /// Commutative and associative — operands canonicalize by
    /// ascending global row order — and for adjacent ranges
    /// bit-identical to [`from_values`](Self::from_values) over the
    /// concatenated rows; a gap between the ranges counts as NULL
    /// rows.
    pub fn merge(&self, other: &CategoricalSketch) -> CategoricalSketch {
        assert_eq!(
            self.requested_buckets, other.requested_buckets,
            "merge requires the same requested bucket width"
        );
        let key = |s: &CategoricalSketch| (s.start, s.start + s.codes.len());
        let (first, second) = if key(self) <= key(other) {
            (self, other)
        } else {
            (other, self)
        };
        assert!(
            first.start + first.codes.len() <= second.start,
            "merge requires disjoint row ranges ([{}, {}) overlaps [{}, {}))",
            first.start,
            first.start + first.codes.len(),
            second.start,
            second.start + second.codes.len(),
        );
        let (keys_a, raw_a) = first.key_state();
        let (keys_b, raw_b) = second.key_state();
        let keys = sorted_union(keys_a, keys_b);
        let remap = |side: &[String]| -> Vec<u32> {
            side.iter()
                .map(|k| keys.binary_search(k).unwrap() as u32)
                .collect()
        };
        let (map_a, map_b) = (remap(keys_a), remap(keys_b));
        let start = first.start;
        let end = second.start + second.codes.len();
        let mut raw = Vec::with_capacity(end - start);
        raw.extend(raw_a.iter().map(|&c| translate(c, &map_a)));
        raw.resize(second.start - start, NULL_CODE); // gap rows are NULL
        raw.extend(raw_b.iter().map(|&c| translate(c, &map_b)));
        Self::from_parts(start, keys, raw, self.requested_buckets)
    }

    fn key_state(&self) -> (&Vec<String>, &Vec<u32>) {
        match (&self.keys, &self.raw) {
            (Some(k), Some(r)) => (k, r),
            _ => panic!("merge requires key-retaining sketches (build with from_values)"),
        }
    }

    /// Whether no two *observed* values share a bucket — the χ² table
    /// then loses no information. This reflects actual collisions:
    /// a domain wider than the bucket width still reports exact when
    /// the values that actually occur happen to hash injectively
    /// (their table is a permutation of the exact test's, equal up to
    /// summation order). For the strictly stronger bit-identity
    /// guarantee see
    /// [`is_order_preserving`](Self::is_order_preserving).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Whether the coding is the identity on the column's sorted
    /// distinct order — the χ² estimate is then **bit-identical** to
    /// the exact test, not merely equal up to floating-point
    /// summation order.
    pub fn is_order_preserving(&self) -> bool {
        self.order_preserving
    }

    /// First global row covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Rows covered.
    pub fn rows(&self) -> usize {
        self.codes.len()
    }

    /// Bit-exact state digest for merge-parity tests: equal iff the
    /// code stream, bucket decision, exactness flags, and (when
    /// retained) key table and raw codes are all identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.start as u64);
        h.word(self.buckets as u64);
        h.word(self.requested_buckets as u64);
        h.word(self.exact as u64);
        h.word(self.order_preserving as u64);
        for &c in &self.codes {
            h.word(c as u64);
        }
        match &self.keys {
            Some(keys) => {
                h.word(1 + keys.len() as u64);
                for k in keys {
                    h.bytes(k.as_bytes());
                }
            }
            None => h.word(0),
        }
        match &self.raw {
            Some(raw) => {
                h.word(1 + raw.len() as u64);
                for &c in raw {
                    h.word(c as u64);
                }
            }
            None => h.word(0),
        }
        h.0
    }
}

/// Remap a raw code through a chunk-to-union translation table,
/// passing NULL through.
fn translate(code: u32, map: &[u32]) -> u32 {
    if code == NULL_CODE {
        NULL_CODE
    } else {
        map[code as usize]
    }
}

/// Whether hashing the observed codes into `buckets` cells merges
/// none of them (injective on what actually occurs, though not
/// order-preserving).
fn hashing_is_collision_free<'a>(observed: impl Iterator<Item = &'a u32>, buckets: usize) -> bool {
    let mut distinct: Vec<u32> = observed.copied().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let mut cells: Vec<u32> = distinct
        .iter()
        .map(|&c| (splitmix64(c as u64) % buckets as u64) as u32)
        .collect();
    cells.sort_unstable();
    cells.dedup();
    cells.len() == distinct.len()
}

/// χ² estimate for a column pair from their co-occurrence sketches:
/// one joint-count pass over the code arrays (pairwise deletion, like
/// `ContingencyTable::from_frame`) into a fixed-width table, scored
/// by [`chi_squared_counts`]. Bit-identical to the exact test when
/// both sketches are injective.
pub fn chi2_estimate(a: &CategoricalSketch, b: &CategoricalSketch) -> Chi2Result {
    assert_eq!(
        (a.start, a.codes.len()),
        (b.start, b.codes.len()),
        "sketches of the same frame required"
    );
    let mut counts = vec![vec![0u64; b.buckets]; a.buckets];
    for (&ca, &cb) in a.codes.iter().zip(&b.codes) {
        if ca != NULL_CODE && cb != NULL_CODE {
            counts[ca as usize][cb as usize] += 1;
        }
    }
    chi_squared_counts(&counts)
}

/// Conservative upper envelope of the exact χ² test.
/// Order-preserving pairs return the estimate unchanged (it *is* the
/// exact test, bit for bit). Hashed but collision-free pairs compute
/// a cell permutation of the exact table — mathematically the same
/// statistic — so only a floating-point floor is added. Colliding
/// codes can only merge cells — which shrinks the statistic — so the
/// statistic is inflated by `margin_sd` standard deviations of the
/// null χ² distribution (`√(2·df)`) before the p-value is taken.
pub fn chi2_upper(a: &CategoricalSketch, b: &CategoricalSketch, margin_sd: f64) -> Chi2Result {
    let est = chi2_estimate(a, b);
    if a.order_preserving && b.order_preserving {
        return est;
    }
    let df = est.df.max(1);
    let stat = if a.exact && b.exact {
        est.statistic + CHI2_FP_MARGIN * est.statistic.max(1.0)
    } else {
        est.statistic + margin_sd * (2.0 * df as f64).sqrt()
    };
    Chi2Result {
        statistic: stat,
        p_value: chi2_sf(stat, df as f64),
        df: est.df,
        cramers_v: est.cramers_v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi2::chi_squared;
    use crate::correlation::{pearson, spearman};
    use dp_frame::groupby::ContingencyTable;
    use dp_frame::{Column, DType, DataFrame};

    fn dense_sketch(values: &[f64]) -> NumericSketch {
        let pairs: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
        NumericSketch::build(values.len(), &pairs)
    }

    /// Deterministic pseudo-random stream (LCG) for test data.
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(13);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn dense_pearson_estimate_matches_exact() {
        let xs = stream(1, 500);
        let ys: Vec<f64> = stream(2, 500)
            .iter()
            .zip(&xs)
            .map(|(e, x)| 0.3 * x + e)
            .collect();
        let exact = pearson(&xs, &ys);
        let est = pearson_estimate(&dense_sketch(&xs), &dense_sketch(&ys));
        assert_eq!(est.n, exact.n);
        assert!(
            (est.r - exact.r).abs() < 1e-12,
            "estimate {} vs exact {}",
            est.r,
            exact.r
        );
        assert!((est.p_value - exact.p_value).abs() < 1e-9);
    }

    #[test]
    fn masked_pearson_estimate_matches_exact_over_joint_pairs() {
        // Missing values on both sides: the estimate must agree with
        // pearson over the aligned non-null pairs, not the full rows.
        let xs = stream(3, 400);
        let ys = stream(4, 400);
        let a_vals: Vec<(usize, f64)> = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 5 != 0)
            .map(|(i, &v)| (i, v))
            .collect();
        let b_vals: Vec<(usize, f64)> = ys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 != 3)
            .map(|(i, &v)| (i, v))
            .collect();
        let a = NumericSketch::build(400, &a_vals);
        let b = NumericSketch::build(400, &b_vals);
        assert!(!a.is_exact() && !b.is_exact());
        // Reference: pairwise deletion by hand.
        let mut jx = Vec::new();
        let mut jy = Vec::new();
        for i in 0..400 {
            if i % 5 != 0 && i % 7 != 3 {
                jx.push(xs[i]);
                jy.push(ys[i]);
            }
        }
        let exact = pearson(&jx, &jy);
        let est = pearson_estimate(&a, &b);
        assert_eq!(est.n, exact.n);
        assert!(
            (est.r - exact.r).abs() < 1e-10,
            "estimate {} vs exact {}",
            est.r,
            exact.r
        );
    }

    #[test]
    fn non_finite_values_are_treated_as_absent() {
        let mut xs = stream(5, 100);
        xs[17] = f64::NAN;
        xs[42] = f64::INFINITY;
        let pairs: Vec<(usize, f64)> = xs.iter().copied().enumerate().collect();
        let a = NumericSketch::build(100, &pairs);
        assert_eq!(a.count(), 98);
        assert!(!a.is_exact());
        let ys = stream(6, 100);
        let est = pearson_estimate(&a, &dense_sketch(&ys));
        let exact = pearson(&xs, &ys); // drops non-finite pairs itself
        assert_eq!(est.n, exact.n);
        assert!((est.r - exact.r).abs() < 1e-10);
    }

    #[test]
    fn upper_envelope_dominates_exact_coefficient() {
        let xs = stream(7, 300);
        let ys: Vec<f64> = stream(8, 300)
            .iter()
            .zip(&xs)
            .map(|(e, x)| 0.15 * x + e)
            .collect();
        let exact = pearson(&xs, &ys);
        let up = pearson_upper(&dense_sketch(&xs), &dense_sketch(&ys), 0.0);
        assert!(up.r >= exact.r.abs());
        assert!(up.p_value <= exact.p_value + 1e-12);
        // A significant exact test can never be screened.
        if exact.significant(0.05) {
            assert!(up.significant(0.05));
        }
    }

    #[test]
    fn dense_spearman_estimate_matches_exact() {
        let xs = stream(9, 200);
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x).exp()).collect();
        let exact = spearman(&xs, &ys);
        let est = spearman_estimate(&dense_sketch(&xs), &dense_sketch(&ys));
        assert!(
            (est.r - exact.r).abs() < 1e-10,
            "estimate {} vs exact {}",
            est.r,
            exact.r
        );
    }

    fn codes_of(vals: &[Option<&str>]) -> (Vec<Option<u32>>, usize) {
        let mut distinct: Vec<&str> = vals.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let codes = vals
            .iter()
            .map(|v| v.map(|s| distinct.binary_search(&s).unwrap() as u32))
            .collect();
        (codes, distinct.len())
    }

    #[test]
    fn injective_chi2_estimate_is_bit_identical_to_exact() {
        // Interleave nulls so pairwise deletion is exercised.
        let a_vals: Vec<Option<&str>> = (0..240)
            .map(|i| match i % 8 {
                0 => None,
                1..=3 => Some("x"),
                4 | 5 => Some("y"),
                _ => Some("z"),
            })
            .collect();
        let b_vals: Vec<Option<&str>> = (0..240)
            .map(|i| match (i / 3) % 5 {
                0 => Some("p"),
                1 | 2 => Some("q"),
                3 => None,
                _ => Some("r"),
            })
            .collect();
        let df = DataFrame::from_columns(vec![
            Column::from_strings(
                "a",
                DType::Categorical,
                a_vals.iter().map(|v| v.map(str::to_string)).collect(),
            ),
            Column::from_strings(
                "b",
                DType::Categorical,
                b_vals.iter().map(|v| v.map(str::to_string)).collect(),
            ),
        ])
        .unwrap();
        let exact = chi_squared(&ContingencyTable::from_frame(&df, "a", "b").unwrap());
        let (ca, da) = codes_of(&a_vals);
        let (cb, db) = codes_of(&b_vals);
        let sa = CategoricalSketch::from_codes(&ca, da, DEFAULT_BUCKETS);
        let sb = CategoricalSketch::from_codes(&cb, db, DEFAULT_BUCKETS);
        assert!(sa.is_exact() && sb.is_exact());
        let est = chi2_estimate(&sa, &sb);
        assert_eq!(est.statistic.to_bits(), exact.statistic.to_bits());
        assert_eq!(est.p_value.to_bits(), exact.p_value.to_bits());
        assert_eq!(est.df, exact.df);
        assert_eq!(est.cramers_v.to_bits(), exact.cramers_v.to_bits());
        // The upper envelope of an injective pair IS the exact test.
        let up = chi2_upper(&sa, &sb, 1.0);
        assert_eq!(up, est);
    }

    #[test]
    fn column_summary_is_exact_on_numeric_columns() {
        let col = Column::from_floats(
            "x",
            vec![Some(3.5), None, Some(-1.0), Some(9.25), None, Some(0.0)],
        );
        let s = ColumnSummary::build(&col);
        assert_eq!((s.rows, s.nulls), (6, 2));
        assert_eq!((s.min, s.max), (Some(-1.0), Some(9.25)));
        assert!(!s.non_finite);
        assert!(s.support.is_none());
        assert!((s.null_fraction() - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn column_summary_flags_non_finite_observations() {
        // NaN becomes NULL at construction, but infinities are
        // storable and must poison the hull.
        let col = Column::from_floats("x", vec![Some(1.0), Some(f64::INFINITY), Some(2.0)]);
        let s = ColumnSummary::build(&col);
        assert!(s.non_finite, "∞ must poison the hull");
        assert_eq!((s.min, s.max), (Some(1.0), Some(2.0)));
        let empty = ColumnSummary::build(&Column::from_floats("x", vec![None, None]));
        assert_eq!((empty.min, empty.max), (None, None));
        assert!((empty.null_fraction() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn column_summary_caps_string_support() {
        let col = Column::from_strings(
            "c",
            DType::Categorical,
            vec![Some("b".into()), Some("a".into()), None, Some("b".into())],
        );
        let s = ColumnSummary::build(&col);
        assert_eq!(
            s.support,
            Some(vec!["a".to_string(), "b".to_string()]),
            "sorted distinct support"
        );
        assert_eq!(s.nulls, 1);
        // Over the cap: no support set.
        let wide = Column::from_strings(
            "w",
            DType::Text,
            (0..SUPPORT_CAP + 1)
                .map(|i| Some(format!("v{i:03}")))
                .collect(),
        );
        assert!(ColumnSummary::build(&wide).support.is_none());
    }

    #[test]
    fn collision_free_hashing_reports_exact() {
        // Regression: `from_codes` used to equate exactness with
        // `distinct <= buckets`, silently dropping it when a wide
        // domain happened to hash without any observed collision.
        // Only two of 100 domain values occur; with 64 buckets their
        // hashes differ, so no table cell is merged.
        let vals: Vec<Option<u32>> = (0..200).map(|i| Some((i % 2) * 57)).collect();
        let s = CategoricalSketch::from_codes(&vals, 100, DEFAULT_BUCKETS);
        assert!(
            s.is_exact(),
            "no observed collision must report exact despite distinct > buckets"
        );
        assert!(
            !s.is_order_preserving(),
            "hashed coding is not order-preserving"
        );
        // A genuinely colliding domain still reports inexact.
        let wide: Vec<Option<u32>> = (0..300).map(|i| Some(i % 200)).collect();
        let t = CategoricalSketch::from_codes(&wide, 200, DEFAULT_BUCKETS);
        assert!(
            !t.is_exact(),
            "200 observed codes in 64 buckets must collide"
        );
        // The collision-free upper envelope stays an upper envelope
        // but inflates by an fp floor only, not the full margin.
        let other: Vec<Option<u32>> = (0..200).map(|i| Some(((i / 7) % 2) * 31)).collect();
        let o = CategoricalSketch::from_codes(&other, 100, DEFAULT_BUCKETS);
        assert!(o.is_exact());
        let est = chi2_estimate(&s, &o);
        let up = chi2_upper(&s, &o, 2.0);
        assert!(up.statistic >= est.statistic);
        assert!(up.p_value <= est.p_value);
        assert!(
            up.statistic - est.statistic <= 2.0 * CHI2_FP_MARGIN * est.statistic.max(1.0),
            "collision-free pairs get the fp floor, not the √(2·df) margin"
        );
    }

    #[test]
    fn column_summary_merge_matches_rebuild() {
        let xs: Vec<Option<f64>> = stream(21, 120)
            .into_iter()
            .enumerate()
            .map(|(i, v)| match i % 9 {
                0 => None,
                4 => Some(f64::INFINITY),
                _ => Some(v - 0.5),
            })
            .collect();
        for split in [0, 1, 37, 119, 120] {
            let a = ColumnSummary::build(&Column::from_floats("x", xs[..split].to_vec()));
            let b = ColumnSummary::build(&Column::from_floats("x", xs[split..].to_vec()));
            let whole = ColumnSummary::build(&Column::from_floats("x", xs.clone()));
            let merged = a.merge(&b);
            assert_eq!(merged, whole);
            assert_eq!(merged.fingerprint(), whole.fingerprint());
            assert_eq!(
                a.merge(&b).fingerprint(),
                b.merge(&a).fingerprint(),
                "summary merge must be commutative"
            );
        }
    }

    #[test]
    fn column_summary_merge_unions_support_up_to_cap() {
        let strings = |names: &[&str]| {
            Column::from_strings(
                "c",
                DType::Categorical,
                names.iter().map(|s| Some(s.to_string())).collect(),
            )
        };
        let a = ColumnSummary::build(&strings(&["b", "a", "d"]));
        let b = ColumnSummary::build(&strings(&["c", "a"]));
        let m = a.merge(&b);
        assert_eq!(
            m.support,
            Some(vec!["a".into(), "b".into(), "c".into(), "d".into()])
        );
        // Union past the cap degrades to None, like a direct build.
        let lo: Vec<String> = (0..40).map(|i| format!("a{i:02}")).collect();
        let hi: Vec<String> = (0..40).map(|i| format!("b{i:02}")).collect();
        let wide_a =
            ColumnSummary::build(&strings(&lo.iter().map(String::as_str).collect::<Vec<_>>()));
        let wide_b =
            ColumnSummary::build(&strings(&hi.iter().map(String::as_str).collect::<Vec<_>>()));
        assert!(wide_a.merge(&wide_b).support.is_none());
    }

    #[test]
    fn numeric_sketch_merge_is_bit_identical_to_rebuild() {
        let mut xs = stream(22, 300);
        xs[13] = f64::NAN;
        xs[200] = f64::NEG_INFINITY;
        let pairs: Vec<(usize, f64)> = xs
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % 11 != 5) // missing rows too
            .collect();
        let whole = NumericSketch::build(300, &pairs);
        for split in [0, 64, 150, 299, 300] {
            let (lo, hi): (Vec<_>, Vec<_>) = pairs.iter().copied().partition(|(i, _)| *i < split);
            let a = NumericSketch::build_at(0, split, &lo);
            let b = NumericSketch::build_at(split, 300 - split, &hi);
            assert_eq!(a.merge(&b).fingerprint(), whole.fingerprint());
            assert_eq!(
                b.merge(&a).fingerprint(),
                whole.fingerprint(),
                "merge must canonicalize by row order"
            );
        }
        // Associativity across a three-way split.
        let part = |lo: usize, hi: usize| {
            let vals: Vec<(usize, f64)> = pairs
                .iter()
                .copied()
                .filter(|(i, _)| *i >= lo && *i < hi)
                .collect();
            NumericSketch::build_at(lo, hi - lo, &vals)
        };
        let (a, b, c) = (part(0, 100), part(100, 180), part(180, 300));
        assert_eq!(
            a.merge(&b).merge(&c).fingerprint(),
            a.merge(&b.merge(&c)).fingerprint()
        );
        assert_eq!(a.merge(&b).merge(&c).fingerprint(), whole.fingerprint());
    }

    #[test]
    fn numeric_sketch_merge_keeps_pair_estimates_exact() {
        // Merged sketches must stay usable: pair estimates over
        // merged halves equal the whole-column estimates bit for bit.
        let xs = stream(23, 256);
        let ys: Vec<f64> = stream(24, 256)
            .iter()
            .zip(&xs)
            .map(|(e, x)| 0.4 * x + e)
            .collect();
        let half = |v: &[f64], lo: usize, hi: usize| {
            let pairs: Vec<(usize, f64)> = v[lo..hi]
                .iter()
                .enumerate()
                .map(|(i, &x)| (lo + i, x))
                .collect();
            NumericSketch::build_at(lo, hi - lo, &pairs)
        };
        let a = half(&xs, 0, 100).merge(&half(&xs, 100, 256));
        let b = half(&ys, 0, 100).merge(&half(&ys, 100, 256));
        let merged = pearson_estimate(&a, &b);
        let whole = pearson_estimate(&dense_sketch(&xs), &dense_sketch(&ys));
        assert_eq!(merged.r.to_bits(), whole.r.to_bits());
        assert_eq!(merged.p_value.to_bits(), whole.p_value.to_bits());
    }

    #[test]
    fn categorical_sketch_keyed_merge_is_bit_identical_to_rebuild() {
        let vals: Vec<Option<&str>> = (0..180)
            .map(|i| match i % 7 {
                0 => None,
                1 | 2 => Some("red"),
                3 => Some("green"),
                4 | 5 => Some("blue"),
                _ => Some("violet"),
            })
            .collect();
        let whole = CategoricalSketch::from_values(&vals, DEFAULT_BUCKETS);
        for split in [0, 1, 90, 179, 180] {
            let a = CategoricalSketch::from_values_at(0, &vals[..split], DEFAULT_BUCKETS);
            let b = CategoricalSketch::from_values_at(split, &vals[split..], DEFAULT_BUCKETS);
            assert_eq!(a.merge(&b).fingerprint(), whole.fingerprint());
            assert_eq!(
                b.merge(&a).fingerprint(),
                whole.fingerprint(),
                "keyed merge must canonicalize by row order"
            );
        }
        // Chunks that each see a *different* subset of the domain:
        // the union remap is what keeps codes consistent.
        let a_only: Vec<Option<&str>> = vec![Some("zeta"), Some("alpha"), None];
        let b_only: Vec<Option<&str>> = vec![Some("mid"), Some("alpha"), Some("beta")];
        let concat: Vec<Option<&str>> = a_only.iter().chain(&b_only).copied().collect();
        let a = CategoricalSketch::from_values_at(0, &a_only, DEFAULT_BUCKETS);
        let b = CategoricalSketch::from_values_at(3, &b_only, DEFAULT_BUCKETS);
        let rebuilt = CategoricalSketch::from_values(&concat, DEFAULT_BUCKETS);
        assert_eq!(a.merge(&b).fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn categorical_merge_re_derives_the_hash_decision() {
        // Each chunk fits the bucket width (order-preserving), but
        // their union does not: the merge must re-derive the hashed
        // mapping exactly as a from-scratch build would.
        let lo: Vec<String> = (0..5).map(|i| format!("a{i}")).collect();
        let hi: Vec<String> = (0..5).map(|i| format!("b{i}")).collect();
        let lo_vals: Vec<Option<&str>> = lo.iter().map(|s| Some(s.as_str())).collect();
        let hi_vals: Vec<Option<&str>> = hi.iter().map(|s| Some(s.as_str())).collect();
        let concat: Vec<Option<&str>> = lo_vals.iter().chain(&hi_vals).copied().collect();
        let a = CategoricalSketch::from_values_at(0, &lo_vals, 6);
        let b = CategoricalSketch::from_values_at(5, &hi_vals, 6);
        assert!(a.is_order_preserving() && b.is_order_preserving());
        let merged = a.merge(&b);
        assert!(!merged.is_order_preserving(), "10 keys exceed 6 buckets");
        let rebuilt = CategoricalSketch::from_values(&concat, 6);
        assert_eq!(merged.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn hashed_chi2_upper_inflates_the_statistic() {
        // Force hashing with a tiny bucket width.
        let vals: Vec<Option<u32>> = (0..300).map(|i| Some(i % 12)).collect();
        let other: Vec<Option<u32>> = (0..300).map(|i| Some((i / 25) % 12)).collect();
        let sa = CategoricalSketch::from_codes(&vals, 12, 4);
        let sb = CategoricalSketch::from_codes(&other, 12, 4);
        assert!(!sa.is_exact());
        let est = chi2_estimate(&sa, &sb);
        let up = chi2_upper(&sa, &sb, 2.0);
        assert!(up.statistic > est.statistic);
        assert!(up.p_value <= est.p_value);
    }
}
