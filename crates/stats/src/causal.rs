//! Causal-coefficient estimation — a TETRAD substitute.
//!
//! Fig 1 row 9 parameterizes the causal `Indep` profile with a
//! coefficient learned by TETRAD \[66\]. TETRAD (a Java toolkit) is not
//! available; we substitute the two standard building blocks it uses
//! for linear-Gaussian data:
//!
//! 1. **Standardized linear-SEM coefficients** — the regression
//!    coefficient of a standardized target on standardized parents,
//!    solved by ordinary least squares via normal equations. With a
//!    single parent this is exactly the Pearson correlation; with
//!    multiple parents it is the path coefficient of a linear SEM.
//! 2. **PC-style skeleton search** — remove the edge `(i, j)` when
//!    some conditioning set of size ≤ `max_cond` renders the partial
//!    correlation insignificant.
//!
//! The substitution preserves what the profile needs: a per-pair
//! `coeff(A_j, A_k)` in `[-1, 1]` whose magnitude shrinks when noise
//! is injected into either attribute (the row-9 transformation).

use crate::correlation::{partial_correlation, pearson};
use crate::descriptive::{mean, std_dev};
use crate::distributions::normal_cdf;

/// Standardize to zero mean, unit variance. Constant data maps to
/// all-zeros; "constant up to float noise" (σ below a relative
/// epsilon of the data scale) is treated as constant too, so that
/// residualized columns do not amplify 1e-13 rounding error into
/// spurious unit-variance signals.
pub fn standardize(xs: &[f64]) -> Vec<f64> {
    let (Some(m), Some(s)) = (mean(xs), std_dev(xs)) else {
        return vec![0.0; xs.len()];
    };
    let scale = xs.iter().fold(0.0f64, |a, x| a.max(x.abs())).max(1.0);
    if s <= 1e-10 * scale {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// Solve the OLS normal equations `(XᵀX) β = Xᵀy` by Gaussian
/// elimination with partial pivoting. `xs` holds the predictor
/// columns. Returns `None` when the system is singular.
pub fn ols(xs: &[&[f64]], y: &[f64]) -> Option<Vec<f64>> {
    let p = xs.len();
    if p == 0 {
        return Some(Vec::new());
    }
    let n = y.len();
    for col in xs {
        assert_eq!(col.len(), n, "predictor length mismatch");
    }
    // Build XtX (p x p) and Xty (p).
    let mut a = vec![vec![0.0f64; p + 1]; p];
    for i in 0..p {
        for j in 0..p {
            let mut s = 0.0;
            for k in 0..n {
                s += xs[i][k] * xs[j][k];
            }
            a[i][j] = s;
        }
        let mut s = 0.0;
        for k in 0..n {
            s += xs[i][k] * y[k];
        }
        a[i][p] = s;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..p {
        let pivot = (col..p).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        for row in 0..p {
            if row != col {
                let f = a[row][col] / a[col][col];
                for k in col..=p {
                    a[row][k] -= f * a[col][k];
                }
            }
        }
    }
    Some((0..p).map(|i| a[i][p] / a[i][i]).collect())
}

/// Standardized linear-SEM path coefficient of `cause → effect`,
/// controlling for the given covariates. All series are standardized
/// first, so the result is scale-free and equals Pearson's r when
/// `covariates` is empty. Returns 0.0 for degenerate inputs.
pub fn sem_coefficient(cause: &[f64], effect: &[f64], covariates: &[&[f64]]) -> f64 {
    let zc = standardize(cause);
    let ze = standardize(effect);
    let zcov: Vec<Vec<f64>> = covariates.iter().map(|c| standardize(c)).collect();
    let mut preds: Vec<&[f64]> = vec![&zc];
    preds.extend(zcov.iter().map(|v| v.as_slice()));
    match ols(&preds, &ze) {
        Some(beta) if !beta.is_empty() => beta[0].clamp(-1.0, 1.0),
        _ => 0.0,
    }
}

/// Fisher-z significance test for a (partial) correlation: returns the
/// two-sided p-value. `cond` is the size of the conditioning set.
pub fn fisher_z_p_value(r: f64, n: usize, cond: usize) -> f64 {
    if n <= cond + 3 {
        return 1.0;
    }
    let r = r.clamp(-0.999_999, 0.999_999);
    let z = 0.5 * ((1.0 + r) / (1.0 - r)).ln();
    let se = 1.0 / ((n - cond - 3) as f64).sqrt();
    let stat = (z / se).abs();
    (2.0 * (1.0 - normal_cdf(stat))).clamp(0.0, 1.0)
}

/// Undirected skeleton over `vars` learned PC-style: an edge `(i, j)`
/// survives iff no conditioning set of size ≤ `max_cond` (drawn from
/// the other variables) makes the partial correlation insignificant
/// at `alpha`.
pub fn pc_skeleton(vars: &[&[f64]], alpha: f64, max_cond: usize) -> Vec<(usize, usize)> {
    let m = vars.len();
    let n = vars.first().map_or(0, |v| v.len());
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..m {
        for j in (i + 1)..m {
            let mut independent = false;
            // Size-0 test.
            let r0 = pearson(vars[i], vars[j]).r;
            if fisher_z_p_value(r0, n, 0) > alpha {
                independent = true;
            }
            // Size-1..=max_cond tests over single conditioning
            // variables and pairs (sufficient for the profile use
            // case; full PC enumerates all subsets).
            if !independent && max_cond >= 1 {
                'outer: for k in 0..m {
                    if k == i || k == j {
                        continue;
                    }
                    let r1 = partial_correlation(vars[i], vars[j], &[vars[k]]);
                    if fisher_z_p_value(r1, n, 1) > alpha {
                        independent = true;
                        break;
                    }
                    if max_cond >= 2 {
                        for l in (k + 1)..m {
                            if l == i || l == j {
                                continue;
                            }
                            let r2 = partial_correlation(vars[i], vars[j], &[vars[k], vars[l]]);
                            if fisher_z_p_value(r2, n, 2) > alpha {
                                independent = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
            if !independent {
                edges.push((i, j));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise(rng: &mut StdRng, scale: f64) -> f64 {
        // Irwin–Hall approximate Gaussian.
        let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        s * scale
    }

    #[test]
    fn ols_recovers_coefficients() {
        let x1: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let x2: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64).collect();
        let y: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let beta = ols(&[&x1, &x2], &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn ols_detects_singularity() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x_dup = x.clone();
        let y = x.clone();
        assert!(ols(&[&x, &x_dup], &y).is_none());
    }

    #[test]
    fn sem_coefficient_equals_pearson_without_covariates() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..300).map(|_| noise(&mut rng, 1.0)).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.7 * v + noise(&mut rng, 0.3)).collect();
        let coeff = sem_coefficient(&x, &y, &[]);
        let r = pearson(&x, &y).r;
        assert!((coeff - r).abs() < 1e-9);
        assert!(coeff > 0.8);
    }

    #[test]
    fn sem_coefficient_controls_for_confounder() {
        // z -> x, z -> y, no direct edge: controlling for z should
        // shrink the coefficient toward zero.
        let mut rng = StdRng::seed_from_u64(2);
        let z: Vec<f64> = (0..500).map(|_| noise(&mut rng, 1.0)).collect();
        let x: Vec<f64> = z.iter().map(|v| v + noise(&mut rng, 0.2)).collect();
        let y: Vec<f64> = z.iter().map(|v| -v + noise(&mut rng, 0.2)).collect();
        let marginal = sem_coefficient(&x, &y, &[]).abs();
        let controlled = sem_coefficient(&x, &y, &[&z]).abs();
        assert!(marginal > 0.8);
        assert!(controlled < 0.25, "controlled was {controlled}");
    }

    #[test]
    fn degenerate_sem_inputs_are_zero() {
        assert_eq!(
            sem_coefficient(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], &[]),
            0.0
        );
    }

    #[test]
    fn pc_skeleton_recovers_chain() {
        // x -> y -> w: the x–w edge must be removed by conditioning
        // on y.
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f64> = (0..800).map(|_| noise(&mut rng, 1.0)).collect();
        let y: Vec<f64> = x.iter().map(|v| v + noise(&mut rng, 0.4)).collect();
        let w: Vec<f64> = y.iter().map(|v| v + noise(&mut rng, 0.4)).collect();
        let edges = pc_skeleton(&[&x, &y, &w], 0.01, 1);
        assert!(edges.contains(&(0, 1)), "{edges:?}");
        assert!(edges.contains(&(1, 2)), "{edges:?}");
        assert!(
            !edges.contains(&(0, 2)),
            "chain edge must vanish: {edges:?}"
        );
    }

    #[test]
    fn fisher_z_small_samples_insignificant() {
        assert_eq!(fisher_z_p_value(0.9, 4, 1), 1.0);
        assert!(fisher_z_p_value(0.9, 100, 0) < 1e-6);
        assert!(fisher_z_p_value(0.05, 50, 0) > 0.5);
    }
}
