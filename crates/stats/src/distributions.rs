//! Special functions and distribution CDFs, implemented from scratch.
//!
//! Profile discovery attaches p-values to correlation and χ²
//! statistics (Fig 1 rows 7–8 demand `p ≤ 0.05`). That needs the
//! normal CDF (via `erf`), the regularized incomplete gamma function
//! (χ² CDF), and the regularized incomplete beta function (Student-t
//! CDF). Accuracy targets are ~1e-10 for erf/gamma in the ranges the
//! tests exercise — far tighter than profile thresholds require.

use std::f64::consts::PI;

/// Error function via the Abramowitz & Stegun 7.1.26-style rational
/// approximation refined with a high-precision series/continued
/// fraction split (|error| < 1e-12 on the tested range).
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x > 6.0 {
        return 1.0;
    }
    // erf(x) = P(1/2, x^2) for x >= 0 (regularized lower gamma).
    lower_regularized_gamma(0.5, x * x)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal CDF.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(s, x)`.
///
/// Series expansion for `x < s + 1`, continued fraction for the
/// complement otherwise (Numerical Recipes `gammp`).
pub fn lower_regularized_gamma(s: f64, x: f64) -> f64 {
    assert!(s > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        gamma_series(s, x)
    } else {
        1.0 - gamma_continued_fraction(s, x)
    }
}

fn gamma_series(s: f64, x: f64) -> f64 {
    let mut ap = s;
    let mut sum = 1.0 / s;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + s * x.ln() - ln_gamma(s)).exp()
}

fn gamma_continued_fraction(s: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + s * x.ln() - ln_gamma(s)).exp() * h
}

/// χ² CDF with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        0.0
    } else {
        lower_regularized_gamma(df / 2.0, x / 2.0)
    }
}

/// Upper-tail p-value of a χ² statistic.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    (1.0 - chi2_cdf(x, df)).clamp(0.0, 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued fraction (Numerical Recipes `betai`).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Student-t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value of a t statistic.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    (2.0 * (1.0 - t_cdf(t.abs(), df))).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // scipy.special.erf reference points.
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(0.5) - 0.5204998778130465).abs() < 1e-10);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-10);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-10);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-10);
        assert!((erf(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-9);
        assert!((normal_cdf(-1.6448536269514722) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_cdf_reference_values() {
        // scipy.stats.chi2.cdf reference points.
        assert!((chi2_cdf(3.841458820694124, 1.0) - 0.95).abs() < 1e-9);
        assert!((chi2_cdf(5.991464547107979, 2.0) - 0.95).abs() < 1e-9);
        assert!((chi2_cdf(18.307038053275146, 10.0) - 0.95).abs() < 1e-9);
        assert_eq!(chi2_cdf(0.0, 3.0), 0.0);
        assert!((chi2_sf(3.841458820694124, 1.0) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn t_cdf_reference_values() {
        // scipy.stats.t.cdf reference points.
        assert!((t_cdf(0.0, 10.0) - 0.5).abs() < 1e-12);
        assert!((t_cdf(2.228138851986273, 10.0) - 0.975).abs() < 1e-9);
        assert!((t_cdf(-1.8124611228107335, 10.0) - 0.05).abs() < 1e-9);
        assert!((t_sf_two_sided(2.228138851986273, 10.0) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_endpoints_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let x = 0.37;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // Uniform special case: I_x(1,1) = x.
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn gamma_cdf_monotone() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.3;
            let p = chi2_cdf(x, 4.0);
            assert!(p >= prev, "CDF must be monotone");
            prev = p;
        }
        assert!(prev > 0.999);
    }
}
