//! Equi-width histograms and distribution distances.
//!
//! Used by the synthetic scenarios to plant and verify distribution
//! skew (cf. the paper's Example 2, where a skewed batch distribution
//! causes timeouts) and by tests to compare pre/post-transformation
//! distributions.

/// An equi-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f64,
    /// Exclusive upper edge of the last bin (the max value itself is
    /// folded into the last bin).
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub n: u64,
}

impl Histogram {
    /// Build with `bins` equal-width buckets spanning the data range.
    /// Returns `None` for empty data or `bins == 0`. Constant data
    /// produces a single fully-loaded bin.
    pub fn fit(values: &[f64], bins: usize) -> Option<Histogram> {
        if values.is_empty() || bins == 0 {
            return None;
        }
        let lo = values.iter().copied().reduce(f64::min)?;
        let hi = values.iter().copied().reduce(f64::max)?;
        let mut counts = vec![0u64; bins];
        if hi == lo {
            counts[0] = values.len() as u64;
            return Some(Histogram {
                lo,
                hi,
                counts,
                n: values.len() as u64,
            });
        }
        let width = (hi - lo) / bins as f64;
        for &v in values {
            let mut b = ((v - lo) / width) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += 1;
        }
        Some(Histogram {
            lo,
            hi,
            counts,
            n: values.len() as u64,
        })
    }

    /// Normalized bin probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.n as f64)
            .collect()
    }
}

/// Total variation distance between two discrete distributions
/// (half L1). Panics on length mismatch.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must align");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Two-sample Kolmogorov–Smirnov statistic (max CDF gap).
pub fn ks_statistic(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.is_empty() || ys.is_empty() {
        return 0.0;
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d.max(1.0 - (i.min(a.len()) as f64 / na).min(j as f64 / nb))
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_cover_range() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::fit(&values, 10).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert!(h.counts.iter().all(|&c| c == 10), "{:?}", h.counts);
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_degenerate_cases() {
        assert!(Histogram::fit(&[], 5).is_none());
        assert!(Histogram::fit(&[1.0], 0).is_none());
        let h = Histogram::fit(&[3.0, 3.0, 3.0], 4).unwrap();
        assert_eq!(h.counts, vec![3, 0, 0, 0]);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::fit(&[0.0, 1.0, 2.0], 2).unwrap();
        assert_eq!(h.counts, vec![1, 2]);
    }

    #[test]
    fn tv_distance_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ks_detects_shift() {
        let a: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        assert!(ks_statistic(&a, &b) > 0.45);
        assert!(ks_statistic(&a, &a) < 0.01);
        assert_eq!(ks_statistic(&[], &a), 0.0);
    }
}
