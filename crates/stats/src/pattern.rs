//! Rexpy-style text pattern learning.
//!
//! Fig 1 row 3 discovers a text-domain profile as "a regex over
//! `D.A_j` learned via pattern discovery \[56\]" (the Python `rexpy`
//! package, unavailable here). This module implements the same idea
//! from scratch: tokenize each string into runs of character classes,
//! then generalize run lengths across all examples into per-class
//! `{min, max}` bounds. The learned [`Pattern`] supports matching
//! (for violation counting) and minimal repair (insert/strip
//! characters to meet length bounds — the paper's suggested text
//! transformation).

use std::fmt;

/// A character class recognized by the tokenizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharClass {
    /// ASCII digits `0-9`.
    Digit,
    /// ASCII letters `a-zA-Z`.
    Alpha,
    /// Whitespace.
    Space,
    /// A specific punctuation/symbol character (kept literal, since
    /// separators like `-` or `@` are usually structural).
    Literal(char),
}

impl CharClass {
    fn of(c: char) -> CharClass {
        if c.is_ascii_digit() {
            CharClass::Digit
        } else if c.is_ascii_alphabetic() {
            CharClass::Alpha
        } else if c.is_whitespace() {
            CharClass::Space
        } else {
            CharClass::Literal(c)
        }
    }

    /// A canonical character from this class, used for repairs.
    fn filler(&self) -> char {
        match self {
            CharClass::Digit => '0',
            CharClass::Alpha => 'x',
            CharClass::Space => ' ',
            CharClass::Literal(c) => *c,
        }
    }

    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Digit => c.is_ascii_digit(),
            CharClass::Alpha => c.is_ascii_alphabetic(),
            CharClass::Space => c.is_whitespace(),
            CharClass::Literal(l) => c == *l,
        }
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharClass::Digit => write!(f, r"\d"),
            CharClass::Alpha => write!(f, r"[a-zA-Z]"),
            CharClass::Space => write!(f, r"\s"),
            CharClass::Literal(c) => write!(f, "{}", regex_escape(*c)),
        }
    }
}

fn regex_escape(c: char) -> String {
    if "\\^$.|?*+()[]{}".contains(c) {
        format!("\\{c}")
    } else {
        c.to_string()
    }
}

/// One generalized token: a character class repeated between `min`
/// and `max` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The class of every character in the run.
    pub class: CharClass,
    /// Minimum observed run length.
    pub min: usize,
    /// Maximum observed run length.
    pub max: usize,
}

/// A learned pattern: a sequence of generalized tokens, plus global
/// length bounds. Strings match if they tokenize into the same class
/// sequence with run lengths inside the bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    tokens: Vec<Token>,
    /// Minimum total string length observed.
    pub min_len: usize,
    /// Maximum total string length observed.
    pub max_len: usize,
}

fn tokenize(s: &str) -> Vec<(CharClass, usize)> {
    let mut out: Vec<(CharClass, usize)> = Vec::new();
    for c in s.chars() {
        let cls = CharClass::of(c);
        match out.last_mut() {
            Some((last, n)) if *last == cls => *n += 1,
            _ => out.push((cls, 1)),
        }
    }
    out
}

impl Pattern {
    /// Learn a pattern from examples.
    ///
    /// Returns `None` when the examples are empty or do not share a
    /// common class-sequence structure — in that case only the global
    /// length bounds are meaningful, and callers fall back to a
    /// length-only pattern via [`Pattern::length_only`].
    pub fn learn<S: AsRef<str>>(examples: &[S]) -> Option<Pattern> {
        let first = examples.first()?;
        let mut tokens: Vec<Token> = tokenize(first.as_ref())
            .into_iter()
            .map(|(class, n)| Token {
                class,
                min: n,
                max: n,
            })
            .collect();
        let mut min_len = first.as_ref().chars().count();
        let mut max_len = min_len;
        for ex in &examples[1..] {
            let s = ex.as_ref();
            let len = s.chars().count();
            min_len = min_len.min(len);
            max_len = max_len.max(len);
            let toks = tokenize(s);
            if toks.len() != tokens.len()
                || toks.iter().zip(&tokens).any(|((c, _), t)| *c != t.class)
            {
                return None;
            }
            for ((_, n), t) in toks.iter().zip(tokens.iter_mut()) {
                t.min = t.min.min(*n);
                t.max = t.max.max(*n);
            }
        }
        Some(Pattern {
            tokens,
            min_len,
            max_len,
        })
    }

    /// A structure-free pattern that only constrains total length.
    pub fn length_only<S: AsRef<str>>(examples: &[S]) -> Option<Pattern> {
        let lens: Vec<usize> = examples
            .iter()
            .map(|s| s.as_ref().chars().count())
            .collect();
        let min_len = *lens.iter().min()?;
        let max_len = *lens.iter().max()?;
        Some(Pattern {
            tokens: Vec::new(),
            min_len,
            max_len,
        })
    }

    /// Whether this pattern constrains structure (vs length only).
    pub fn is_structural(&self) -> bool {
        !self.tokens.is_empty()
    }

    /// Whether `s` conforms to the pattern.
    ///
    /// Structural patterns check the token structure (the per-run
    /// bounds already bound the total length); length-only patterns
    /// check the global length bounds.
    pub fn matches(&self, s: &str) -> bool {
        if self.tokens.is_empty() {
            let len = s.chars().count();
            return len >= self.min_len && len <= self.max_len;
        }
        let toks = tokenize(s);
        toks.len() == self.tokens.len()
            && toks
                .iter()
                .zip(&self.tokens)
                .all(|((c, n), t)| *c == t.class && *n >= t.min && *n <= t.max)
    }

    /// Minimally repair `s` to match the pattern, per Fig 1 row 3's
    /// transformation: "insert (remove) characters to increase
    /// (reduce) text length". Structural patterns rebuild each run to
    /// the closest in-bounds length, preserving original characters
    /// where the classes agree; length-only patterns pad or truncate.
    pub fn repair(&self, s: &str) -> String {
        if self.matches(s) {
            return s.to_string();
        }
        if self.tokens.is_empty() {
            return self.repair_length(s);
        }
        let toks = tokenize(s);
        if toks.len() == self.tokens.len()
            && toks
                .iter()
                .zip(&self.tokens)
                .all(|((c, _), t)| *c == t.class)
        {
            // Same structure: clamp run lengths.
            let mut out = String::new();
            let mut chars = s.chars();
            for ((_, n), t) in toks.iter().zip(&self.tokens) {
                let run: String = chars.by_ref().take(*n).collect();
                let target = (*n).clamp(t.min, t.max);
                if target <= *n {
                    out.extend(run.chars().take(target));
                } else {
                    out.push_str(&run);
                    out.extend(std::iter::repeat_n(t.class.filler(), target - n));
                }
            }
            out
        } else {
            // Different structure: synthesize a canonical instance,
            // reusing a prefix of compatible characters.
            let mut source = s.chars().peekable();
            let mut out = String::new();
            for t in &self.tokens {
                for _ in 0..t.min.max(1).min(t.max.max(1)) {
                    match source.peek() {
                        Some(&c) if t.class.matches(c) => {
                            out.push(c);
                            source.next();
                        }
                        _ => out.push(t.class.filler()),
                    }
                }
            }
            out
        }
    }

    fn repair_length(&self, s: &str) -> String {
        let len = s.chars().count();
        if len > self.max_len {
            s.chars().take(self.max_len).collect()
        } else {
            let mut out = s.to_string();
            out.extend(std::iter::repeat_n(' ', self.min_len - len));
            out
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tokens.is_empty() {
            return write!(f, r".{{{},{}}}", self.min_len, self.max_len);
        }
        for t in &self.tokens {
            if t.min == t.max {
                if t.min == 1 {
                    write!(f, "{}", t.class)?;
                } else {
                    write!(f, "{}{{{}}}", t.class, t.min)?;
                }
            } else {
                write!(f, "{}{{{},{}}}", t.class, t.min, t.max)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_phone_number_pattern() {
        let examples = ["2088556597", "2085374523", "2766465009"];
        let p = Pattern::learn(&examples).unwrap();
        assert!(p.is_structural());
        assert_eq!(p.to_string(), r"\d{10}");
        assert!(p.matches("4047747803"));
        assert!(!p.matches("404774780"), "too short");
        assert!(!p.matches("404-774-7803"), "wrong structure");
    }

    #[test]
    fn learns_structured_ids() {
        let examples = ["AB-123", "XY-4567", "QQ-99"];
        let p = Pattern::learn(&examples).unwrap();
        assert_eq!(p.to_string(), r"[a-zA-Z]{2}-\d{2,4}");
        assert!(p.matches("ZZ-100"));
        assert!(!p.matches("Z-100"));
        assert!(!p.matches("ZZ-12345"));
    }

    #[test]
    fn heterogeneous_examples_fall_back_to_length() {
        let examples = ["abc", "12345", "a-1"];
        assert!(Pattern::learn(&examples).is_none());
        let p = Pattern::length_only(&examples).unwrap();
        assert!(!p.is_structural());
        assert_eq!((p.min_len, p.max_len), (3, 5));
        assert!(p.matches("wxyz"));
        assert!(!p.matches("toolongstring"));
    }

    #[test]
    fn repair_clamps_run_lengths() {
        // Digit run bounds {2, 4} (learned from 99 / 123 / 4567).
        let p = Pattern::learn(&["AB-123", "XY-4567", "QQ-99"]).unwrap();
        // Too many digits: truncated.
        assert_eq!(p.repair("ZZ-999999"), "ZZ-9999");
        // Too few digits: padded with the class filler.
        assert_eq!(p.repair("ZZ-1"), "ZZ-10");
        // Already matching: unchanged.
        assert_eq!(p.repair("AA-22"), "AA-22");
        // Repairs always match afterwards.
        for s in ["ZZ-999999", "ZZ-1", "5", "hello world"] {
            assert!(p.matches(&p.repair(s)), "repair of {s:?} must match");
        }
    }

    #[test]
    fn repair_length_only() {
        let p = Pattern::length_only(&["abcd", "abcdef"]).unwrap();
        assert_eq!(p.repair("ab"), "ab  ");
        assert_eq!(p.repair("abcdefgh"), "abcdef");
        assert_eq!(p.repair("abcde"), "abcde");
    }

    #[test]
    fn empty_examples_learn_nothing() {
        let none: &[&str] = &[];
        assert!(Pattern::learn(none).is_none());
        assert!(Pattern::length_only(none).is_none());
    }

    #[test]
    fn display_escapes_regex_metachars() {
        let p = Pattern::learn(&["a.b", "c.d"]).unwrap();
        assert_eq!(p.to_string(), r"[a-zA-Z]\.[a-zA-Z]");
    }
}
