//! # dp-stats — statistics substrate
//!
//! Everything in Fig 1 of the DataPrism paper that is statistical
//! lives here, built from scratch:
//!
//! - [`descriptive`] — means, variances, quantiles, modes.
//! - [`distributions`] — erf/normal, regularized incomplete gamma
//!   (χ² CDF), and a Student-t CDF, so correlation and χ² profile
//!   discovery can attach p-values (Fig 1 rows 7–8 require
//!   `p ≤ 0.05`).
//! - [`correlation`] — Pearson (row 8) and Spearman coefficients with
//!   significance tests.
//! - [`chi2`] — χ² independence statistic over contingency tables
//!   (row 7).
//! - [`outlier`] — z-score / IQR / MAD detectors (row 4's `O`
//!   functions; the paper's example `O_1.5` is
//!   [`outlier::ZScoreDetector`] with `k = 1.5`).
//! - [`histogram`] — equi-width histograms and distribution distances
//!   used by tests and the synthetic scenarios.
//! - [`pattern`] — a Rexpy-style pattern learner for text domains
//!   (row 3's "regex over `D.A_j` learned via pattern discovery").
//! - [`causal`] — a TETRAD substitute: standardized linear-SEM
//!   coefficients and a partial-correlation PC skeleton (row 9).
//! - [`sketch`] — streaming per-column summaries (moments, ranks,
//!   hashed co-occurrence codes) whose conservative pairwise
//!   dependence estimates let discovery skip the exact independence
//!   test on pairs the sketch can already rule out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels below are written as explicit index loops to match
// the textbook linear-algebra pseudocode they implement.
#![allow(clippy::needless_range_loop)]

pub mod causal;
pub mod chi2;
pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod histogram;
pub mod information;
pub mod outlier;
pub mod pattern;
pub mod sketch;

pub use chi2::{chi_squared, chi_squared_counts, Chi2Result};
pub use correlation::{pearson, spearman, Correlation};
pub use outlier::{IqrDetector, MadDetector, OutlierDetector, ZScoreDetector};
pub use pattern::Pattern;
