//! Outlier detection functions.
//!
//! Fig 1 row 4's `Outlier` profile is parameterized by a detection
//! function `O(A, a) → {True, False}` "learned from `D.A_j`'s
//! distribution". We provide the standard parametric and robust
//! detectors; the paper's worked example `O_1.5` (flag values more
//! than 1.5σ from the mean) is [`ZScoreDetector`] with `k = 1.5`.

use crate::descriptive::{mad, mean, median, quantile, std_dev};
use std::fmt;

/// A fitted outlier detector: decides whether a single value is an
/// outlier with respect to the attribute it was fitted on.
pub trait OutlierDetector: fmt::Debug {
    /// Fit the detector to the attribute's (non-NULL) values.
    /// Returns false (no-op detector) if the data is degenerate.
    fn fit(&mut self, values: &[f64]) -> bool;
    /// Whether `value` is an outlier under the fitted parameters.
    fn is_outlier(&self, value: f64) -> bool;
    /// Inclusive range `[lo, hi]` of non-outlying values, when the
    /// detector is interval-shaped (all provided ones are). Used by
    /// clamping transformations.
    fn bounds(&self) -> Option<(f64, f64)>;
    /// Short name used in profile rendering.
    fn name(&self) -> String;
}

/// Mean ± k·σ detector (the paper's `O_k`).
#[derive(Debug, Clone)]
pub struct ZScoreDetector {
    /// Number of standard deviations tolerated.
    pub k: f64,
    mean: f64,
    std: f64,
    fitted: bool,
}

impl ZScoreDetector {
    /// Unfitted detector flagging values beyond `k` standard
    /// deviations.
    pub fn new(k: f64) -> Self {
        ZScoreDetector {
            k,
            mean: 0.0,
            std: 0.0,
            fitted: false,
        }
    }
}

impl OutlierDetector for ZScoreDetector {
    fn fit(&mut self, values: &[f64]) -> bool {
        match (mean(values), std_dev(values)) {
            (Some(m), Some(s)) if s > 0.0 => {
                self.mean = m;
                self.std = s;
                self.fitted = true;
                true
            }
            _ => {
                self.fitted = false;
                false
            }
        }
    }

    fn is_outlier(&self, value: f64) -> bool {
        self.fitted && (value - self.mean).abs() > self.k * self.std
    }

    fn bounds(&self) -> Option<(f64, f64)> {
        self.fitted
            .then_some((self.mean - self.k * self.std, self.mean + self.k * self.std))
    }

    fn name(&self) -> String {
        format!("zscore(k={})", self.k)
    }
}

/// Tukey fences: outside `[Q1 - k·IQR, Q3 + k·IQR]` (k = 1.5
/// conventionally).
#[derive(Debug, Clone)]
pub struct IqrDetector {
    /// Fence multiplier.
    pub k: f64,
    lo: f64,
    hi: f64,
    fitted: bool,
}

impl IqrDetector {
    /// Unfitted Tukey-fence detector.
    pub fn new(k: f64) -> Self {
        IqrDetector {
            k,
            lo: 0.0,
            hi: 0.0,
            fitted: false,
        }
    }
}

impl OutlierDetector for IqrDetector {
    fn fit(&mut self, values: &[f64]) -> bool {
        let (Some(q1), Some(q3)) = (quantile(values, 0.25), quantile(values, 0.75)) else {
            self.fitted = false;
            return false;
        };
        let iqr = q3 - q1;
        self.lo = q1 - self.k * iqr;
        self.hi = q3 + self.k * iqr;
        self.fitted = true;
        true
    }

    fn is_outlier(&self, value: f64) -> bool {
        self.fitted && (value < self.lo || value > self.hi)
    }

    fn bounds(&self) -> Option<(f64, f64)> {
        self.fitted.then_some((self.lo, self.hi))
    }

    fn name(&self) -> String {
        format!("iqr(k={})", self.k)
    }
}

/// Median ± k·MAD robust detector (MAD scaled by 1.4826 to be a
/// consistent σ estimator under normality).
#[derive(Debug, Clone)]
pub struct MadDetector {
    /// Number of scaled MADs tolerated.
    pub k: f64,
    median: f64,
    scaled_mad: f64,
    fitted: bool,
}

impl MadDetector {
    /// Unfitted MAD detector.
    pub fn new(k: f64) -> Self {
        MadDetector {
            k,
            median: 0.0,
            scaled_mad: 0.0,
            fitted: false,
        }
    }
}

impl OutlierDetector for MadDetector {
    fn fit(&mut self, values: &[f64]) -> bool {
        match (median(values), mad(values)) {
            (Some(m), Some(d)) if d > 0.0 => {
                self.median = m;
                self.scaled_mad = 1.4826 * d;
                self.fitted = true;
                true
            }
            _ => {
                self.fitted = false;
                false
            }
        }
    }

    fn is_outlier(&self, value: f64) -> bool {
        self.fitted && (value - self.median).abs() > self.k * self.scaled_mad
    }

    fn bounds(&self) -> Option<(f64, f64)> {
        self.fitted.then_some({
            (
                self.median - self.k * self.scaled_mad,
                self.median + self.k * self.scaled_mad,
            )
        })
    }

    fn name(&self) -> String {
        format!("mad(k={})", self.k)
    }
}

/// Fraction of `values` flagged by a fitted detector.
pub fn outlier_fraction(detector: &dyn OutlierDetector, values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| detector.is_outlier(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_matches_paper_example() {
        // People_fail ages (Fig 2): only 60 is an outlier under O_1.5.
        let ages = [45.0, 40.0, 60.0, 22.0, 41.0, 32.0, 25.0, 35.0, 25.0, 20.0];
        let mut det = ZScoreDetector::new(1.5);
        assert!(det.fit(&ages));
        let outliers: Vec<f64> = ages
            .iter()
            .copied()
            .filter(|&a| det.is_outlier(a))
            .collect();
        assert_eq!(outliers, vec![60.0]);
        assert!((outlier_fraction(&det, &ages) - 0.1).abs() < 1e-12);
        let (lo, hi) = det.bounds().unwrap();
        assert!(lo < 20.0 && (hi - 52.17).abs() < 0.01);
    }

    #[test]
    fn degenerate_fit_flags_nothing() {
        let mut det = ZScoreDetector::new(2.0);
        assert!(!det.fit(&[5.0, 5.0, 5.0]), "zero variance");
        assert!(!det.is_outlier(1e9));
        assert!(det.bounds().is_none());
        let mut det = MadDetector::new(2.0);
        assert!(!det.fit(&[]));
    }

    #[test]
    fn iqr_detector_flags_extremes() {
        let mut values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        values.push(1000.0);
        let mut det = IqrDetector::new(1.5);
        assert!(det.fit(&values));
        assert!(det.is_outlier(1000.0));
        assert!(!det.is_outlier(50.0));
    }

    #[test]
    fn mad_detector_is_robust_to_contamination() {
        // 10% huge contamination barely moves median/MAD.
        let mut values: Vec<f64> = (0..90).map(|i| (i % 10) as f64).collect();
        values.extend(std::iter::repeat_n(1e6, 10));
        let mut det = MadDetector::new(3.0);
        assert!(det.fit(&values));
        assert!(det.is_outlier(1e6));
        assert!(!det.is_outlier(5.0));
    }

    #[test]
    fn names_render() {
        assert_eq!(ZScoreDetector::new(1.5).name(), "zscore(k=1.5)");
        assert_eq!(IqrDetector::new(3.0).name(), "iqr(k=3)");
        assert_eq!(MadDetector::new(2.5).name(), "mad(k=2.5)");
    }
}
