//! Information-theoretic dependence measures and the KS test's
//! asymptotic p-value — companions to the χ²/Pearson measures used by
//! the `Indep` profiles, useful when extending the framework with
//! custom dependence kinds.

use dp_frame::groupby::ContingencyTable;

/// Shannon entropy (nats) of a count vector.
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (nats) of a contingency table:
/// `I(X;Y) = H(X) + H(Y) − H(X,Y)`. Zero for degenerate tables.
pub fn mutual_information(table: &ContingencyTable) -> f64 {
    let joint: Vec<u64> = table.counts.iter().flatten().copied().collect();
    let hx = entropy(&table.row_totals());
    let hy = entropy(&table.col_totals());
    let hxy = entropy(&joint);
    (hx + hy - hxy).max(0.0)
}

/// Normalized mutual information in `[0, 1]`:
/// `I(X;Y) / min(H(X), H(Y))`. Zero when either marginal is constant.
pub fn normalized_mutual_information(table: &ContingencyTable) -> f64 {
    let hx = entropy(&table.row_totals());
    let hy = entropy(&table.col_totals());
    let denom = hx.min(hy);
    if denom <= 0.0 {
        0.0
    } else {
        (mutual_information(table) / denom).clamp(0.0, 1.0)
    }
}

/// Asymptotic p-value of a two-sample Kolmogorov–Smirnov statistic
/// `d` with sample sizes `n` and `m` (the Kolmogorov distribution's
/// series, as in Numerical Recipes `probks`).
pub fn ks_p_value(d: f64, n: usize, m: usize) -> f64 {
    if n == 0 || m == 0 {
        return 1.0;
    }
    let ne = (n * m) as f64 / (n + m) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut term_prev = f64::INFINITY;
    for j in 1..=100 {
        let term = 2.0 * sign * (-2.0 * lambda * lambda * (j * j) as f64).exp();
        sum += term;
        if term.abs() < 1e-12 || term.abs() < 1e-8 * term_prev {
            break;
        }
        term_prev = term.abs();
        sign = -sign;
    }
    sum.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::ks_statistic;
    use dp_frame::{Column, DType, DataFrame};

    fn table(a: &[&str], b: &[&str]) -> ContingencyTable {
        let df = DataFrame::from_columns(vec![
            Column::from_strings(
                "a",
                DType::Categorical,
                a.iter().map(|s| Some(s.to_string())).collect(),
            ),
            Column::from_strings(
                "b",
                DType::Categorical,
                b.iter().map(|s| Some(s.to_string())).collect(),
            ),
        ])
        .unwrap();
        ContingencyTable::from_frame(&df, "a", "b").unwrap()
    }

    #[test]
    fn entropy_reference_values() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[10]), 0.0, "deterministic");
        assert!((entropy(&[5, 5]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn mi_zero_for_independence_max_for_identity() {
        // Independent balanced 2x2.
        let t = table(&["x", "x", "y", "y"], &["p", "q", "p", "q"]);
        assert!(mutual_information(&t).abs() < 1e-12);
        assert_eq!(normalized_mutual_information(&t), 0.0);
        // Perfect dependence: NMI = 1.
        let t = table(&["x", "x", "y", "y"], &["p", "p", "q", "q"]);
        assert!((normalized_mutual_information(&t) - 1.0).abs() < 1e-12);
        assert!((mutual_information(&t) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn nmi_degenerate_marginal_is_zero() {
        let t = table(&["x", "x", "x"], &["p", "q", "p"]);
        assert_eq!(normalized_mutual_information(&t), 0.0);
    }

    #[test]
    fn ks_p_value_behaviour() {
        // Identical large samples: d ≈ 0, p ≈ 1.
        let a: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let d = ks_statistic(&a, &a);
        assert!(ks_p_value(d, 400, 400) > 0.99);
        // Disjoint samples: d = 1, p ≈ 0.
        let b: Vec<f64> = (0..400).map(|i| 1000.0 + i as f64).collect();
        let d = ks_statistic(&a, &b);
        assert!(ks_p_value(d, 400, 400) < 1e-6);
        // Monotone in d.
        assert!(ks_p_value(0.05, 100, 100) > ks_p_value(0.2, 100, 100));
        assert_eq!(ks_p_value(0.5, 0, 10), 1.0);
    }
}
