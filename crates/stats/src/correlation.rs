//! Correlation coefficients with significance tests.
//!
//! Fig 1 row 8 parameterizes the numeric `Indep` profile with the
//! Pearson correlation coefficient and requires a p-value ≤ 0.05 for
//! a dependence to count as discovered.

use crate::distributions::t_sf_two_sided;

/// A correlation estimate with its significance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// The coefficient in `[-1, 1]`.
    pub r: f64,
    /// Two-sided p-value under the null of zero correlation
    /// (t-distribution with `n - 2` df). `1.0` when `n < 3` or the
    /// coefficient is undefined.
    pub p_value: f64,
    /// Number of paired observations used.
    pub n: usize,
}

impl Correlation {
    /// Whether the dependence is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Pearson product-moment correlation between paired slices.
///
/// Pairs containing a NaN or infinite observation are dropped before
/// computing (listwise deletion); `n` reports the pairs actually used.
/// Returns `r = 0, p = 1` for degenerate inputs (fewer than 2 finite
/// pairs or zero variance) — profile discovery treats those as "no
/// dependence". Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Correlation {
    assert_eq!(xs.len(), ys.len(), "paired observations required");
    if xs
        .iter()
        .zip(ys)
        .any(|(x, y)| !x.is_finite() || !y.is_finite())
    {
        let (fx, fy) = finite_pairs(xs, ys);
        return pearson_finite(&fx, &fy);
    }
    pearson_finite(xs, ys)
}

/// The pairs where both observations are finite.
fn finite_pairs(xs: &[f64], ys: &[f64]) -> (Vec<f64>, Vec<f64>) {
    xs.iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip()
}

fn pearson_finite(xs: &[f64], ys: &[f64]) -> Correlation {
    let n = xs.len();
    if n < 2 {
        return Correlation {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Correlation {
            r: 0.0,
            p_value: 1.0,
            n,
        };
    }
    let r = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    let p_value = if n < 3 {
        1.0
    } else if r.abs() >= 1.0 {
        0.0
    } else {
        let df = (n - 2) as f64;
        let t = r * (df / (1.0 - r * r)).sqrt();
        t_sf_two_sided(t, df)
    };
    Correlation { r, p_value, n }
}

/// Average ranks (ties share the mean rank), 1-based. Callers must
/// pass finite values: `total_cmp` sorts NaNs to the end, which would
/// silently shift every average rank.
pub(crate) fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on average ranks), with the
/// same t-approximation p-value. Non-finite pairs are dropped *before*
/// ranking — ranking them would corrupt every other average rank.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Correlation {
    assert_eq!(xs.len(), ys.len(), "paired observations required");
    if xs
        .iter()
        .zip(ys)
        .any(|(x, y)| !x.is_finite() || !y.is_finite())
    {
        let (fx, fy) = finite_pairs(xs, ys);
        return pearson_finite(&ranks(&fx), &ranks(&fy));
    }
    pearson_finite(&ranks(xs), &ranks(ys))
}

/// Partial Pearson correlation of `x` and `y` controlling for a set
/// of variables `zs` (recursively, via the first-order recursion).
/// Used by the PC-skeleton search in [`crate::causal`].
pub fn partial_correlation(x: &[f64], y: &[f64], zs: &[&[f64]]) -> f64 {
    match zs.split_first() {
        None => pearson(x, y).r,
        Some((z, rest)) => {
            let rxy = partial_correlation(x, y, rest);
            let rxz = partial_correlation(x, z, rest);
            let ryz = partial_correlation(y, z, rest);
            let denom = ((1.0 - rxz * rxz) * (1.0 - ryz * ryz)).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                ((rxy - rxz * ryz) / denom).clamp(-1.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 6.0, 8.0, 10.0];
        let c = pearson(&xs, &ys);
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-9);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn reference_value() {
        // r = 0.8 exactly; t = 0.8·sqrt(3/0.36) ≈ 2.3094 with 3 df,
        // two-sided p ≈ 0.104 (just above the 0.10 critical t of
        // 2.3534).
        let c = pearson(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 2.0, 5.0, 4.0]);
        assert!((c.r - 0.8).abs() < 1e-12);
        assert!((c.p_value - 0.104).abs() < 1e-3, "{}", c.p_value);
    }

    #[test]
    fn degenerate_inputs_are_independent() {
        let c = pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(c.r, 0.0);
        assert_eq!(c.p_value, 1.0);
        let c = pearson(&[1.0], &[2.0]);
        assert_eq!(c.r, 0.0);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        let c = spearman(&xs, &ys);
        assert!((c.r - 1.0).abs() < 1e-12);
        // Pearson on the same data is < 1.
        assert!(pearson(&xs, &ys).r < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn nan_pairs_are_dropped_not_propagated() {
        // Regression: a single NaN observation used to poison r (every
        // sum became NaN, so `significant` was silently false).
        let xs = [1.0, 2.0, f64::NAN, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 7.0, 6.0, 8.0, 10.0];
        let c = pearson(&xs, &ys);
        let clean = pearson(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(c.n, 5, "NaN pair excluded from the count");
        assert_eq!(c.r.to_bits(), clean.r.to_bits());
        assert_eq!(c.p_value.to_bits(), clean.p_value.to_bits());
        // Infinities are equally un-summable.
        let c = pearson(&[1.0, f64::INFINITY, 3.0, 4.0, 5.0], &ys[..5]);
        assert!(c.r.is_finite() && c.p_value.is_finite());
        assert_eq!(c.n, 4);
    }

    #[test]
    fn too_few_finite_pairs_degenerate() {
        let c = pearson(&[1.0, f64::NAN, f64::NAN], &[2.0, 3.0, 4.0]);
        assert_eq!(c.r, 0.0);
        assert_eq!(c.p_value, 1.0);
        assert_eq!(c.n, 1);
    }

    #[test]
    fn spearman_ranks_are_not_corrupted_by_nan() {
        // Regression: ranks() sorted NaNs to the end via total_cmp, so
        // a NaN in xs shifted ranks in xs but not ys, breaking a
        // perfect monotone association.
        let xs = [1.0, 2.0, f64::NAN, 3.0, 4.0, 5.0];
        let ys = [1.0, 4.0, 2.5, 9.0, 16.0, 25.0];
        let c = spearman(&xs, &ys);
        assert_eq!(c.n, 5);
        assert!(
            (c.r - 1.0).abs() < 1e-12,
            "monotone after deletion, r = {}",
            c.r
        );
    }

    #[test]
    fn partial_correlation_removes_confounder() {
        // x and y both driven by z; conditioning on z should collapse
        // the correlation.
        let z: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let x: Vec<f64> = z.iter().map(|v| 2.0 * v + (v * 7.0).sin()).collect();
        let y: Vec<f64> = z.iter().map(|v| -1.5 * v + (v * 13.0).cos()).collect();
        let marginal = pearson(&x, &y).r.abs();
        let partial = partial_correlation(&x, &y, &[&z]).abs();
        assert!(marginal > 0.99);
        assert!(partial < 0.2, "partial was {partial}");
    }

    #[test]
    fn significance_threshold() {
        let c = Correlation {
            r: 0.5,
            p_value: 0.04,
            n: 20,
        };
        assert!(c.significant(0.05));
        assert!(!c.significant(0.01));
    }
}
