//! Property tests pinning the sketch merge algebra:
//!
//! - `merge` is commutative and associative for [`NumericSketch`],
//!   [`CategoricalSketch`], and [`ColumnSummary`];
//! - (build on chunk A) ⊕ (build on chunk B) is **bit-for-bit** the
//!   build over A∥B, for arbitrary chunkings — including empty
//!   chunks, all-null columns, and NaN/∞ payloads;
//! - fingerprints (bit-exact state digests) are what's compared, so
//!   a merge that differs anywhere — moments, centered arrays,
//!   ranks, bitmaps, key tables, bucket decisions — fails.
//!
//! Together with `tests/monitor_conformance.rs` this is the headline
//! invariant of the streaming monitor: an incrementally-maintained
//! sketch is indistinguishable from a from-scratch rebuild.

use dp_stats::sketch::{CategoricalSketch, ColumnSummary, NumericSketch, DEFAULT_BUCKETS};
use proptest::prelude::*;

/// Numeric payloads: ordinary finite values plus the awkward ones
/// (NaN, ±∞, signed zeros) and NULLs.
fn numeric_cell() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        6 => (-100.0f64..100.0).prop_map(Some),
        1 => Just(None),
        1 => prop::sample::select(vec![
            Some(f64::NAN),
            Some(f64::INFINITY),
            Some(f64::NEG_INFINITY),
            Some(0.0),
            Some(-0.0),
        ]),
    ]
}

/// Categorical payloads over a domain two chunks rarely cover alike.
fn categorical_cell() -> impl Strategy<Value = Option<&'static str>> {
    prop::sample::select(vec![
        None,
        Some("alpha"),
        Some("beta"),
        Some("gamma"),
        Some("delta"),
        Some("epsilon"),
        Some("zeta"),
    ])
}

/// Two cut points partitioning `len` rows into three chunks.
fn cuts(len: usize, a: f64, b: f64) -> (usize, usize) {
    let i = (a * (len + 1) as f64) as usize;
    let j = (b * (len + 1) as f64) as usize;
    (i.min(j).min(len), i.max(j).min(len))
}

fn numeric_chunk(cells: &[Option<f64>], lo: usize, hi: usize) -> NumericSketch {
    let pairs: Vec<(usize, f64)> = cells[lo..hi]
        .iter()
        .enumerate()
        .filter_map(|(k, v)| v.map(|x| (lo + k, x)))
        .collect();
    NumericSketch::build_at(lo, hi - lo, &pairs)
}

fn numeric_whole(cells: &[Option<f64>]) -> NumericSketch {
    numeric_chunk(cells, 0, cells.len())
}

fn categorical_chunk(cells: &[Option<&str>], lo: usize, hi: usize) -> CategoricalSketch {
    CategoricalSketch::from_values_at(lo, &cells[lo..hi], DEFAULT_BUCKETS)
}

fn summary_chunk(cells: &[Option<f64>], lo: usize, hi: usize) -> ColumnSummary {
    ColumnSummary::build(&dp_frame::Column::from_floats("x", cells[lo..hi].to_vec()))
}

fn summary_of_strings(cells: &[Option<&str>], lo: usize, hi: usize) -> ColumnSummary {
    ColumnSummary::build(&dp_frame::Column::from_strings(
        "c",
        dp_frame::DType::Categorical,
        cells[lo..hi]
            .iter()
            .map(|v| v.map(str::to_string))
            .collect(),
    ))
}

proptest! {
    #[test]
    fn numeric_merge_equals_rebuild_bit_for_bit(
        cells in prop::collection::vec(numeric_cell(), 0..=160),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let (i, j) = cuts(cells.len(), a, b);
        let whole = numeric_whole(&cells);
        let (ca, cb, cc) = (
            numeric_chunk(&cells, 0, i),
            numeric_chunk(&cells, i, j),
            numeric_chunk(&cells, j, cells.len()),
        );
        // Chunked rebuild identity.
        let merged = ca.merge(&cb).merge(&cc);
        prop_assert_eq!(merged.fingerprint(), whole.fingerprint());
        // Commutativity (bit-for-bit, any operand order).
        prop_assert_eq!(
            ca.merge(&cb).fingerprint(),
            cb.merge(&ca).fingerprint()
        );
        // Associativity.
        prop_assert_eq!(
            ca.merge(&cb).merge(&cc).fingerprint(),
            ca.merge(&cb.merge(&cc)).fingerprint()
        );
    }

    #[test]
    fn categorical_keyed_merge_equals_rebuild_bit_for_bit(
        cells in prop::collection::vec(categorical_cell(), 0..=160),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let (i, j) = cuts(cells.len(), a, b);
        let whole = categorical_chunk(&cells, 0, cells.len());
        let (ca, cb, cc) = (
            categorical_chunk(&cells, 0, i),
            categorical_chunk(&cells, i, j),
            categorical_chunk(&cells, j, cells.len()),
        );
        let merged = ca.merge(&cb).merge(&cc);
        prop_assert_eq!(merged.fingerprint(), whole.fingerprint());
        prop_assert_eq!(
            ca.merge(&cb).fingerprint(),
            cb.merge(&ca).fingerprint()
        );
        prop_assert_eq!(
            ca.merge(&cb).merge(&cc).fingerprint(),
            ca.merge(&cb.merge(&cc)).fingerprint()
        );
    }

    #[test]
    fn summary_merge_equals_rebuild_numeric(
        cells in prop::collection::vec(numeric_cell(), 0..=160),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let (i, j) = cuts(cells.len(), a, b);
        let whole = summary_chunk(&cells, 0, cells.len());
        let (sa, sb, sc) = (
            summary_chunk(&cells, 0, i),
            summary_chunk(&cells, i, j),
            summary_chunk(&cells, j, cells.len()),
        );
        let merged = sa.merge(&sb).merge(&sc);
        prop_assert_eq!(merged.fingerprint(), whole.fingerprint());
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(
            sa.merge(&sb).fingerprint(),
            sb.merge(&sa).fingerprint()
        );
        prop_assert_eq!(
            sa.merge(&sb).merge(&sc).fingerprint(),
            sa.merge(&sb.merge(&sc)).fingerprint()
        );
    }

    #[test]
    fn summary_merge_equals_rebuild_categorical(
        cells in prop::collection::vec(categorical_cell(), 0..=160),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let (i, j) = cuts(cells.len(), a, b);
        let whole = summary_of_strings(&cells, 0, cells.len());
        let merged = summary_of_strings(&cells, 0, i)
            .merge(&summary_of_strings(&cells, i, j))
            .merge(&summary_of_strings(&cells, j, cells.len()));
        prop_assert_eq!(merged.fingerprint(), whole.fingerprint());
        prop_assert_eq!(&merged, &whole);
    }
}

/// The satellite's named edge cases, pinned deterministically on top
/// of the generated coverage.
#[test]
fn all_null_and_nan_payload_chunks_merge_exactly() {
    // All-null column.
    let nulls: Vec<Option<f64>> = vec![None; 96];
    let whole = numeric_whole(&nulls);
    let merged = numeric_chunk(&nulls, 0, 40).merge(&numeric_chunk(&nulls, 40, 96));
    assert_eq!(merged.fingerprint(), whole.fingerprint());
    assert_eq!(merged.count(), 0);
    let s = summary_chunk(&nulls, 0, 40).merge(&summary_chunk(&nulls, 40, 96));
    assert_eq!(s, summary_chunk(&nulls, 0, 96));
    assert!((s.null_fraction() - 1.0).abs() < 1e-15);

    // NaN-payload column: every stored value is NaN (absent to the
    // sketch, non-finite to the summary's hull).
    let nans: Vec<Option<f64>> = (0..64)
        .map(|i| if i % 3 == 0 { None } else { Some(f64::NAN) })
        .collect();
    let whole = numeric_whole(&nans);
    let merged = numeric_chunk(&nans, 0, 21).merge(&numeric_chunk(&nans, 21, 64));
    assert_eq!(merged.fingerprint(), whole.fingerprint());
    assert_eq!(merged.count(), 0);
    assert!(!merged.is_exact());

    // All-null categorical chunks (empty key tables).
    let empty: Vec<Option<&str>> = vec![None; 50];
    let whole = categorical_chunk(&empty, 0, 50);
    let merged = categorical_chunk(&empty, 0, 17).merge(&categorical_chunk(&empty, 17, 50));
    assert_eq!(merged.fingerprint(), whole.fingerprint());
}
