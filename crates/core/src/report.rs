//! Human-readable diagnosis reports.
//!
//! Renders an [`Explanation`] — together with the datasets it was
//! derived from — as a markdown document: the malfunction summary,
//! the cause/fix table, a Fig 5-style discriminative-profile listing
//! with per-dataset parameters, and the intervention trace.

use crate::discovery::discriminative_pvts;
use crate::explanation::{Explanation, TraceEvent};
use crate::violation::violation;
use crate::DiscoveryConfig;
use dp_frame::DataFrame;
use std::fmt::Write as _;

/// Render a full markdown report of a diagnosis.
///
/// `threshold` is the τ the diagnosis ran with; `discovery` the
/// config used (so the Fig 5-style table lists the same profiles the
/// algorithms saw).
pub fn markdown_report(
    explanation: &Explanation,
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    threshold: f64,
    discovery: &DiscoveryConfig,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# DataPrism diagnosis report\n");
    let _ = writeln!(
        out,
        "- malfunction: **{:.3} → {:.3}** (threshold τ = {:.3}, {})",
        explanation.initial_score,
        explanation.final_score,
        threshold,
        if explanation.resolved {
            "resolved"
        } else {
            "UNRESOLVED"
        }
    );
    let _ = writeln!(
        out,
        "- interventions: **{}**\n- explanation size: **{}**",
        explanation.interventions,
        explanation.pvts.len()
    );
    let _ = writeln!(
        out,
        "- oracle cache: **{} hit{} / {} miss{}**, {} speculative evaluation{} ({} wasted)",
        explanation.cache.hits,
        if explanation.cache.hits == 1 { "" } else { "s" },
        explanation.cache.misses,
        if explanation.cache.misses == 1 {
            ""
        } else {
            "es"
        },
        explanation.cache.speculative,
        if explanation.cache.speculative == 1 {
            ""
        } else {
            "s"
        },
        explanation.cache.speculative_waste,
    );
    let _ = writeln!(
        out,
        "- run metrics: **{}**",
        explanation.metrics.summary_line()
    );
    let lint = &explanation.lint;
    if lint.analyzed {
        let _ = writeln!(
            out,
            "- lint: **{lint}**{}{}",
            if explanation.cache.lint_pruned > 0 {
                format!(
                    " — {} candidate{} pruned before ranking",
                    explanation.cache.lint_pruned,
                    if explanation.cache.lint_pruned == 1 {
                        ""
                    } else {
                        "s"
                    }
                )
            } else {
                String::new()
            },
            if explanation.cache.lint_subsumed > 0 {
                format!(
                    " — {} candidate{} subsumed into equivalence-class representatives",
                    explanation.cache.lint_subsumed,
                    if explanation.cache.lint_subsumed == 1 {
                        ""
                    } else {
                        "s"
                    }
                )
            } else {
                String::new()
            }
        );
        for diag in &lint.diagnostics {
            let _ = writeln!(out, "  - {diag}");
        }
    } else {
        let _ = writeln!(out, "- lint: off");
    }
    let d = &explanation.discovery;
    let _ = writeln!(
        out,
        "- discovery pre-filter: **{} of {} pair test{} screened** \
         ({} χ² / {} Pearson skipped; {} exact test{} over {} attribute pair{})\n",
        d.screened(),
        d.tests(),
        if d.tests() == 1 { "" } else { "s" },
        d.chi2_screened,
        d.pearson_screened,
        d.tests() - d.screened(),
        if d.tests() - d.screened() == 1 {
            ""
        } else {
            "s"
        },
        d.pairs,
        if d.pairs == 1 { "" } else { "s" },
    );

    let _ = writeln!(out, "## Causes and fixes\n");
    if explanation.pvts.is_empty() {
        let _ = writeln!(out, "_No repairing PVT was found._\n");
    } else {
        let _ = writeln!(
            out,
            "| # | cause (profile) | fix (transformation) | violation on D_fail |"
        );
        let _ = writeln!(out, "|---|---|---|---|");
        for (i, pvt) in explanation.pvts.iter().enumerate() {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.3} |",
                i + 1,
                pvt.profile,
                pvt.transform,
                violation(d_fail, &pvt.profile),
            );
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "## Discriminative profiles (Fig 5 style)\n");
    let pvts = discriminative_pvts(d_pass, d_fail, discovery);
    let _ = writeln!(
        out,
        "| profile (parameters from D_pass) | violation by D_fail | in explanation |"
    );
    let _ = writeln!(out, "|---|---|---|");
    for pvt in &pvts {
        let in_explanation = explanation.pvts.iter().any(|p| p.profile == pvt.profile);
        let _ = writeln!(
            out,
            "| {} | {:.3} | {} |",
            pvt.profile,
            violation(d_fail, &pvt.profile),
            if in_explanation { "**yes**" } else { "" },
        );
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "## Intervention trace\n");
    for event in &explanation.trace {
        match event {
            TraceEvent::Discovered { n_pvts } => {
                let _ = writeln!(out, "- discovered {n_pvts} discriminative PVTs");
            }
            TraceEvent::Intervention {
                pvt_ids,
                before,
                after,
                kept,
            } => {
                let ids = if pvt_ids.len() > 8 {
                    format!("{} PVTs", pvt_ids.len())
                } else {
                    format!("{pvt_ids:?}")
                };
                let _ = writeln!(
                    out,
                    "- intervened on {ids}: {before:.3} → {after:.3} ({})",
                    if *kept { "kept" } else { "discarded" }
                );
            }
            TraceEvent::MinimalityDropped { pvt_id } => {
                let _ = writeln!(out, "- Make-Minimal dropped PVT {pvt_id}");
            }
        }
    }

    // Opt-in: the group-testing recursion tree, reconstructed from
    // the structured trace. Only present when the run collected one
    // (`PrismConfig::trace = TraceConfig::Collect`) and actually
    // bisected. Rendered without wall times so the report stays
    // byte-deterministic.
    if explanation
        .trace_records
        .iter()
        .any(|r| matches!(r.event, dp_trace::Event::BisectionNodeBegin(_)))
    {
        let tree = dp_trace::SearchTree::from_records(&explanation.trace_records);
        let _ = writeln!(out, "\n## Search tree\n");
        let _ = writeln!(out, "```");
        let _ = write!(out, "{}", tree.render_text(false));
        let _ = writeln!(out, "```");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explain_greedy, PrismConfig};
    use dp_frame::{Column, DType};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    #[test]
    fn report_renders_all_sections() {
        let pass = DataFrame::from_columns(vec![cat("target", &["-1", "1", "1", "-1"])]).unwrap();
        let fail = DataFrame::from_columns(vec![cat("target", &["0", "4", "4", "0"])]).unwrap();
        let mut system = |df: &DataFrame| {
            let col = df.column("target").unwrap();
            col.str_values()
                .iter()
                .filter(|(_, s)| *s != "-1" && *s != "1")
                .count() as f64
                / df.n_rows().max(1) as f64
        };
        let config = PrismConfig::with_threshold(0.2);
        let exp = explain_greedy(&mut system, &fail, &pass, &config).unwrap();
        let report = markdown_report(&exp, &pass, &fail, 0.2, &config.discovery);
        assert!(report.contains("# DataPrism diagnosis report"));
        assert!(report.contains("## Causes and fixes"));
        assert!(report.contains("⟨Domain, target"));
        assert!(report.contains("## Discriminative profiles"));
        assert!(report.contains("## Intervention trace"));
        assert!(report.contains("- oracle cache: **"));
        assert!(report.contains("- run metrics: **"));
        assert!(
            !report.contains("## Search tree"),
            "no tree without collected trace records"
        );
        assert!(report.contains("- lint: **"), "lint summary line present");
        assert!(report.contains("- discovery pre-filter: **"));
        assert!(report.contains("resolved"));
        assert!(report.contains("**yes**"), "explanation row flagged");
    }

    #[test]
    fn search_tree_section_renders_when_collected() {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1"]),
            cat("flag", &["a", "b", "a", "b"]),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0"]),
            cat("flag", &["a", "b", "a", "b"]),
        ])
        .unwrap();
        let mut system = |df: &DataFrame| {
            let col = df.column("target").unwrap();
            col.str_values()
                .iter()
                .filter(|(_, s)| *s != "-1" && *s != "1")
                .count() as f64
                / df.n_rows().max(1) as f64
        };
        let config = PrismConfig {
            trace: dp_trace::TraceConfig::Collect,
            ..PrismConfig::with_threshold(0.2)
        };
        let exp = crate::explain_group_test(
            &mut system,
            &fail,
            &pass,
            &config,
            crate::PartitionStrategy::MinBisection,
        )
        .unwrap();
        assert!(!exp.trace_records.is_empty());
        let report = markdown_report(&exp, &pass, &fail, 0.2, &config.discovery);
        assert!(report.contains("## Search tree"), "{report}");
        assert!(report.contains("node 0"), "{report}");
    }

    #[test]
    fn empty_explanation_renders_gracefully() {
        let pass = DataFrame::from_columns(vec![cat("target", &["-1", "1"])]).unwrap();
        let fail = DataFrame::from_columns(vec![cat("target", &["0", "4"])]).unwrap();
        let exp = Explanation {
            pvts: Vec::new(),
            interventions: 0,
            initial_score: 1.0,
            final_score: 1.0,
            resolved: false,
            repaired: fail.clone(),
            trace: Vec::new(),
            cache: crate::oracle::CacheStats::default(),
            discovery: crate::discovery::DiscoveryStats::default(),
            lint: Default::default(),
            metrics: Default::default(),
            trace_records: Vec::new(),
        };
        let report = markdown_report(&exp, &pass, &fail, 0.2, &DiscoveryConfig::default());
        assert!(report.contains("UNRESOLVED"));
        assert!(report.contains("No repairing PVT"));
        assert!(
            report.contains("- lint: off"),
            "unanalyzed lint renders off"
        );
    }
}
