//! Algorithms 2–3 — `DataPrism-GT`, the group-testing intervention
//! algorithm (the paper's `DataExposerGT`), plus the `GrpTest`
//! baseline (traditional adaptive group testing with random
//! partitioning, §5 baselines).
//!
//! The candidate discriminative PVTs are recursively bisected; each
//! partition is intervened on *as a group* (one oracle query for the
//! whole composition), and partitions that do not reduce the
//! malfunction are discarded wholesale. `DataPrism-GT` partitions
//! along the minimum bisection of the PVT-dependency graph so that
//! attribute-sharing PVTs stay together (Example 16 / Fig 6);
//! `GrpTest` partitions randomly.
//!
//! Group testing requires assumption **A3** (§4.4): a composition of
//! transformations reduces the malfunction iff some constituent
//! does. Before recursing, the full candidate composition is tested;
//! if it fails to reduce the malfunction — even though A1 guarantees
//! the ground-truth cause is among the candidates — A3 must be
//! violated and the algorithm reports
//! [`PrismError::AssumptionViolated`] (the "NA" cells of the paper's
//! Fig 7, observed on the Cardiovascular study).

use crate::benefit::benefit_scores;
use crate::bisection::{min_bisection, random_bisection};
use crate::config::PrismConfig;
use crate::discovery::{discriminative_pvts_stats, DiscoveryStats};
use crate::error::{PrismError, Result};
use crate::explanation::{Explanation, TraceEvent};
use crate::graph::PvtAttributeGraph;
use crate::greedy::{make_minimal, validate_inputs};
use crate::oracle::{Oracle, System, SystemFactory};
use crate::pvt::{apply_composition, Pvt};
use crate::runtime::{InterventionRuntime, ParOracle, Speculation};
use dp_frame::DataFrame;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// How Group-Test splits the candidate set (Alg 3 line 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Minimum bisection of the PVT-dependency graph (DataPrism-GT).
    MinBisection,
    /// Random balanced split (the GrpTest baseline \[21\]).
    Random,
}

struct GtCtx<'o, 'p> {
    pvts: &'p BTreeMap<usize, &'p Pvt>,
    graph: &'p PvtAttributeGraph,
    rt: &'o mut dyn InterventionRuntime,
    strategy: PartitionStrategy,
    seed_order: Vec<usize>,
}

/// Run `DataPrism-GT` / `GrpTest` (Algorithm 2).
pub fn explain_group_test(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    // Lines 1–4 of Alg 2.
    let (pvt_vec, stats) = discriminative_pvts_stats(d_pass, d_fail, &config.discovery, 1);
    let mut exp = explain_group_test_with_pvts(system, d_fail, d_pass, pvt_vec, config, strategy)?;
    exp.discovery = stats;
    Ok(exp)
}

/// Algorithm 2 with a caller-supplied discriminative PVT set (see
/// [`crate::greedy::explain_greedy_with_pvts`] for why).
pub fn explain_group_test_with_pvts(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions);
    run_group_test(&mut oracle, d_fail, d_pass, pvt_vec, config, strategy)
}

/// [`explain_group_test`] on the parallel runtime: the two halves of
/// every bisection probe are materialized and scored concurrently
/// (the second half's score becomes a cache hit only if the serial
/// decision path actually asks for it), and discovery fans out per
/// attribute. Explanations and intervention counts are bit-for-bit
/// identical to the serial run.
pub fn explain_group_test_parallel(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let (pvt_vec, stats) =
        discriminative_pvts_stats(d_pass, d_fail, &config.discovery, config.num_threads);
    let mut exp =
        explain_group_test_parallel_with_pvts(factory, d_fail, d_pass, pvt_vec, config, strategy)?;
    exp.discovery = stats;
    Ok(exp)
}

/// [`explain_group_test_with_pvts`] on the parallel runtime.
pub fn explain_group_test_parallel_with_pvts(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let mut rt = ParOracle::new(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
    );
    run_group_test(&mut rt, d_fail, d_pass, pvt_vec, config, strategy)
}

/// Algorithm 2 over an abstract runtime.
fn run_group_test(
    rt: &mut dyn InterventionRuntime,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let initial_score = validate_inputs(rt, d_fail, d_pass)?;
    if pvt_vec.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    let mut trace = vec![TraceEvent::Discovered {
        n_pvts: pvt_vec.len(),
    }];
    let graph = PvtAttributeGraph::new(&pvt_vec);
    let pvts: BTreeMap<usize, &Pvt> = pvt_vec.iter().map(|p| (p.id, p)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // A3 applicability check: the full composition must reduce the
    // malfunction (see module docs).
    let all_ids: Vec<usize> = pvts.keys().copied().collect();
    let (full, _) = apply_ids(&pvts, &all_ids, d_fail, &mut rng)?;
    let full_score = rt.intervene(&full);
    trace.push(TraceEvent::Intervention {
        pvt_ids: all_ids.clone(),
        before: initial_score,
        after: full_score,
        kept: full_score < initial_score,
    });
    if full_score >= initial_score {
        return Err(PrismError::AssumptionViolated(format!(
            "composing all {} candidate transformations raised the malfunction \
             from {initial_score:.3} to {full_score:.3}; A3 cannot hold",
            all_ids.len()
        )));
    }

    // Benefit-ordered ids seed deterministic tie-breaking inside the
    // partitioner (helps reproducibility across runs).
    let benefits = benefit_scores(&pvt_vec, d_fail);
    let mut seed_order = all_ids.clone();
    seed_order.sort_by(|a, b| benefits[b].total_cmp(&benefits[a]));

    // Line 6 of Alg 2: recursive group testing.
    let mut ctx = GtCtx {
        pvts: &pvts,
        graph: &graph,
        rt: &mut *rt,
        strategy,
        seed_order,
    };
    let (repaired, selected_ids) = group_test_rec(
        &mut ctx,
        &all_ids,
        d_fail.clone(),
        Some(initial_score),
        &mut rng,
        &mut trace,
    )?;
    let score = ctx.rt.intervene(&repaired);

    let selected: Vec<Pvt> = selected_ids
        .iter()
        .filter_map(|id| pvts.get(id).map(|p| (*p).clone()))
        .collect();

    // Line 7 of Alg 2: Make-Minimal.
    let (selected, repaired, score) = if rt.passes(score) && config.make_minimal {
        make_minimal(
            rt,
            d_fail,
            selected,
            repaired,
            score,
            config.seed,
            &mut trace,
        )?
    } else {
        (selected, repaired, score)
    };

    if !rt.passes(score) && rt.exhausted() {
        return Err(PrismError::BudgetExhausted {
            used: rt.interventions(),
            best_score: score,
        });
    }

    Ok(Explanation {
        pvts: selected,
        interventions: rt.interventions(),
        initial_score,
        final_score: score,
        resolved: rt.passes(score),
        repaired,
        trace,
        cache: rt.cache_stats(),
        discovery: DiscoveryStats::default(),
    })
}

/// Apply the composition of the transformations of `ids` (ascending)
/// to `d`.
fn apply_ids(
    pvts: &BTreeMap<usize, &Pvt>,
    ids: &[usize],
    d: &DataFrame,
    rng: &mut StdRng,
) -> Result<(DataFrame, usize)> {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    let refs: Vec<&Pvt> = sorted
        .iter()
        .filter_map(|id| pvts.get(id).copied())
        .collect();
    apply_composition(&refs, d, rng)
}

/// Algorithm 3 (Group-Test). `score` carries `m_S(d)` when the
/// caller already knows it (line 5 of the pseudocode recomputes it;
/// passing it down avoids charging a redundant intervention for a
/// dataset whose score the algorithm just observed).
fn group_test_rec(
    ctx: &mut GtCtx<'_, '_>,
    candidates: &[usize],
    d: DataFrame,
    score: Option<f64>,
    rng: &mut StdRng,
    trace: &mut Vec<TraceEvent>,
) -> Result<(DataFrame, Vec<usize>)> {
    // Lines 2–3: a single candidate is applied and reported.
    if candidates.len() == 1 {
        let (transformed, _) = apply_ids(ctx.pvts, candidates, &d, rng)?;
        return Ok((transformed, candidates.to_vec()));
    }
    if candidates.is_empty() || ctx.rt.exhausted() {
        return Ok((d, Vec::new()));
    }

    // Line 4: partition.
    let (x1, x2) = partition(ctx, candidates, rng);

    // Line 5: current malfunction.
    let m = match score {
        Some(s) => s,
        None => ctx.rt.intervene(&d),
    };

    // Line 6: intervene with all of X1, applied on the main thread so
    // the RNG stream advances exactly as in a serial run.
    let (d1, _) = apply_ids(ctx.pvts, &x1, &d, rng)?;
    // On a parallel runtime, materialize and score X2's half
    // concurrently with X1's scoring: if X1 turns out to pass, the
    // serial run never asks about X2 — its speculative score is
    // surplus cache warmth, uncharged, and the RNG stream is left
    // exactly where the serial run would leave it (X2 unapplied).
    let (d1, x2_speculated) = if ctx.rt.speculation_width() > 1 && !x2.is_empty() {
        let mut sorted2 = x2.clone();
        sorted2.sort_unstable();
        let refs2: Vec<&Pvt> = sorted2
            .iter()
            .filter_map(|id| ctx.pvts.get(id).copied())
            .collect();
        let jobs = vec![
            Speculation::Ready(d1),
            Speculation::Apply {
                pvts: refs2,
                base: &d,
                rng: rng.clone(),
            },
        ];
        let mut spec = ctx.rt.speculate(jobs)?;
        let job2 = spec.pop().expect("two jobs queued");
        let job1 = spec.pop().expect("two jobs queued");
        (job1.frame, Some(job2))
    } else {
        (d1, None)
    };
    let s1 = ctx.rt.intervene(&d1);
    let delta1 = m - s1;
    trace.push(TraceEvent::Intervention {
        pvt_ids: x1.clone(),
        before: m,
        after: s1,
        kept: delta1 > 0.0,
    });

    // Lines 7–8: X1 insufficient → also probe X2.
    let mut delta2 = 0.0;
    let mut s2 = f64::INFINITY;
    if !ctx.rt.passes(s1) {
        let d2 = match x2_speculated {
            Some(job2) => {
                // Adopt the RNG state the deferred application
                // consumed — identical to applying X2 here.
                if let Some(rng_after) = job2.rng_after {
                    *rng = rng_after;
                }
                job2.frame
            }
            None => apply_ids(ctx.pvts, &x2, &d, rng)?.0,
        };
        s2 = ctx.rt.intervene(&d2);
        delta2 = m - s2;
        trace.push(TraceEvent::Intervention {
            pvt_ids: x2.clone(),
            before: m,
            after: s2,
            kept: delta2 > 0.0,
        });
    }

    let mut current = d;
    let mut selected = Vec::new();

    // Lines 9–13: recurse into X1 when it is sufficient alone, or
    // when it helps and X2 alone is insufficient.
    if ctx.rt.passes(s1) || (delta1 > 0.0 && !ctx.rt.passes(s2)) {
        let (d_next, mut found) = group_test_rec(ctx, &x1, current, Some(m), rng, trace)?;
        current = d_next;
        selected.append(&mut found);
        if ctx.rt.passes(s1) {
            // Line 13: no need to check X2.
            return Ok((current, selected));
        }
    }

    // Lines 14–16: recurse into X2 when it helps. When X1's subtree
    // already applied transformations, `current`'s score is unknown
    // and the child must re-measure.
    if delta2 > 0.0 {
        let hint = if selected.is_empty() { Some(m) } else { None };
        let (d_next, mut found) = group_test_rec(ctx, &x2, current, hint, rng, trace)?;
        current = d_next;
        selected.append(&mut found);
    }

    Ok((current, selected))
}

/// Above this candidate count, the quadratic edge enumeration and
/// local-search bisection are replaced by the attribute-grouped
/// partitioner (same keep-dependent-PVTs-together objective, linear
/// time) so group testing scales to the paper's 10⁵-PVT regime.
const LOCAL_SEARCH_LIMIT: usize = 64;

fn partition(
    ctx: &GtCtx<'_, '_>,
    candidates: &[usize],
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    match ctx.strategy {
        PartitionStrategy::Random => random_bisection(candidates, rng),
        PartitionStrategy::MinBisection if candidates.len() <= LOCAL_SEARCH_LIMIT => {
            // Edges of G_PD restricted to the candidates.
            let cand: std::collections::BTreeSet<usize> = candidates.iter().copied().collect();
            let mut edges = Vec::new();
            for (k, &i) in candidates.iter().enumerate() {
                for &j in &candidates[k + 1..] {
                    if ctx.graph.dependent(i, j) {
                        edges.push((i, j));
                    }
                }
            }
            // Keep the candidate order deterministic (benefit order)
            // before the randomized local search.
            let ordered: Vec<usize> = ctx
                .seed_order
                .iter()
                .copied()
                .filter(|id| cand.contains(id))
                .collect();
            min_bisection(&ordered, &edges, rng)
        }
        PartitionStrategy::MinBisection => grouped_bisection(ctx, candidates),
    }
}

/// Linear-time bisection that keeps PVTs sharing an attribute in the
/// same half: group candidates by their first attribute, then fill
/// the smaller half group by group (largest groups first). Halves may
/// differ by more than one element when groups are lumpy — acceptable
/// for the adaptive recursion, which only needs both halves nonempty.
fn grouped_bisection(ctx: &GtCtx<'_, '_>, candidates: &[usize]) -> (Vec<usize>, Vec<usize>) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for &id in candidates {
        let attr = ctx
            .pvts
            .get(&id)
            .and_then(|p| p.attributes().into_iter().next())
            .unwrap_or_default();
        groups.entry(attr).or_default().push(id);
    }
    let mut groups: Vec<Vec<usize>> = groups.into_values().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    let mut left = Vec::new();
    let mut right = Vec::new();
    for g in groups {
        if left.len() <= right.len() {
            left.extend(g);
        } else {
            right.extend(g);
        }
    }
    if right.is_empty() && left.len() > 1 {
        // Single giant group: fall back to an even split so the
        // recursion can still make progress.
        let half = left.len() / 2;
        right = left.split_off(half);
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrismConfig;
    use dp_frame::{Column, DType, DataFrame};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    fn label_domain_system(df: &DataFrame) -> f64 {
        let col = df.column("target").unwrap();
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    }

    fn pass_fail() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1", "1", "-1", "1", "-1"]),
            Column::from_ints(
                "len",
                vec![
                    Some(100),
                    Some(150),
                    Some(120),
                    Some(90),
                    Some(140),
                    Some(100),
                    Some(130),
                    Some(95),
                ],
            ),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0", "4", "0", "4", "0"]),
            Column::from_ints(
                "len",
                vec![
                    Some(20),
                    Some(25),
                    Some(22),
                    Some(18),
                    Some(24),
                    Some(21),
                    Some(23),
                    Some(19),
                ],
            ),
        ])
        .unwrap();
        (pass, fail)
    }

    #[test]
    fn group_testing_finds_the_domain_cause() {
        for strategy in [PartitionStrategy::MinBisection, PartitionStrategy::Random] {
            let (pass, fail) = pass_fail();
            let mut system = label_domain_system;
            let config = PrismConfig::with_threshold(0.2);
            let exp = explain_group_test(&mut system, &fail, &pass, &config, strategy).unwrap();
            assert!(exp.resolved, "{strategy:?}");
            assert!(
                exp.contains_template("domain_cat(target)"),
                "{strategy:?}: {exp}"
            );
            assert_eq!(exp.final_score, 0.0);
        }
    }

    #[test]
    fn a3_violation_is_reported_not_applicable() {
        // A system where touching `len` catastrophically breaks
        // things (the cardio pattern: noise transforms wreck the
        // classifier), so the full composition raises the
        // malfunction above the failing baseline and the A3 check
        // must fire.
        let (pass, fail) = pass_fail();
        let fail_len: Vec<i64> = (0..fail.n_rows())
            .map(|i| fail.cell(i, "len").unwrap().as_i64().unwrap())
            .collect();
        let pass_fp = crate::oracle::fingerprint(&pass);
        let mut system = move |df: &DataFrame| {
            if crate::oracle::fingerprint(df) == pass_fp {
                return 0.0;
            }
            let len_changed = df.n_rows() != fail_len.len()
                || (0..df.n_rows()).any(|i| {
                    df.cell(i, "len")
                        .ok()
                        .and_then(|v| v.as_i64())
                        .map(|v| v != fail_len[i])
                        .unwrap_or(true)
                });
            if len_changed {
                1.0
            } else {
                label_domain_system(df)
            }
        };
        let config = PrismConfig::with_threshold(0.2);
        let res = explain_group_test(
            &mut system,
            &fail,
            &pass,
            &config,
            PartitionStrategy::MinBisection,
        );
        match res {
            Err(PrismError::AssumptionViolated(_)) => {}
            Ok(exp) => panic!("expected A3 violation, got {exp}"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn min_bisection_uses_no_more_interventions_than_random_on_average() {
        // Smoke check on a small case: both strategies succeed; exact
        // counts are scenario-dependent and exercised by the Fig 6
        // toy benchmark.
        let (pass, fail) = pass_fail();
        let mut s1 = label_domain_system;
        let mut s2 = label_domain_system;
        let config = PrismConfig::with_threshold(0.2);
        let a = explain_group_test(
            &mut s1,
            &fail,
            &pass,
            &config,
            PartitionStrategy::MinBisection,
        )
        .unwrap();
        let b =
            explain_group_test(&mut s2, &fail, &pass, &config, PartitionStrategy::Random).unwrap();
        assert!(a.interventions >= 1 && b.interventions >= 1);
    }
}
