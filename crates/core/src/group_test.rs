//! Algorithms 2–3 — `DataPrism-GT`, the group-testing intervention
//! algorithm (the paper's `DataExposerGT`), plus the `GrpTest`
//! baseline (traditional adaptive group testing with random
//! partitioning, §5 baselines).
//!
//! The candidate discriminative PVTs are recursively bisected; each
//! partition is intervened on *as a group* (one oracle query for the
//! whole composition), and partitions that do not reduce the
//! malfunction are discarded wholesale. `DataPrism-GT` partitions
//! along the minimum bisection of the PVT-dependency graph so that
//! attribute-sharing PVTs stay together (Example 16 / Fig 6);
//! `GrpTest` partitions randomly.
//!
//! Group testing requires assumption **A3** (§4.4): a composition of
//! transformations reduces the malfunction iff some constituent
//! does. Before recursing, the full candidate composition is tested;
//! if it fails to reduce the malfunction — even though A1 guarantees
//! the ground-truth cause is among the candidates — A3 must be
//! violated and the algorithm reports
//! [`PrismError::AssumptionViolated`] (the "NA" cells of the paper's
//! Fig 7, observed on the Cardiovascular study).

use crate::benefit::benefit_scores;
use crate::bisection::{
    cut_size, min_bisection, partition_rng, random_bisection, stream_seed, APPLY_STREAM,
};
use crate::config::PrismConfig;
use crate::discovery::discriminative_pvts_traced;
use crate::error::{PrismError, Result};
use crate::explanation::{Explanation, TraceEvent};
use crate::graph::PvtAttributeGraph;
use crate::greedy::{
    emit_begin, finish_run, make_minimal, make_tracer, set_discovery, validate_inputs,
};
use crate::oracle::{Oracle, System, SystemFactory};
use crate::pvt::{apply_composition, Pvt};
use crate::runtime::{
    intervene_traced, DetachedSpeculation, InterventionRuntime, ParOracle, Speculation,
};
use dp_frame::DataFrame;
use dp_trace::{BisectionNodeSpan, Event, SpeculationPlanSpan, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// How Group-Test splits the candidate set (Alg 3 line 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Minimum bisection of the PVT-dependency graph (DataPrism-GT).
    MinBisection,
    /// Random balanced split (the GrpTest baseline \[21\]).
    Random,
    /// Minimum bisection over the lint pass's L8 *conflict* graph:
    /// edges connect candidate pairs **not** certified to commute, so
    /// provably independent candidates are split apart (their probes
    /// compose freely) while order-sensitive pairs stay in one half.
    /// Falls back to the attribute-grouped partitioner above the
    /// local-search limit. Without commutation facts (`Lint::Off`)
    /// every pair counts as a conflict edge, and the local search
    /// reduces to a balanced split of a complete graph.
    CommuteAware,
}

struct GtCtx<'o, 'p> {
    pvts: &'p BTreeMap<usize, &'p Pvt>,
    graph: &'p PvtAttributeGraph,
    rt: &'o mut dyn InterventionRuntime,
    strategy: PartitionStrategy,
    seed_order: Vec<usize>,
    /// Run seed — every partition and composed application derives
    /// its own RNG stream from it (see [`stream_seed`]), making both
    /// pure functions of the candidate id set.
    seed: u64,
    /// [`PrismConfig::gt_speculation_depth`]: how many extra levels
    /// of the recursion tree each cold node pre-bisects and scores
    /// speculatively.
    depth: usize,
    /// L8 fact table from the lint pass: candidate pairs `(lo, hi)`
    /// whose transformations provably commute. Drives the commute
    /// bonus on the speculation cap and the
    /// [`PartitionStrategy::CommuteAware`] conflict graph. Empty under
    /// `Lint::Off` — result-invisible either way, since speculation
    /// only warms the cache and the partition strategy is explicit.
    commuting: std::collections::HashSet<(usize, usize)>,
    /// Trace handle ([`dp_trace::Tracer`]); a no-op in the default
    /// off state. Node events are emitted here, on the main thread,
    /// in serial recursion order.
    tracer: Tracer,
}

/// Run `DataPrism-GT` / `GrpTest` (Algorithm 2).
pub fn explain_group_test(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions)
        .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "group_test", &oracle, config, 1);
    // Lines 1–4 of Alg 2.
    let (pvt_vec, stats) =
        discriminative_pvts_traced(d_pass, d_fail, &config.discovery, 1, &tracer);
    let mut exp = run_group_test(
        &mut oracle,
        d_fail,
        d_pass,
        pvt_vec,
        config,
        strategy,
        tracer,
    )?;
    set_discovery(&mut exp, stats);
    Ok(exp)
}

/// Algorithm 2 with a caller-supplied discriminative PVT set (see
/// [`crate::greedy::explain_greedy_with_pvts`] for why).
pub fn explain_group_test_with_pvts(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions)
        .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "group_test", &oracle, config, 1);
    run_group_test(
        &mut oracle,
        d_fail,
        d_pass,
        pvt_vec,
        config,
        strategy,
        tracer,
    )
}

/// [`explain_group_test`] on the parallel runtime: at every cold
/// bisection node the two halves *plus*
/// [`PrismConfig::gt_speculation_depth`] further levels of
/// pre-bisected descendants are materialized and scored concurrently
/// (a speculated score becomes a cache hit only if the serial
/// decision path actually asks for it), and discovery fans out per
/// attribute. Explanations and intervention counts are bit-for-bit
/// identical to the serial run at every depth and thread count.
pub fn explain_group_test_parallel(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::new(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "group_test", &rt, config, config.num_threads);
    let (pvt_vec, stats) = discriminative_pvts_traced(
        d_pass,
        d_fail,
        &config.discovery,
        config.num_threads,
        &tracer,
    );
    let mut exp = run_group_test(&mut rt, d_fail, d_pass, pvt_vec, config, strategy, tracer)?;
    set_discovery(&mut exp, stats);
    Ok(exp)
}

/// [`explain_group_test_parallel`] warm-started from — and exporting
/// back into — a cross-run [`crate::ScoreCache`] (see
/// [`crate::explain_greedy_parallel_cached`] for the contract: seeded
/// before any query, absorbed back even on error, results
/// bit-for-bit identical to a cold run).
pub fn explain_group_test_parallel_cached(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
    strategy: PartitionStrategy,
    cache: &mut crate::cache::ScoreCache,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::with_warm_cache(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
        cache,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "group_test", &rt, config, config.num_threads);
    let (pvt_vec, stats) = discriminative_pvts_traced(
        d_pass,
        d_fail,
        &config.discovery,
        config.num_threads,
        &tracer,
    );
    let result = run_group_test(&mut rt, d_fail, d_pass, pvt_vec, config, strategy, tracer);
    cache.absorb(&rt.export_cache());
    let mut exp = result?;
    set_discovery(&mut exp, stats);
    Ok(exp)
}

/// [`explain_group_test_parallel_cached`] with a caller-supplied
/// candidate set: the warm-cache runtime, but discovery is skipped —
/// the monitor's targeted re-diagnosis hands in only the drifted
/// profiles' candidates and still reuses the namespace cache.
pub fn explain_group_test_parallel_cached_with_pvts(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
    cache: &mut crate::cache::ScoreCache,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::with_warm_cache(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
        cache,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "group_test", &rt, config, config.num_threads);
    let result = run_group_test(&mut rt, d_fail, d_pass, pvt_vec, config, strategy, tracer);
    cache.absorb(&rt.export_cache());
    result
}

/// [`explain_group_test_with_pvts`] on the parallel runtime.
pub fn explain_group_test_parallel_with_pvts(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::new(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "group_test", &rt, config, config.num_threads);
    run_group_test(&mut rt, d_fail, d_pass, pvt_vec, config, strategy, tracer)
}

/// Algorithm 2 over an abstract runtime.
fn run_group_test(
    rt: &mut dyn InterventionRuntime,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvt_vec: Vec<Pvt>,
    config: &PrismConfig,
    strategy: PartitionStrategy,
    tracer: Tracer,
) -> Result<Explanation> {
    let initial_score = validate_inputs(rt, d_fail, d_pass, &tracer)?;
    if pvt_vec.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    // Static L1–L9 analysis of the candidate set, before any oracle
    // query; `Lint::Prune` drops provably futile candidates here
    // (each one would otherwise inflate the A3 composition and every
    // bisection probe containing it).
    let (lint, pvt_vec) =
        crate::lint::lint_and_prune_traced(pvt_vec, d_fail, config.lint, config.threshold, &tracer);
    if pvt_vec.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    let mut trace = vec![TraceEvent::Discovered {
        n_pvts: pvt_vec.len(),
    }];
    let graph = PvtAttributeGraph::new(&pvt_vec);
    let pvts: BTreeMap<usize, &Pvt> = pvt_vec.iter().map(|p| (p.id, p)).collect();

    // A3 applicability check: the full composition must reduce the
    // malfunction (see module docs).
    let all_ids: Vec<usize> = pvts.keys().copied().collect();
    let (full, _) = apply_ids(&pvts, &all_ids, d_fail, config.seed)?;
    let full_score = intervene_traced(rt, &full, &tracer);
    trace.push(TraceEvent::Intervention {
        pvt_ids: all_ids.clone(),
        before: initial_score,
        after: full_score,
        kept: full_score < initial_score,
    });
    if full_score >= initial_score {
        return Err(PrismError::AssumptionViolated(format!(
            "composing all {} candidate transformations raised the malfunction \
             from {initial_score:.3} to {full_score:.3}; A3 cannot hold",
            all_ids.len()
        )));
    }

    // Benefit-ordered ids seed deterministic tie-breaking inside the
    // partitioner (helps reproducibility across runs).
    let benefits = benefit_scores(&pvt_vec, d_fail);
    let mut seed_order = all_ids.clone();
    seed_order.sort_by(|a, b| benefits[b].total_cmp(&benefits[a]));

    // Line 6 of Alg 2: recursive group testing.
    let mut ctx = GtCtx {
        pvts: &pvts,
        graph: &graph,
        rt: &mut *rt,
        strategy,
        seed_order,
        seed: config.seed,
        depth: config.gt_speculation_depth,
        commuting: lint.commuting.iter().copied().collect(),
        tracer: tracer.clone(),
    };
    let (repaired, selected_ids) = group_test_rec(
        &mut ctx,
        &all_ids,
        d_fail.clone(),
        Some(initial_score),
        0,
        None,
        &mut trace,
    )?;
    let score = intervene_traced(ctx.rt, &repaired, &tracer);

    let selected: Vec<Pvt> = selected_ids
        .iter()
        .filter_map(|id| pvts.get(id).map(|p| (*p).clone()))
        .collect();

    // Line 7 of Alg 2: Make-Minimal.
    let (selected, repaired, score) = if rt.passes(score) && config.make_minimal {
        make_minimal(
            rt,
            d_fail,
            selected,
            repaired,
            score,
            config.seed,
            &mut trace,
            &tracer,
        )?
    } else {
        (selected, repaired, score)
    };

    if !rt.passes(score) && rt.exhausted() {
        return Err(PrismError::BudgetExhausted {
            used: rt.interventions(),
            best_score: score,
        });
    }

    finish_run(
        rt,
        &tracer,
        lint,
        selected,
        initial_score,
        score,
        repaired,
        trace,
    )
}

/// Apply the composition of the transformations of `ids` (ascending)
/// to `d`, on the id set's own derived RNG stream.
fn apply_ids(
    pvts: &BTreeMap<usize, &Pvt>,
    ids: &[usize],
    d: &DataFrame,
    seed: u64,
) -> Result<(DataFrame, usize)> {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    let mut rng = apply_rng(seed, &sorted);
    let refs: Vec<&Pvt> = sorted
        .iter()
        .filter_map(|id| pvts.get(id).copied())
        .collect();
    apply_composition(&refs, d, &mut rng)
}

/// The RNG stream consumed when applying the composition of `ids`
/// (which must already be sorted): a pure function of `(seed, ids)`,
/// so serial replay and speculative workers materialize bit-identical
/// frames for the same candidate set.
fn apply_rng(seed: u64, sorted_ids: &[usize]) -> StdRng {
    StdRng::seed_from_u64(stream_seed(seed, APPLY_STREAM, sorted_ids))
}

/// A synchronous materialize-and-score job for the composition of
/// `ids` applied to `base` (the node's own half probes).
fn sync_apply_job<'a>(ctx: &GtCtx<'_, 'a>, ids: &[usize], base: &'a DataFrame) -> Speculation<'a> {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    let rng = apply_rng(ctx.seed, &sorted);
    let refs: Vec<&'a Pvt> = sorted
        .iter()
        .filter_map(|id| ctx.pvts.get(id).copied())
        .collect();
    Speculation::Apply {
        pvts: refs,
        base,
        rng,
    }
}

/// Pre-bisect both halves of a cold node and plan the probe frames of
/// the next `depth` levels of the recursion tree as **detached**
/// cache-warming jobs, breadth-first (shallower probes are charged
/// sooner, so they must leave the queue first) — the lookahead
/// frontier of [`group_test_rec`]. The depth comes from the
/// runtime's [`InterventionRuntime::plan_speculation_depth`]: the
/// configured value under static speculation, a latency-driven
/// choice under adaptive. Because partitioning and application both
/// run on per-node derived streams, any descendant's candidate frame
/// is computable here without replaying the serial decision history;
/// whichever branches the serial order takes later find their oracle
/// queries already warm (or in flight), and the rest is counted as
/// speculative waste.
fn plan_frontier(
    ctx: &GtCtx<'_, '_>,
    x1: &[usize],
    x2: &[usize],
    base: &Arc<DataFrame>,
    depth: usize,
) -> Vec<DetachedSpeculation> {
    let mut jobs = Vec::new();
    let mut queue: VecDeque<(Vec<usize>, usize)> = VecDeque::new();
    queue.push_back((x1.to_vec(), 0));
    queue.push_back((x2.to_vec(), 0));
    while let Some((ids, level)) = queue.pop_front() {
        if level >= depth || ids.len() <= 1 {
            continue;
        }
        let (a, b) = partition(ctx, &ids);
        for half in [a, b] {
            if half.is_empty() {
                continue;
            }
            let mut sorted = half.clone();
            sorted.sort_unstable();
            let rng = apply_rng(ctx.seed, &sorted);
            let pvts: Vec<Pvt> = sorted
                .iter()
                .filter_map(|id| ctx.pvts.get(id).map(|p| (*p).clone()))
                .collect();
            jobs.push(DetachedSpeculation {
                pvts,
                base: Arc::clone(base),
                rng,
            });
            queue.push_back((half, level + 1));
        }
    }
    jobs
}

/// Algorithm 3 (Group-Test). `score` carries `m_S(d)` when the
/// caller already knows it (line 5 of the pseudocode recomputes it;
/// passing it down avoids charging a redundant intervention for a
/// dataset whose score the algorithm just observed). `covered` is
/// the number of levels below this node an ancestor's speculative
/// frontier already materialized and scored: a covered node charges
/// its probes straight out of the fingerprint cache and defers
/// planning to the first cold descendant.
fn group_test_rec(
    ctx: &mut GtCtx<'_, '_>,
    candidates: &[usize],
    d: DataFrame,
    score: Option<f64>,
    covered: usize,
    parent: Option<u64>,
    trace: &mut Vec<TraceEvent>,
) -> Result<(DataFrame, Vec<usize>)> {
    // Lines 2–3: a single candidate is applied and reported.
    if candidates.len() == 1 {
        let (transformed, _) = apply_ids(ctx.pvts, candidates, &d, ctx.seed)?;
        if ctx.tracer.enabled() {
            let node = ctx.tracer.next_node_id();
            ctx.tracer.emit(|| {
                Event::BisectionNodeBegin(BisectionNodeSpan {
                    node,
                    parent,
                    candidates: candidates.to_vec(),
                    covered,
                })
            });
            ctx.tracer.emit(|| Event::BisectionNodeEnd {
                node,
                selected: candidates.to_vec(),
            });
        }
        return Ok((transformed, candidates.to_vec()));
    }
    if candidates.is_empty() || ctx.rt.exhausted() {
        return Ok((d, Vec::new()));
    }
    let node = ctx.tracer.next_node_id();
    ctx.tracer.emit(|| {
        Event::BisectionNodeBegin(BisectionNodeSpan {
            node,
            parent,
            candidates: candidates.to_vec(),
            covered,
        })
    });

    // Line 4: partition (pure function of the candidate set).
    let (x1, x2) = partition(ctx, candidates);
    if ctx.tracer.enabled() {
        // The cut size is only re-derivable (and cheap) where the
        // min-bisection local search enumerated the edges.
        let cut_edges = (candidates.len() <= LOCAL_SEARCH_LIMIT)
            .then(|| match ctx.strategy {
                PartitionStrategy::MinBisection => {
                    Some(cut_size(&x1, &x2, |i, j| ctx.graph.dependent(i, j)))
                }
                PartitionStrategy::CommuteAware => Some(cut_size(&x1, &x2, |i, j| {
                    !ctx.commuting.contains(&(i.min(j), i.max(j)))
                })),
                PartitionStrategy::Random => None,
            })
            .flatten();
        ctx.tracer.emit(|| Event::BisectionPartition {
            node,
            left: x1.clone(),
            right: x2.clone(),
            cut_edges,
        });
    }

    // Line 5: current malfunction.
    let m = match score {
        Some(s) => s,
        None => intervene_traced(ctx.rt, &d, &ctx.tracer),
    };

    // On a parallel runtime, a node not covered by an ancestor's
    // frontier fires `ctx.depth` levels of pre-bisected descendant
    // probes as detached background jobs, then materializes and
    // scores its own two halves concurrently. The detached frontier
    // keeps draining while the serial replay below charges queries
    // and recurses — covered descendants find their probes already
    // scored (cache hit) or in flight. The replay decides exactly as
    // a `num_threads = 1` run would; a wrong lookahead guess is
    // uncharged waste, never a different search.
    let speculate_here = ctx.rt.speculation_width() > 1 && !x1.is_empty() && !x2.is_empty();
    let (d1, x2_speculated, child_covered) = if speculate_here {
        let child_covered = if covered == 0 {
            // L8 bonus: when every candidate pair at this node
            // provably commutes, descendant probes compose in any
            // order onto identical frames, so lookahead frames stay
            // consumable one level deeper. The controller's headroom
            // clamp still bounds in-flight frames by the budget, and
            // speculation is result-invisible — only cache warmth
            // changes.
            let cap = ctx.depth + usize::from(all_pairs_commute(ctx, candidates));
            let plan = ctx.rt.plan_speculation_depth(cap);
            let jobs = if plan.depth > 0 {
                let base = Arc::new(d.clone());
                plan_frontier(ctx, &x1, &x2, &base, plan.depth)
            } else {
                Vec::new()
            };
            if ctx.tracer.enabled() {
                let frames = jobs.len();
                ctx.tracer.emit(|| {
                    Event::SpeculationPlan(SpeculationPlanSpan {
                        node,
                        cap: plan.cap,
                        depth: plan.depth,
                        budget: plan.budget,
                        mean_query_ns: plan.mean_query_ns,
                        frames,
                    })
                });
            }
            if !jobs.is_empty() {
                ctx.rt.speculate_detached(jobs);
            }
            plan.depth
        } else {
            covered - 1
        };
        let jobs = vec![sync_apply_job(ctx, &x1, &d), sync_apply_job(ctx, &x2, &d)];
        let spec = ctx.rt.speculate(jobs)?;
        let mut frames = spec.into_iter();
        let d1 = frames.next().expect("X1 job queued").frame;
        let d2 = frames.next().expect("X2 job queued").frame;
        (d1, Some(d2), child_covered)
    } else {
        let (d1, _) = apply_ids(ctx.pvts, &x1, &d, ctx.seed)?;
        (d1, None, 0)
    };

    // Line 6: intervene with all of X1.
    let s1 = intervene_traced(ctx.rt, &d1, &ctx.tracer);
    let delta1 = m - s1;
    trace.push(TraceEvent::Intervention {
        pvt_ids: x1.clone(),
        before: m,
        after: s1,
        kept: delta1 > 0.0,
    });
    if ctx.tracer.enabled() {
        let speculative_hit = ctx.rt.last_query().speculative_hit;
        ctx.tracer.emit(|| Event::BisectionProbe {
            node,
            half: 1,
            ids: x1.clone(),
            before: m,
            after: s1,
            kept: delta1 > 0.0,
            speculative_hit,
        });
    }

    // Lines 7–8: X1 insufficient → also probe X2. (If X1 passes, a
    // speculated X2 frame is simply dropped — surplus cache warmth.)
    let mut delta2 = 0.0;
    let mut s2 = f64::INFINITY;
    if !ctx.rt.passes(s1) {
        let d2 = match x2_speculated {
            Some(frame) => frame,
            None => apply_ids(ctx.pvts, &x2, &d, ctx.seed)?.0,
        };
        s2 = intervene_traced(ctx.rt, &d2, &ctx.tracer);
        delta2 = m - s2;
        trace.push(TraceEvent::Intervention {
            pvt_ids: x2.clone(),
            before: m,
            after: s2,
            kept: delta2 > 0.0,
        });
        if ctx.tracer.enabled() {
            let speculative_hit = ctx.rt.last_query().speculative_hit;
            let (after, kept) = (s2, delta2 > 0.0);
            ctx.tracer.emit(|| Event::BisectionProbe {
                node,
                half: 2,
                ids: x2.clone(),
                before: m,
                after,
                kept,
                speculative_hit,
            });
        }
    }

    let mut current = d;
    let mut selected = Vec::new();

    // Lines 9–13: recurse into X1 when it is sufficient alone, or
    // when it helps and X2 alone is insufficient.
    if ctx.rt.passes(s1) || (delta1 > 0.0 && !ctx.rt.passes(s2)) {
        let (d_next, mut found) =
            group_test_rec(ctx, &x1, current, Some(m), child_covered, Some(node), trace)?;
        current = d_next;
        selected.append(&mut found);
        if ctx.rt.passes(s1) {
            // Line 13: no need to check X2.
            ctx.tracer.emit(|| Event::BisectionNodeEnd {
                node,
                selected: selected.clone(),
            });
            return Ok((current, selected));
        }
    }

    // Lines 14–16: recurse into X2 when it helps. When X1's subtree
    // already applied transformations, `current`'s score is unknown
    // and the child must re-measure; the ancestor frontier (which
    // speculated against the *unmodified* base frame) no longer
    // covers it either.
    if delta2 > 0.0 {
        let (hint, cov) = if selected.is_empty() {
            (Some(m), child_covered)
        } else {
            (None, 0)
        };
        let (d_next, mut found) = group_test_rec(ctx, &x2, current, hint, cov, Some(node), trace)?;
        current = d_next;
        selected.append(&mut found);
    }

    ctx.tracer.emit(|| Event::BisectionNodeEnd {
        node,
        selected: selected.clone(),
    });
    Ok((current, selected))
}

/// Above this candidate count, the quadratic edge enumeration and
/// local-search bisection are replaced by the attribute-grouped
/// partitioner (same keep-dependent-PVTs-together objective, linear
/// time) so group testing scales to the paper's 10⁵-PVT regime.
const LOCAL_SEARCH_LIMIT: usize = 64;

/// Bisect the candidate set. A pure function of `(ctx.seed,
/// candidates)` — randomized strategies draw from the candidate
/// set's own derived stream ([`partition_rng`]), never from shared
/// sequential state — so the lookahead planner and the serial replay
/// agree on every split, and `GrpTest` splits reproduce across
/// thread counts.
fn partition(ctx: &GtCtx<'_, '_>, candidates: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut rng = partition_rng(ctx.seed, candidates);
    match ctx.strategy {
        PartitionStrategy::Random => random_bisection(candidates, &mut rng),
        PartitionStrategy::MinBisection if candidates.len() <= LOCAL_SEARCH_LIMIT => {
            // Edges of G_PD restricted to the candidates.
            let cand: std::collections::BTreeSet<usize> = candidates.iter().copied().collect();
            let mut edges = Vec::new();
            for (k, &i) in candidates.iter().enumerate() {
                for &j in &candidates[k + 1..] {
                    if ctx.graph.dependent(i, j) {
                        edges.push((i, j));
                    }
                }
            }
            // Keep the candidate order deterministic (benefit order)
            // before the randomized local search.
            let ordered: Vec<usize> = ctx
                .seed_order
                .iter()
                .copied()
                .filter(|id| cand.contains(id))
                .collect();
            min_bisection(&ordered, &edges, &mut rng)
        }
        PartitionStrategy::MinBisection => grouped_bisection(ctx, candidates),
        PartitionStrategy::CommuteAware if candidates.len() <= LOCAL_SEARCH_LIMIT => {
            // Conflict graph: an edge between every pair NOT
            // certified commuting by lint (L8). Under `Lint::Off`
            // no pair is certified, so every pair conflicts and the
            // local search degenerates to keeping the benefit order
            // intact — still a valid bisection.
            let cand: std::collections::BTreeSet<usize> = candidates.iter().copied().collect();
            let mut edges = Vec::new();
            for (k, &i) in candidates.iter().enumerate() {
                for &j in &candidates[k + 1..] {
                    let key = (i.min(j), i.max(j));
                    if !ctx.commuting.contains(&key) {
                        edges.push((i, j));
                    }
                }
            }
            let ordered: Vec<usize> = ctx
                .seed_order
                .iter()
                .copied()
                .filter(|id| cand.contains(id))
                .collect();
            min_bisection(&ordered, &edges, &mut rng)
        }
        PartitionStrategy::CommuteAware => grouped_bisection(ctx, candidates),
    }
}

/// True when every unordered pair of `candidates` is in the lint
/// commutation table (L8). Vacuously false for singletons (no pair to
/// certify ⇒ no reordering freedom to exploit) and skipped above the
/// local-search limit where the quadratic check would not pay off.
fn all_pairs_commute(ctx: &GtCtx<'_, '_>, candidates: &[usize]) -> bool {
    if candidates.len() < 2 || candidates.len() > LOCAL_SEARCH_LIMIT {
        return false;
    }
    candidates.iter().enumerate().all(|(k, &i)| {
        candidates[k + 1..]
            .iter()
            .all(|&j| ctx.commuting.contains(&(i.min(j), i.max(j))))
    })
}

/// Linear-time bisection that keeps PVTs sharing an attribute in the
/// same half: group candidates by their first attribute, then fill
/// the smaller half group by group (largest groups first). Halves may
/// differ by more than one element when groups are lumpy — acceptable
/// for the adaptive recursion, which only needs both halves nonempty.
fn grouped_bisection(ctx: &GtCtx<'_, '_>, candidates: &[usize]) -> (Vec<usize>, Vec<usize>) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for &id in candidates {
        let attr = ctx
            .pvts
            .get(&id)
            .and_then(|p| p.attributes().into_iter().next())
            .unwrap_or_default();
        groups.entry(attr).or_default().push(id);
    }
    let mut groups: Vec<Vec<usize>> = groups.into_values().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    let mut left = Vec::new();
    let mut right = Vec::new();
    for g in groups {
        if left.len() <= right.len() {
            left.extend(g);
        } else {
            right.extend(g);
        }
    }
    if right.is_empty() && left.len() > 1 {
        // Single giant group: fall back to an even split so the
        // recursion can still make progress.
        let half = left.len() / 2;
        right = left.split_off(half);
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrismConfig;
    use dp_frame::{Column, DType, DataFrame};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    fn label_domain_system(df: &DataFrame) -> f64 {
        let col = df.column("target").unwrap();
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    }

    fn pass_fail() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1", "1", "-1", "1", "-1"]),
            Column::from_ints(
                "len",
                vec![
                    Some(100),
                    Some(150),
                    Some(120),
                    Some(90),
                    Some(140),
                    Some(100),
                    Some(130),
                    Some(95),
                ],
            ),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0", "4", "0", "4", "0"]),
            Column::from_ints(
                "len",
                vec![
                    Some(20),
                    Some(25),
                    Some(22),
                    Some(18),
                    Some(24),
                    Some(21),
                    Some(23),
                    Some(19),
                ],
            ),
        ])
        .unwrap();
        (pass, fail)
    }

    #[test]
    fn group_testing_finds_the_domain_cause() {
        for strategy in [PartitionStrategy::MinBisection, PartitionStrategy::Random] {
            let (pass, fail) = pass_fail();
            let mut system = label_domain_system;
            let config = PrismConfig::with_threshold(0.2);
            let exp = explain_group_test(&mut system, &fail, &pass, &config, strategy).unwrap();
            assert!(exp.resolved, "{strategy:?}");
            assert!(
                exp.contains_template("domain_cat(target)"),
                "{strategy:?}: {exp}"
            );
            assert_eq!(exp.final_score, 0.0);
        }
    }

    #[test]
    fn a3_violation_is_reported_not_applicable() {
        // A system where touching `len` catastrophically breaks
        // things (the cardio pattern: noise transforms wreck the
        // classifier), so the full composition raises the
        // malfunction above the failing baseline and the A3 check
        // must fire.
        let (pass, fail) = pass_fail();
        let fail_len: Vec<i64> = (0..fail.n_rows())
            .map(|i| fail.cell(i, "len").unwrap().as_i64().unwrap())
            .collect();
        let pass_fp = crate::oracle::fingerprint(&pass);
        let mut system = move |df: &DataFrame| {
            if crate::oracle::fingerprint(df) == pass_fp {
                return 0.0;
            }
            let len_changed = df.n_rows() != fail_len.len()
                || (0..df.n_rows()).any(|i| {
                    df.cell(i, "len")
                        .ok()
                        .and_then(|v| v.as_i64())
                        .map(|v| v != fail_len[i])
                        .unwrap_or(true)
                });
            if len_changed {
                1.0
            } else {
                label_domain_system(df)
            }
        };
        let config = PrismConfig::with_threshold(0.2);
        let res = explain_group_test(
            &mut system,
            &fail,
            &pass,
            &config,
            PartitionStrategy::MinBisection,
        );
        match res {
            Err(PrismError::AssumptionViolated(_)) => {}
            Ok(exp) => panic!("expected A3 violation, got {exp}"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn commute_aware_partitioning_reaches_the_same_explanation() {
        // CommuteAware bisects over the L8 *conflict* graph instead
        // of G_PD, so split shapes may differ from MinBisection —
        // but the diagnosis must still land on the same cause, and
        // under `Lint::Off` (empty commutation table: every pair
        // conflicts) the strategy must still terminate.
        for lint in [crate::Lint::Report, crate::Lint::Off] {
            let (pass, fail) = pass_fail();
            let mut system = label_domain_system;
            let config = PrismConfig {
                lint,
                ..PrismConfig::with_threshold(0.2)
            };
            let exp = explain_group_test(
                &mut system,
                &fail,
                &pass,
                &config,
                PartitionStrategy::CommuteAware,
            )
            .unwrap();
            assert!(exp.resolved, "{lint:?}");
            assert!(
                exp.contains_template("domain_cat(target)"),
                "{lint:?}: {exp}"
            );
            assert_eq!(exp.final_score, 0.0);
        }
    }

    #[test]
    fn min_bisection_uses_no_more_interventions_than_random_on_average() {
        // Smoke check on a small case: both strategies succeed; exact
        // counts are scenario-dependent and exercised by the Fig 6
        // toy benchmark.
        let (pass, fail) = pass_fail();
        let mut s1 = label_domain_system;
        let mut s2 = label_domain_system;
        let config = PrismConfig::with_threshold(0.2);
        let a = explain_group_test(
            &mut s1,
            &fail,
            &pass,
            &config,
            PartitionStrategy::MinBisection,
        )
        .unwrap();
        let b =
            explain_group_test(&mut s2, &fail, &pass, &config, PartitionStrategy::Random).unwrap();
        assert!(a.interventions >= 1 && b.interventions >= 1);
    }
}
