//! Re-implementations of the paper's §5 comparison baselines, adapted
//! to PVT interventions exactly as the paper describes:
//!
//! - [`bugdoc`] — "BugDoc \[51\] … We adapt BugDoc to consider each
//!   PVT as a parameter of the system and interventions as the
//!   modified configurations of the pipeline."
//! - [`anchor`] — "Anchor \[62\] … We train Anchor with PVTs as
//!   features, and the prediction variable is Pass/Fail … each
//!   intervention creates a new data point to train the surrogate
//!   model."
//!
//! (The third baseline, `GrpTest`, is DataPrism-GT with
//! [`crate::PartitionStrategy::Random`] — see [`crate::group_test`].)
//!
//! Unlike DataPrism, neither baseline identifies discriminative PVTs
//! explicitly: both "consider all PVTs as candidates for
//! intervention" (§5.1 Income), which [`all_candidate_pvts`]
//! provides.

pub mod anchor;
pub mod bugdoc;

use crate::config::DiscoveryConfig;
use crate::discovery::{discover_profiles, transforms_for};
use crate::pvt::Pvt;
use dp_frame::DataFrame;

/// All PVTs discoverable over the passing dataset, regardless of
/// whether the failing dataset violates them — the baselines'
/// candidate space.
pub fn all_candidate_pvts(d_pass: &DataFrame, cfg: &DiscoveryConfig) -> Vec<Pvt> {
    let mut pvts = Vec::new();
    let mut id = 0;
    for profile in discover_profiles(d_pass, cfg) {
        for transform in transforms_for(&profile, cfg.alternative_transforms) {
            pvts.push(Pvt {
                id,
                profile: profile.clone(),
                transform,
            });
            id += 1;
        }
    }
    pvts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::{Column, DType};

    #[test]
    fn candidate_space_is_a_superset_of_discriminative() {
        let pass = DataFrame::from_columns(vec![
            Column::from_strings(
                "target",
                DType::Categorical,
                vec![Some("-1".into()), Some("1".into())],
            ),
            Column::from_ints("len", vec![Some(10), Some(20)]),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            Column::from_strings(
                "target",
                DType::Categorical,
                vec![Some("0".into()), Some("4".into())],
            ),
            Column::from_ints("len", vec![Some(10), Some(20)]),
        ])
        .unwrap();
        let cfg = DiscoveryConfig::default();
        let all = all_candidate_pvts(&pass, &cfg);
        let disc = crate::discovery::discriminative_pvts(&pass, &fail, &cfg);
        assert!(all.len() > disc.len());
        for d in &disc {
            assert!(
                all.iter().any(|a| a.profile == d.profile),
                "discriminative profile {} missing from candidates",
                d.profile
            );
        }
    }
}
