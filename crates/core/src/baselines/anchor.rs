//! Anchor baseline (Ribeiro et al., AAAI 2018), adapted to PVT
//! interventions.
//!
//! Anchors explain a classifier's prediction by a minimal rule — a
//! partial assignment of feature values — that keeps the prediction
//! (almost) invariant under random perturbation of the remaining
//! features. In the paper's adaptation the "classifier" is the
//! Pass/Fail outcome of the system, the "features" are the PVTs
//! (transformation applied / not applied), and the anchor is a
//! partial on/off assignment `A` such that random configurations
//! consistent with `A` pass with high precision. Every sampled
//! configuration is evaluated by the real oracle, so each sample is
//! an intervention — which is why Anchor spends hundreds to
//! thousands of interventions (the paper's Fig 7: 303 / 800 / 5900).
//!
//! The search is the KL-LUCB-flavored beam construction of the
//! original: grow the anchor one assignment at a time, estimating
//! each candidate extension's precision from batches of Monte-Carlo
//! samples and keeping the best arm, until the precision target is
//! met or the sampling budget runs out.

use crate::config::PrismConfig;
use crate::error::{PrismError, Result};
use crate::explanation::{Explanation, TraceEvent};
use crate::greedy::validate_inputs;
use crate::oracle::{Oracle, System};
use crate::pvt::{apply_composition, Pvt};
use dp_frame::DataFrame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Tuning knobs of the Anchor adaptation.
#[derive(Debug, Clone)]
pub struct AnchorConfig {
    /// Precision target for accepting an anchor.
    pub precision_target: f64,
    /// Samples drawn per candidate arm per round.
    pub batch_size: usize,
    /// Candidate extensions examined per round (beam width, counting
    /// on- and off-assignments separately).
    pub beam_width: usize,
    /// Minimum samples of the final anchor before it is trusted.
    pub min_samples: usize,
    /// Hard cap on sampled configurations (oracle queries); the
    /// search returns its best effort when exhausted.
    pub max_queries: usize,
}

impl Default for AnchorConfig {
    fn default() -> Self {
        AnchorConfig {
            precision_target: 0.9,
            batch_size: 10,
            beam_width: 6,
            min_samples: 25,
            max_queries: 8000,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ArmStats {
    samples: usize,
    passes: usize,
}

impl ArmStats {
    fn precision(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.passes as f64 / self.samples as f64
        }
    }
}

/// A partial assignment: PVT id → forced on (apply) / off (skip).
type Assignment = BTreeMap<usize, bool>;

/// Run the adapted Anchor baseline.
pub fn explain_anchor(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    candidates: &[Pvt],
    config: &PrismConfig,
    anchor_cfg: &AnchorConfig,
) -> Result<Explanation> {
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions);
    let initial_score = validate_inputs(&mut oracle, d_fail, d_pass, &dp_trace::Tracer::off())?;
    if candidates.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    let mut trace = vec![TraceEvent::Discovered {
        n_pvts: candidates.len(),
    }];
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x00A2_C407);
    let all_ids: Vec<usize> = candidates.iter().map(|p| p.id).collect();
    let max_queries = anchor_cfg.max_queries.min(config.max_interventions);

    let mut best_pass: Option<(DataFrame, f64, Vec<usize>)> = None;
    let mut queries = 0usize;

    // Draw one configuration consistent with `anchor`, evaluate it.
    macro_rules! sample {
        ($anchor:expr) => {{
            let on_ids: Vec<usize> = all_ids
                .iter()
                .copied()
                .filter(|id| match $anchor.get(id) {
                    Some(&forced) => forced,
                    None => rng.gen_bool(0.5),
                })
                .collect();
            let refs: Vec<&Pvt> = candidates
                .iter()
                .filter(|p| on_ids.contains(&p.id))
                .collect();
            let (transformed, _) = apply_composition(&refs, d_fail, &mut rng)?;
            let score = oracle.intervene(&transformed);
            queries += 1;
            let pass = oracle.passes(score);
            if pass
                && best_pass
                    .as_ref()
                    .map(|(_, s, _)| score < *s)
                    .unwrap_or(true)
            {
                best_pass = Some((transformed, score, on_ids.clone()));
            }
            pass
        }};
    }

    let mut anchor: Assignment = Assignment::new();
    let mut anchor_stats = ArmStats::default();

    loop {
        let done_sampling = queries >= max_queries || oracle.exhausted();
        let precise = anchor_stats.precision() >= anchor_cfg.precision_target
            && anchor_stats.samples >= anchor_cfg.min_samples;
        if done_sampling || precise || anchor.len() == all_ids.len() {
            break;
        }
        if anchor_stats.precision() >= anchor_cfg.precision_target {
            // Precise but under-sampled: shore up the estimate
            // (KL-LUCB's confirmation sampling).
            for _ in 0..anchor_cfg.batch_size {
                if queries >= max_queries || oracle.exhausted() {
                    break;
                }
                let pass = sample!(&anchor);
                anchor_stats.samples += 1;
                anchor_stats.passes += usize::from(pass);
            }
            continue;
        }
        // Candidate arms: extend by forcing one unassigned PVT on or
        // off. Round-robin a beam over the unassigned ids.
        let unassigned: Vec<usize> = all_ids
            .iter()
            .copied()
            .filter(|id| !anchor.contains_key(id))
            .collect();
        let mut arms: Vec<(usize, bool)> = Vec::new();
        for id in unassigned.iter().take(anchor_cfg.beam_width.max(2) / 2 + 1) {
            arms.push((*id, true));
            arms.push((*id, false));
        }
        arms.truncate(anchor_cfg.beam_width.max(1));
        let mut best_arm: Option<((usize, bool), ArmStats)> = None;
        for (id, forced) in arms {
            let mut extended = anchor.clone();
            extended.insert(id, forced);
            let mut stats = ArmStats::default();
            for _ in 0..anchor_cfg.batch_size {
                if queries >= max_queries || oracle.exhausted() {
                    break;
                }
                let pass = sample!(&extended);
                stats.samples += 1;
                stats.passes += usize::from(pass);
            }
            trace.push(TraceEvent::Intervention {
                pvt_ids: extended
                    .iter()
                    .filter(|(_, &on)| on)
                    .map(|(&i, _)| i)
                    .collect(),
                before: initial_score,
                after: 1.0 - stats.precision(),
                kept: stats.precision() > anchor_stats.precision(),
            });
            if best_arm
                .as_ref()
                .map(|(_, s)| stats.precision() > s.precision())
                .unwrap_or(true)
            {
                best_arm = Some(((id, forced), stats));
            }
        }
        let Some(((id, forced), stats)) = best_arm else {
            break;
        };
        if stats.precision() >= anchor_stats.precision() {
            anchor.insert(id, forced);
            anchor_stats = stats;
        } else {
            // No extension helped this round: sample the incumbent
            // more before retrying.
            for _ in 0..anchor_cfg.batch_size {
                if queries >= max_queries || oracle.exhausted() {
                    break;
                }
                let pass = sample!(&anchor);
                anchor_stats.samples += 1;
                anchor_stats.passes += usize::from(pass);
            }
        }
    }

    // Final verification: the anchor's forced-on PVTs alone.
    let on_ids: Vec<usize> = anchor
        .iter()
        .filter(|(_, &on)| on)
        .map(|(&id, _)| id)
        .collect();
    let refs: Vec<&Pvt> = candidates
        .iter()
        .filter(|p| on_ids.contains(&p.id))
        .collect();
    let (anchored, _) = apply_composition(&refs, d_fail, &mut rng)?;
    let anchored_score = oracle.intervene(&anchored);
    let (repaired, final_score, explaining_ids) = if oracle.passes(anchored_score) {
        (anchored, anchored_score, on_ids)
    } else if let Some((df, s, ids)) = best_pass {
        (df, s, ids)
    } else {
        (d_fail.clone(), initial_score, Vec::new())
    };

    let pvts: Vec<Pvt> = candidates
        .iter()
        .filter(|p| explaining_ids.contains(&p.id))
        .cloned()
        .collect();
    Ok(Explanation {
        pvts,
        interventions: oracle.interventions,
        cache: oracle.cache_stats(),
        discovery: Default::default(),
        lint: Default::default(),
        metrics: oracle.run_metrics(),
        trace_records: Vec::new(),
        initial_score,
        final_score,
        resolved: oracle.passes(final_score),
        repaired,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::all_candidate_pvts;
    use dp_frame::{Column, DType};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    fn scenario() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1", "1", "-1"]),
            Column::from_ints(
                "len",
                vec![
                    Some(100),
                    Some(150),
                    Some(120),
                    Some(90),
                    Some(140),
                    Some(110),
                ],
            ),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0", "4", "0"]),
            Column::from_ints(
                "len",
                vec![Some(20), Some(25), Some(22), Some(18), Some(24), Some(21)],
            ),
        ])
        .unwrap();
        (pass, fail)
    }

    fn label_system(df: &DataFrame) -> f64 {
        let col = df.column("target").unwrap();
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    }

    #[test]
    fn anchor_resolves_but_spends_many_interventions() {
        let (pass, fail) = scenario();
        let config = PrismConfig::with_threshold(0.2);
        let candidates = all_candidate_pvts(&pass, &config.discovery);
        let mut system = label_system;
        let exp = explain_anchor(
            &mut system,
            &fail,
            &pass,
            &candidates,
            &config,
            &AnchorConfig::default(),
        )
        .unwrap();
        assert!(exp.resolved, "{exp}");
        let mut system2 = label_system;
        let greedy = crate::explain_greedy(&mut system2, &fail, &pass, &config).unwrap();
        assert!(
            exp.interventions > 3 * greedy.interventions,
            "anchor {} vs greedy {}",
            exp.interventions,
            greedy.interventions
        );
    }

    #[test]
    fn query_cap_bounds_interventions() {
        let (pass, fail) = scenario();
        // Unresolvable system: Anchor must stop at the cap.
        let pass_fp = crate::oracle::fingerprint(&pass);
        let mut system = move |df: &DataFrame| {
            if crate::oracle::fingerprint(df) == pass_fp {
                0.0
            } else {
                0.9
            }
        };
        let config = PrismConfig::with_threshold(0.2);
        let candidates = all_candidate_pvts(&pass, &config.discovery);
        let cfg = AnchorConfig {
            max_queries: 100,
            ..Default::default()
        };
        let exp = explain_anchor(&mut system, &fail, &pass, &candidates, &config, &cfg).unwrap();
        assert!(!exp.resolved);
        assert!(
            exp.interventions <= 120,
            "cap plus final verification, got {}",
            exp.interventions
        );
    }

    #[test]
    fn empty_candidates_error() {
        let (pass, fail) = scenario();
        let mut system = label_system;
        let err = explain_anchor(
            &mut system,
            &fail,
            &pass,
            &[],
            &PrismConfig::with_threshold(0.2),
            &AnchorConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PrismError::NoDiscriminativePvts));
    }
}
