//! BugDoc baseline (Lourenço et al., SIGMOD 2020), adapted to PVT
//! interventions.
//!
//! BugDoc debugs black-box computational pipelines by evaluating
//! *parameter configurations* chosen by combinatorial designs and
//! learning which parameter settings separate passing from failing
//! runs. In the paper's adaptation, each PVT is a binary pipeline
//! parameter (transformation applied / not applied) and each
//! configuration evaluation is an intervention.
//!
//! The re-implementation follows BugDoc's configuration-exploration
//! skeleton:
//!
//! 1. **Design phase** — evaluate random balanced configurations
//!    (each PVT on with probability ½, the strength-2 covering-style
//!    sampling BugDoc starts from). Every *passing* configuration
//!    refines the candidate cause set by intersection (the root
//!    cause's transformations must all be "on" in any passing
//!    configuration, by A1/A2).
//! 2. **Minimization phase** — once the candidate set is small,
//!    greedily drop PVTs whose removal keeps the configuration
//!    passing (BugDoc's shortest-path narrowing). The paper notes
//!    BugDoc's result "is not minimal" in general — minimization here
//!    is best-effort within the budget, reproducing that behavior.

use crate::config::PrismConfig;
use crate::error::{PrismError, Result};
use crate::explanation::{Explanation, TraceEvent};
use crate::greedy::validate_inputs;
use crate::oracle::{Oracle, System};
use crate::pvt::{apply_composition, Pvt};
use dp_frame::DataFrame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Run the adapted BugDoc baseline over the candidate PVTs (use
/// [`super::all_candidate_pvts`] for the paper's setting).
pub fn explain_bugdoc(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    candidates: &[Pvt],
    config: &PrismConfig,
) -> Result<Explanation> {
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions);
    let initial_score = validate_inputs(&mut oracle, d_fail, d_pass, &dp_trace::Tracer::off())?;
    if candidates.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    let mut trace = vec![TraceEvent::Discovered {
        n_pvts: candidates.len(),
    }];
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x00B0_6D0C);

    let apply = |ids: &BTreeSet<usize>, rng: &mut StdRng| -> Result<DataFrame> {
        let refs: Vec<&Pvt> = candidates.iter().filter(|p| ids.contains(&p.id)).collect();
        Ok(apply_composition(&refs, d_fail, rng)?.0)
    };

    // Phase 1: design-based exploration with intersection refinement.
    let all_ids: BTreeSet<usize> = candidates.iter().map(|p| p.id).collect();
    let mut candidate_cause: BTreeSet<usize> = all_ids.clone();
    let mut best: Option<(BTreeSet<usize>, DataFrame, f64)> = None;
    // Adaptive design budget: BugDoc keeps sampling configurations
    // until a handful pass (rare passing configurations — e.g. when
    // some transformations are actively harmful — cost proportionally
    // more runs, which is why the paper's BugDoc spent 100
    // interventions on Cardiovascular vs 10 on Sentiment).
    let log_k = (candidates.len().max(2) as f64).log2().ceil() as usize;
    // A covering design always runs a minimum number of rows before
    // any conclusion; adaptivity only extends the run when passing
    // configurations are rare.
    let min_rounds = (2 * log_k).max(8);
    let base_budget = (6 * log_k).clamp(16, 150);
    const HARD_CAP: usize = 150;
    let mut hits = 0usize;
    for round in 0..HARD_CAP {
        let enough = round >= min_rounds && (hits >= 3 || (hits >= 1 && round >= base_budget));
        if oracle.exhausted() || enough {
            break;
        }
        // First probe: the all-on configuration (BugDoc's sanity run);
        // then balanced random configurations restricted to the
        // current candidate set unioned with random context.
        let config_ids: BTreeSet<usize> = if round == 0 {
            all_ids.clone()
        } else {
            all_ids
                .iter()
                .copied()
                .filter(|id| {
                    if candidate_cause.contains(id) {
                        rng.gen_bool(0.5)
                    } else {
                        rng.gen_bool(0.25)
                    }
                })
                .collect()
        };
        let transformed = apply(&config_ids, &mut rng)?;
        let score = oracle.intervene(&transformed);
        let passes = oracle.passes(score);
        trace.push(TraceEvent::Intervention {
            pvt_ids: config_ids.iter().copied().collect(),
            before: initial_score,
            after: score,
            kept: passes,
        });
        if passes {
            hits += 1;
            candidate_cause = candidate_cause.intersection(&config_ids).copied().collect();
            match &best {
                Some((ids, _, _)) if ids.len() <= candidate_cause.len() => {}
                _ => best = Some((candidate_cause.clone(), transformed, score)),
            }
            if candidate_cause.len() <= 2 {
                break;
            }
        }
    }

    let Some((mut cause, _, _)) = best else {
        // No configuration passed within the design budget.
        return Ok(Explanation {
            pvts: Vec::new(),
            interventions: oracle.interventions,
            cache: oracle.cache_stats(),
            discovery: Default::default(),
            lint: Default::default(),
            metrics: oracle.run_metrics(),
            trace_records: Vec::new(),
            initial_score,
            final_score: initial_score,
            resolved: false,
            repaired: d_fail.clone(),
            trace,
        });
    };

    // The intersection itself may not have been evaluated as a
    // configuration: verify it.
    let (mut repaired, mut final_score);
    {
        let transformed = apply(&cause, &mut rng)?;
        let score = oracle.intervene(&transformed);
        if oracle.passes(score) {
            repaired = transformed;
            final_score = score;
        } else {
            // Fall back to the last passing configuration (whatever
            // superset we stored) by re-running phase 2 from all_ids.
            cause = all_ids.clone();
            let transformed = apply(&cause, &mut rng)?;
            final_score = oracle.intervene(&transformed);
            repaired = transformed;
        }
    }

    // Phase 2: greedy one-pass minimization — best-effort and only
    // attempted when the candidate cause is already small. BugDoc's
    // reported explanations are not minimal in general (the paper's
    // Income discussion: "the returned solution of PVTs is not
    // minimal"); a large surviving intersection is reported as-is.
    const MINIMIZATION_LIMIT: usize = 12;
    let ids: Vec<usize> = if cause.len() <= MINIMIZATION_LIMIT {
        cause.iter().copied().collect()
    } else {
        Vec::new()
    };
    for id in ids {
        if cause.len() == 1 || oracle.exhausted() {
            break;
        }
        let mut without = cause.clone();
        without.remove(&id);
        let transformed = apply(&without, &mut rng)?;
        let score = oracle.intervene(&transformed);
        if oracle.passes(score) {
            trace.push(TraceEvent::MinimalityDropped { pvt_id: id });
            cause = without;
            repaired = transformed;
            final_score = score;
        }
    }

    let pvts: Vec<Pvt> = candidates
        .iter()
        .filter(|p| cause.contains(&p.id))
        .cloned()
        .collect();
    Ok(Explanation {
        pvts,
        interventions: oracle.interventions,
        cache: oracle.cache_stats(),
        discovery: Default::default(),
        lint: Default::default(),
        metrics: oracle.run_metrics(),
        trace_records: Vec::new(),
        initial_score,
        final_score,
        resolved: oracle.passes(final_score),
        repaired,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::all_candidate_pvts;
    use crate::config::PrismConfig;
    use dp_frame::{Column, DType};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    fn scenario() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1", "1", "-1"]),
            Column::from_ints(
                "len",
                vec![
                    Some(100),
                    Some(150),
                    Some(120),
                    Some(90),
                    Some(140),
                    Some(110),
                ],
            ),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0", "4", "0"]),
            Column::from_ints(
                "len",
                vec![Some(20), Some(25), Some(22), Some(18), Some(24), Some(21)],
            ),
        ])
        .unwrap();
        (pass, fail)
    }

    fn label_system(df: &DataFrame) -> f64 {
        let col = df.column("target").unwrap();
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    }

    #[test]
    fn bugdoc_finds_a_fix_with_more_interventions_than_greedy() {
        let (pass, fail) = scenario();
        let config = PrismConfig::with_threshold(0.2);
        let candidates = all_candidate_pvts(&pass, &config.discovery);
        let mut system = label_system;
        let exp = explain_bugdoc(&mut system, &fail, &pass, &candidates, &config).unwrap();
        assert!(exp.resolved, "{exp}");
        assert!(exp.contains_template("domain_cat(target)"), "{exp}");
        let mut system2 = label_system;
        let greedy = crate::explain_greedy(&mut system2, &fail, &pass, &config).unwrap();
        assert!(
            exp.interventions >= greedy.interventions,
            "bugdoc {} vs greedy {}",
            exp.interventions,
            greedy.interventions
        );
    }

    #[test]
    fn empty_candidates_error() {
        let (pass, fail) = scenario();
        let mut system = label_system;
        let err = explain_bugdoc(
            &mut system,
            &fail,
            &pass,
            &[],
            &PrismConfig::with_threshold(0.2),
        )
        .unwrap_err();
        assert!(matches!(err, PrismError::NoDiscriminativePvts));
    }

    #[test]
    fn unresolvable_reports_unresolved() {
        let (pass, fail) = scenario();
        let pass_fp = crate::oracle::fingerprint(&pass);
        let mut system = move |df: &DataFrame| {
            if crate::oracle::fingerprint(df) == pass_fp {
                0.0
            } else {
                0.9
            }
        };
        let config = PrismConfig::with_threshold(0.2);
        let candidates = all_candidate_pvts(&pass, &config.discovery);
        let exp = explain_bugdoc(&mut system, &fail, &pass, &candidates, &config).unwrap();
        assert!(!exp.resolved);
        assert!(exp.pvts.is_empty());
    }
}
