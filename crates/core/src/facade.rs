//! The `DataPrism` facade: a configured diagnosis session.
//!
//! The free functions [`crate::explain_greedy`] /
//! [`crate::explain_group_test`] are the primitive API; this type
//! bundles a configuration with the common operations (diagnose,
//! compare strategies, render a report) for ergonomic use.

use crate::config::PrismConfig;
use crate::error::Result;
use crate::explanation::Explanation;
use crate::group_test::PartitionStrategy;
use crate::oracle::{System, SystemFactory};
use crate::report::markdown_report;
use dp_frame::DataFrame;

/// A configured DataPrism diagnosis session.
///
/// ```
/// use dataprism::{DataPrism, PrismConfig};
/// use dp_frame::{Column, DType, DataFrame};
///
/// let mut system = |df: &DataFrame| {
///     let col = df.column("target").unwrap();
///     let bad = col.str_values().iter()
///         .filter(|(_, s)| *s != "-1" && *s != "1").count();
///     bad as f64 / df.n_rows().max(1) as f64
/// };
/// let labels = |vals: &[&str]| Column::from_strings(
///     "target", DType::Categorical,
///     vals.iter().map(|v| Some(v.to_string())).collect(),
/// );
/// let pass = DataFrame::from_columns(vec![labels(&["-1", "1", "1", "-1"])]).unwrap();
/// let fail = DataFrame::from_columns(vec![labels(&["0", "4", "4", "0"])]).unwrap();
///
/// let prism = DataPrism::new(PrismConfig::with_threshold(0.2));
/// let explanation = prism.diagnose(&mut system, &fail, &pass).unwrap();
/// assert!(explanation.resolved);
///
/// // A ready-to-share markdown report of the same diagnosis:
/// let report = prism.report(&explanation, &pass, &fail);
/// assert!(report.contains("# DataPrism diagnosis report"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataPrism {
    config: PrismConfig,
}

impl DataPrism {
    /// A session with the given configuration.
    pub fn new(config: PrismConfig) -> Self {
        DataPrism { config }
    }

    /// A session with default configuration and the given threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        DataPrism {
            config: PrismConfig::with_threshold(threshold),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PrismConfig {
        &self.config
    }

    /// Mutable access for tweaking knobs after construction.
    pub fn config_mut(&mut self) -> &mut PrismConfig {
        &mut self.config
    }

    /// Diagnose with the recommended strategy: the greedy Algorithm 1
    /// (fewest interventions on every case study of the paper's
    /// Fig 7).
    pub fn diagnose(
        &self,
        system: &mut dyn System,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
    ) -> Result<Explanation> {
        crate::explain_greedy(system, d_fail, d_pass, &self.config)
    }

    /// Diagnose with group testing (Algorithms 2–3, min-bisection
    /// partitioning). Fails with
    /// [`crate::PrismError::AssumptionViolated`] when assumption A3
    /// does not hold.
    pub fn diagnose_group_test(
        &self,
        system: &mut dyn System,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
    ) -> Result<Explanation> {
        crate::explain_group_test(
            system,
            d_fail,
            d_pass,
            &self.config,
            PartitionStrategy::MinBisection,
        )
    }

    /// Diagnose with group testing, falling back to the greedy
    /// algorithm when A3 is violated — the paper's own guidance
    /// ("DataExposerGRD always identifies the ground-truth cause",
    /// appendix C).
    pub fn diagnose_auto(
        &self,
        system: &mut dyn System,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
    ) -> Result<Explanation> {
        match self.diagnose_group_test(system, d_fail, d_pass) {
            Err(crate::PrismError::AssumptionViolated(_)) => self.diagnose(system, d_fail, d_pass),
            other => other,
        }
    }

    /// [`DataPrism::diagnose`] on the parallel runtime: candidate
    /// interventions are speculatively scored on
    /// `config.num_threads` worker systems built by `factory`. The
    /// explanation (PVTs, scores, intervention counts, trace) is
    /// bit-for-bit identical to the serial [`DataPrism::diagnose`]
    /// for every thread count.
    pub fn diagnose_parallel(
        &self,
        factory: &dyn SystemFactory,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
    ) -> Result<Explanation> {
        crate::explain_greedy_parallel(factory, d_fail, d_pass, &self.config)
    }

    /// [`DataPrism::diagnose_group_test`] on the parallel runtime:
    /// both halves of every bisection probe are evaluated
    /// concurrently. Results are bit-for-bit identical to the serial
    /// path for every thread count.
    pub fn diagnose_group_test_parallel(
        &self,
        factory: &dyn SystemFactory,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
    ) -> Result<Explanation> {
        crate::explain_group_test_parallel(
            factory,
            d_fail,
            d_pass,
            &self.config,
            PartitionStrategy::MinBisection,
        )
    }

    /// [`DataPrism::diagnose_auto`] on the parallel runtime: group
    /// testing first, greedy fallback when assumption A3 is violated.
    pub fn diagnose_auto_parallel(
        &self,
        factory: &dyn SystemFactory,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
    ) -> Result<Explanation> {
        match self.diagnose_group_test_parallel(factory, d_fail, d_pass) {
            Err(crate::PrismError::AssumptionViolated(_)) => {
                self.diagnose_parallel(factory, d_fail, d_pass)
            }
            other => other,
        }
    }

    /// [`DataPrism::diagnose_parallel`] warm-started from — and
    /// exporting back into — a cross-run [`crate::ScoreCache`]: the
    /// runtime's fingerprint cache is seeded from `cache` before any
    /// oracle query and everything the run scored is absorbed back
    /// afterwards, even on error. This is the entry point `dp_serve`
    /// drives with its per-system server-resident caches; the
    /// explanation is bit-for-bit identical to a cold
    /// [`DataPrism::diagnose_parallel`].
    pub fn diagnose_parallel_cached(
        &self,
        factory: &dyn SystemFactory,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
        cache: &mut crate::ScoreCache,
    ) -> Result<Explanation> {
        crate::explain_greedy_parallel_cached(factory, d_fail, d_pass, &self.config, cache)
    }

    /// [`DataPrism::diagnose_group_test_parallel`] warm-started from
    /// — and exporting back into — a cross-run [`crate::ScoreCache`]
    /// (same contract as [`DataPrism::diagnose_parallel_cached`]).
    pub fn diagnose_group_test_parallel_cached(
        &self,
        factory: &dyn SystemFactory,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
        cache: &mut crate::ScoreCache,
    ) -> Result<Explanation> {
        crate::explain_group_test_parallel_cached(
            factory,
            d_fail,
            d_pass,
            &self.config,
            PartitionStrategy::MinBisection,
            cache,
        )
    }

    /// [`DataPrism::diagnose_auto_parallel`] with a cross-run
    /// [`crate::ScoreCache`]: group testing first, greedy fallback
    /// when assumption A3 is violated. The group-testing attempt's
    /// evaluations land in `cache` before the fallback starts, so the
    /// greedy run reuses every score the failed attempt paid for.
    pub fn diagnose_auto_parallel_cached(
        &self,
        factory: &dyn SystemFactory,
        d_fail: &DataFrame,
        d_pass: &DataFrame,
        cache: &mut crate::ScoreCache,
    ) -> Result<Explanation> {
        match self.diagnose_group_test_parallel_cached(factory, d_fail, d_pass, cache) {
            Err(crate::PrismError::AssumptionViolated(_)) => {
                self.diagnose_parallel_cached(factory, d_fail, d_pass, cache)
            }
            other => other,
        }
    }

    /// Render a markdown report for an explanation produced by this
    /// session.
    pub fn report(
        &self,
        explanation: &Explanation,
        d_pass: &DataFrame,
        d_fail: &DataFrame,
    ) -> String {
        markdown_report(
            explanation,
            d_pass,
            d_fail,
            self.config.threshold,
            &self.config.discovery,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::{Column, DType};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    fn scenario() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![cat("target", &["-1", "1", "1", "-1"])]).unwrap();
        let fail = DataFrame::from_columns(vec![cat("target", &["0", "4", "4", "0"])]).unwrap();
        (pass, fail)
    }

    fn label_system(df: &DataFrame) -> f64 {
        let col = df.column("target").unwrap();
        col.str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count() as f64
            / df.n_rows().max(1) as f64
    }

    #[test]
    fn facade_diagnoses_and_reports() {
        let (pass, fail) = scenario();
        let prism = DataPrism::with_threshold(0.2);
        let mut system = label_system;
        let exp = prism.diagnose(&mut system, &fail, &pass).unwrap();
        assert!(exp.resolved);
        let report = prism.report(&exp, &pass, &fail);
        assert!(report.contains("resolved"));
    }

    #[test]
    fn auto_falls_back_to_greedy_on_a3_violation() {
        // A system where any composition involving the second column's
        // transforms blows up, violating A3, but the greedy path works.
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1"]),
            Column::from_ints("len", vec![Some(10), Some(12), Some(11), Some(13)]),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0"]),
            Column::from_ints("len", vec![Some(1), Some(2), Some(3), Some(4)]),
        ])
        .unwrap();
        let fail_len: Vec<i64> = vec![1, 2, 3, 4];
        let pass_fp = crate::oracle::fingerprint(&pass);
        let mut system = move |df: &DataFrame| {
            if crate::oracle::fingerprint(df) == pass_fp {
                return 0.0;
            }
            let len_changed = df.n_rows() != fail_len.len()
                || (0..df.n_rows()).any(|i| {
                    df.cell(i, "len")
                        .ok()
                        .and_then(|v| v.as_i64())
                        .map(|v| v != fail_len[i])
                        .unwrap_or(true)
                });
            if len_changed {
                1.0
            } else {
                label_system(df)
            }
        };
        let prism = DataPrism::with_threshold(0.2);
        assert!(matches!(
            prism.diagnose_group_test(&mut system, &fail, &pass),
            Err(crate::PrismError::AssumptionViolated(_))
        ));
        let exp = prism.diagnose_auto(&mut system, &fail, &pass).unwrap();
        assert!(exp.resolved, "{exp}");
    }

    #[test]
    fn parallel_facade_matches_serial() {
        let (pass, fail) = scenario();
        let mut prism = DataPrism::with_threshold(0.2);
        let mut system = label_system;
        let serial = prism.diagnose(&mut system, &fail, &pass).unwrap();
        for threads in [1, 4] {
            prism.config_mut().num_threads = threads;
            let factory = || label_system;
            let par = prism.diagnose_parallel(&factory, &fail, &pass).unwrap();
            assert_eq!(par.pvt_ids(), serial.pvt_ids());
            assert_eq!(par.interventions, serial.interventions);
            assert_eq!(par.final_score, serial.final_score);
            assert_eq!(par.trace, serial.trace);
        }
    }

    #[test]
    fn config_accessors() {
        let mut prism = DataPrism::with_threshold(0.3);
        assert_eq!(prism.config().threshold, 0.3);
        prism.config_mut().seed = 99;
        assert_eq!(prism.config().seed, 99);
    }
}
