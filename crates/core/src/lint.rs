//! Bridge between the runtime's `Profile`/`Transform` enums and the
//! [`dp_lint`] static analyzer.
//!
//! `dp_lint` is deliberately decoupled from this crate: it checks
//! [`dp_lint::CandidateFacts`] records, not PVTs. This module lowers
//! each candidate [`Pvt`] into facts — typed attribute reads/writes,
//! the profile's observed violation on `D_fail`, the transform's
//! coverage, and (when statically known) the write target — and runs
//! [`dp_lint::analyze`] over them together with the schema and the
//! PVT-dependency edges, **before any oracle query** is spent.
//!
//! Under [`Lint::Prune`] the Error-level candidates are dropped from
//! the ranking. The lowering is sound for pruning: a fact is only
//! strong enough to produce an `Error` when the corresponding futility
//! is provable (e.g. `coverage_is_exact` is set only for transforms
//! whose zero-coverage application is a bit-exact identity), so a
//! pruned candidate could never have changed the explanation — only
//! cost interventions. `tests/lint_parity.rs` asserts this end to end.

use crate::config::Lint;
use crate::graph::PvtAttributeGraph;
use crate::profile::Profile;
use crate::pvt::Pvt;
use crate::transform::Transform;
use dp_frame::DataFrame;
use dp_lint::{AttrRequirement, CandidateFacts, Diagnostics, TypeClass, WriteTarget};

/// Typed attribute reads a profile performs when its violation is
/// evaluated.
fn profile_reads(profile: &Profile) -> Vec<AttrRequirement> {
    match profile {
        Profile::DomainCategorical { attr, .. } | Profile::DomainText { attr, .. } => {
            vec![AttrRequirement::new(attr, TypeClass::Textual)]
        }
        Profile::DomainNumeric { attr, .. } | Profile::Outlier { attr, .. } => {
            vec![AttrRequirement::new(attr, TypeClass::Numeric)]
        }
        Profile::Missing { attr, .. } => vec![AttrRequirement::new(attr, TypeClass::Any)],
        Profile::Selectivity { predicate, .. } => predicate
            .columns()
            .into_iter()
            .map(|c| AttrRequirement::new(c, TypeClass::Any))
            .collect(),
        // Every dependence measure coerces both columns: χ² builds
        // the contingency table over stringified values, and the
        // Pearson/SEM paths integer-code categoricals (Fig 1 row 9
        // supports mixed "categorical, numerical" pairs). No dtype is
        // inadmissible.
        Profile::Indep { a, b, .. } => vec![
            AttrRequirement::new(a, TypeClass::Any),
            AttrRequirement::new(b, TypeClass::Any),
        ],
        Profile::Conditional { condition, inner } => {
            let mut reads: Vec<AttrRequirement> = condition
                .columns()
                .into_iter()
                .map(|c| AttrRequirement::new(c, TypeClass::Any))
                .collect();
            reads.extend(profile_reads(inner));
            reads
        }
    }
}

/// Typed reads, typed writes, and the rewrites-everything flag of a
/// transformation.
fn transform_io(t: &Transform) -> (Vec<AttrRequirement>, Vec<AttrRequirement>, bool) {
    match t {
        Transform::MapToDomain { attr, .. } | Transform::RepairText { attr, .. } => (
            Vec::new(),
            vec![AttrRequirement::new(attr, TypeClass::Textual)],
            false,
        ),
        Transform::LinearRescale { attr, .. }
        | Transform::Winsorize { attr, .. }
        | Transform::ReplaceOutliers { attr, .. } => (
            Vec::new(),
            vec![AttrRequirement::new(attr, TypeClass::Numeric)],
            false,
        ),
        Transform::Impute { attr, .. } => (
            Vec::new(),
            vec![AttrRequirement::new(attr, TypeClass::Any)],
            false,
        ),
        // Row resampling drops/duplicates whole tuples: every
        // attribute is rewritten, so no "fix touches no profile
        // attribute" reasoning applies.
        Transform::ResampleSelectivity { predicate, .. } => (
            predicate
                .columns()
                .into_iter()
                .map(|c| AttrRequirement::new(c, TypeClass::Any))
                .collect(),
            Vec::new(),
            true,
        ),
        Transform::BreakDependenceShuffle { a, b, .. } => (
            vec![AttrRequirement::new(a, TypeClass::Any)],
            vec![AttrRequirement::new(b, TypeClass::Any)],
            false,
        ),
        // Like the dependence profiles they repair, these regress on
        // coerced values (categoricals are integer-coded), so any
        // dtype is admissible on either side.
        Transform::DecorrelateNoise { a, b, .. } | Transform::Residualize { a, b } => (
            vec![AttrRequirement::new(a, TypeClass::Any)],
            vec![AttrRequirement::new(b, TypeClass::Any)],
            false,
        ),
        Transform::Conditional { condition, inner } => {
            let (mut reads, writes, rewrites_all) = transform_io(inner);
            reads.extend(
                condition
                    .columns()
                    .into_iter()
                    .map(|c| AttrRequirement::new(c, TypeClass::Any)),
            );
            (reads, writes, rewrites_all)
        }
    }
}

/// Whether [`Transform::coverage`] returning `0.0` certifies that an
/// application is a **bit-exact identity** on that frame. Only then
/// may L3 emit an `Error` (prunable); otherwise zero coverage is a
/// `Warn`. `LinearRescale` is excluded (its re-mapping arithmetic is
/// not bit-exact even when the range matches within tolerance), as are
/// the stochastic/global transforms and `RepairText` (a value matching
/// the length bounds can still be edited toward the pattern).
fn coverage_is_exact(t: &Transform) -> bool {
    matches!(
        t,
        Transform::MapToDomain { .. }
            | Transform::Winsorize { .. }
            | Transform::Impute { .. }
            | Transform::ReplaceOutliers { .. }
    )
}

/// The statically-known target a transformation writes into an
/// attribute, for L4 conflict detection. `None` when the target is
/// data-dependent (imputation, resampling, noise, …).
fn write_target(t: &Transform) -> Option<(String, WriteTarget)> {
    match t {
        Transform::MapToDomain { attr, values } => {
            Some((attr.clone(), WriteTarget::Domain(values.clone())))
        }
        Transform::LinearRescale { attr, lb, ub } | Transform::Winsorize { attr, lb, ub } => {
            Some((attr.clone(), WriteTarget::Range { lb: *lb, ub: *ub }))
        }
        Transform::Conditional { inner, .. } => write_target(inner),
        _ => None,
    }
}

/// Lower one candidate PVT into the analyzer's fact record.
fn candidate_facts(pvt: &Pvt, d_fail: &DataFrame) -> CandidateFacts {
    let mut facts = CandidateFacts::new(pvt.id, pvt.profile.template_key());
    let (t_reads, t_writes, rewrites_all) = transform_io(&pvt.transform);
    facts.reads = profile_reads(&pvt.profile);
    facts.reads.extend(t_reads);
    facts.writes = t_writes;
    facts.rewrites_all_attributes = rewrites_all;
    facts.profile_attributes = pvt.profile.attributes();
    facts.profile_violation_on_fail = pvt.violation(d_fail);
    facts.coverage_on_fail = pvt.transform.coverage(d_fail);
    facts.coverage_is_exact = coverage_is_exact(&pvt.transform);
    facts.write_target = write_target(&pvt.transform);
    facts
}

/// Run the full L1–L5 static analysis over a candidate PVT set
/// against the failing dataset, before any oracle query.
pub fn lint_pvts(pvts: &[Pvt], d_fail: &DataFrame) -> Diagnostics {
    let facts: Vec<CandidateFacts> = pvts.iter().map(|p| candidate_facts(p, d_fail)).collect();
    let edges = PvtAttributeGraph::new(pvts).dependency_edges();
    dp_lint::analyze(&d_fail.schema(), &facts, &edges)
}

/// [`lint_and_prune`] emitting a [`dp_trace::LintSpan`] event with
/// the verdict counts (always emitted, `analyzed = false` under
/// `Lint::Off`, so a trace records that the pass was skipped).
pub(crate) fn lint_and_prune_traced(
    pvts: Vec<Pvt>,
    d_fail: &DataFrame,
    mode: Lint,
    tracer: &dp_trace::Tracer,
) -> (Diagnostics, Vec<Pvt>) {
    let (diag, kept) = lint_and_prune(pvts, d_fail, mode);
    tracer.emit(|| {
        dp_trace::Event::Lint(dp_trace::LintSpan {
            analyzed: diag.analyzed,
            errors: diag.count(dp_lint::Severity::Error),
            warnings: diag.count(dp_lint::Severity::Warn),
            infos: diag.count(dp_lint::Severity::Info),
            pruned: diag.pruned.len(),
        })
    });
    (diag, kept)
}

/// Apply the configured lint policy: analyze (unless `Off`) and, under
/// `Prune`, drop the Error-level candidates before ranking, recording
/// their ids in [`Diagnostics::pruned`].
pub(crate) fn lint_and_prune(
    pvts: Vec<Pvt>,
    d_fail: &DataFrame,
    mode: Lint,
) -> (Diagnostics, Vec<Pvt>) {
    match mode {
        Lint::Off => (Diagnostics::default(), pvts),
        Lint::Report => (lint_pvts(&pvts, d_fail), pvts),
        Lint::Prune => {
            let mut diag = lint_pvts(&pvts, d_fail);
            let errors = diag.error_pvt_ids();
            let (pruned, kept): (Vec<Pvt>, Vec<Pvt>) =
                pvts.into_iter().partition(|p| errors.contains(&p.id));
            diag.pruned = pruned.iter().map(|p| p.id).collect();
            diag.pruned.sort_unstable();
            (diag, kept)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::ImputeStrategy;
    use dp_frame::{Column, DType};
    use dp_lint::{RuleId, Severity};
    use std::collections::BTreeSet;

    fn d_fail() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_strings(
                "target",
                DType::Categorical,
                vec![Some("0".into()), Some("4".into()), Some("1".into())],
            ),
            Column::from_floats("len", vec![Some(3.0), Some(15.0), Some(7.0)]),
        ])
        .unwrap()
    }

    fn domain_pvt(id: usize) -> Pvt {
        let values: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
        Pvt {
            id,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: values.clone(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values,
            },
        }
    }

    #[test]
    fn healthy_discovery_shaped_candidate_is_clean() {
        let diag = lint_pvts(&[domain_pvt(0)], &d_fail());
        assert!(diag.analyzed);
        assert!(diag.is_clean(), "{:?}", diag.diagnostics);
    }

    #[test]
    fn missing_attribute_trips_l1() {
        let pvt = Pvt {
            id: 0,
            profile: Profile::Missing {
                attr: "zip".into(),
                theta: 0.0,
            },
            transform: Transform::Impute {
                attr: "zip".into(),
                strategy: ImputeStrategy::Mode,
            },
        };
        let diag = lint_pvts(&[pvt], &d_fail());
        assert!(!diag.for_rule(RuleId::SchemaTyping).is_empty());
        assert!(diag.error_pvt_ids().contains(&0));
    }

    #[test]
    fn mistyped_write_trips_l1() {
        // Winsorize (numeric write) aimed at the categorical column.
        let pvt = Pvt {
            id: 3,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
            transform: Transform::Winsorize {
                attr: "target".into(),
                lb: 0.0,
                ub: 10.0,
            },
        };
        let diag = lint_pvts(&[pvt], &d_fail());
        let l1 = diag.for_rule(RuleId::SchemaTyping);
        assert!(
            l1.iter()
                .any(|d| d.severity == Severity::Error && d.attr.as_deref() == Some("target")),
            "{l1:?}"
        );
    }

    #[test]
    fn disjoint_fix_trips_l2() {
        // Profile on "target", fix on "len": provably cannot move the
        // profile's parameter.
        let pvt = Pvt {
            id: 1,
            profile: Profile::Missing {
                attr: "target".into(),
                theta: 0.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
        };
        let diag = lint_pvts(&[pvt], &d_fail());
        assert!(!diag.for_rule(RuleId::TransformConsistency).is_empty());
        assert!(diag.error_pvt_ids().contains(&1));
    }

    #[test]
    fn certified_noop_trips_l3_error() {
        // Winsorize bounds already containing the observed range:
        // coverage 0 and bit-exact at coverage 0 ⇒ Error.
        let pvt = Pvt {
            id: 2,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
        };
        let diag = lint_pvts(&[pvt], &d_fail());
        let l3 = diag.for_rule(RuleId::NoOpTransform);
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].severity, Severity::Error);
    }

    #[test]
    fn zero_coverage_without_certificate_is_warn() {
        // LinearRescale whose target range matches the observed range:
        // coverage 0, but not bit-exact ⇒ Warn, never pruned. The
        // profile itself is violated (values above 5), so L2 stays
        // quiet and L3 is the only rule in play.
        let pvt = Pvt {
            id: 5,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 5.0,
            },
            transform: Transform::LinearRescale {
                attr: "len".into(),
                lb: 3.0,
                ub: 15.0,
            },
        };
        let diag = lint_pvts(&[pvt], &d_fail());
        let l3 = diag.for_rule(RuleId::NoOpTransform);
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].severity, Severity::Warn);
        assert!(diag.error_pvt_ids().is_empty());
    }

    #[test]
    fn incompatible_targets_trip_l4() {
        let mk = |id: usize, lb: f64, ub: f64| Pvt {
            id,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb,
                ub,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb,
                ub,
            },
        };
        // [0,5] and [10,20] are disjoint target ranges on one column.
        let diag = lint_pvts(&[mk(0, 0.0, 5.0), mk(1, 10.0, 20.0)], &d_fail());
        let l4 = diag.for_rule(RuleId::WriteConflict);
        assert_eq!(l4.len(), 1);
        assert_eq!(l4[0].pvt_ids, vec![0, 1]);
        assert_eq!(l4[0].severity, Severity::Warn, "conflicts are never pruned");
    }

    #[test]
    fn components_surface_as_l5_info() {
        let other = Pvt {
            id: 7,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
        };
        // domain_pvt touches "target", `other` touches "len": two
        // disconnected components in G_PD.
        let diag = lint_pvts(&[domain_pvt(0), other], &d_fail());
        assert!(diag
            .for_rule(RuleId::GraphSanity)
            .iter()
            .any(|d| d.severity == Severity::Info));
    }

    #[test]
    fn prune_drops_only_error_candidates() {
        let noop = Pvt {
            id: 1,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
        };
        let (diag, kept) = lint_and_prune(vec![domain_pvt(0), noop], &d_fail(), Lint::Prune);
        assert_eq!(diag.pruned, vec![1]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, 0);
    }

    #[test]
    fn off_and_report_keep_everything() {
        let pvts = vec![domain_pvt(0)];
        let (diag, kept) = lint_and_prune(pvts.clone(), &d_fail(), Lint::Off);
        assert!(!diag.analyzed);
        assert_eq!(kept.len(), 1);
        let (diag, kept) = lint_and_prune(pvts, &d_fail(), Lint::Report);
        assert!(diag.analyzed);
        assert!(diag.pruned.is_empty());
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn conditional_profiles_lower_recursively() {
        let pvt = Pvt {
            id: 0,
            profile: Profile::Conditional {
                condition: dp_frame::Predicate::cmp("target", dp_frame::CmpOp::Eq, "1"),
                inner: Box::new(Profile::DomainNumeric {
                    attr: "len".into(),
                    lb: 0.0,
                    ub: 10.0,
                }),
            },
            transform: Transform::Conditional {
                condition: dp_frame::Predicate::cmp("target", dp_frame::CmpOp::Eq, "1"),
                inner: Box::new(Transform::Winsorize {
                    attr: "len".into(),
                    lb: 0.0,
                    ub: 10.0,
                }),
            },
        };
        let facts = candidate_facts(&pvt, &d_fail());
        assert!(facts.reads.iter().any(|r| r.attr == "target"));
        assert!(facts.reads.iter().any(|r| r.attr == "len"));
        assert!(facts.writes.iter().any(|w| w.attr == "len"));
        assert!(matches!(
            facts.write_target,
            Some((ref a, WriteTarget::Range { .. })) if a == "len"
        ));
    }
}
