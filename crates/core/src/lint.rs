//! Bridge between the runtime's `Profile`/`Transform` enums and the
//! [`dp_lint`] static analyzer.
//!
//! `dp_lint` is deliberately decoupled from this crate: it checks
//! [`dp_lint::CandidateFacts`] records, not PVTs. This module lowers
//! each candidate [`Pvt`] into facts — typed attribute reads/writes,
//! the profile's observed violation on `D_fail`, the transform's
//! coverage, and (when statically known) the write target — and runs
//! [`dp_lint::analyze`] over them together with the schema and the
//! PVT-dependency edges, **before any oracle query** is spent.
//!
//! Under [`Lint::Prune`] the Error-level candidates are dropped from
//! the ranking. The lowering is sound for pruning: a fact is only
//! strong enough to produce an `Error` when the corresponding futility
//! is provable (e.g. `coverage_is_exact` is set only for transforms
//! whose zero-coverage application is a bit-exact identity), so a
//! pruned candidate could never have changed the explanation — only
//! cost interventions. `tests/lint_parity.rs` asserts this end to end.

use crate::config::Lint;
use crate::graph::PvtAttributeGraph;
use crate::profile::Profile;
use crate::pvt::Pvt;
use crate::transform::Transform;
use dp_frame::DataFrame;
use dp_lint::absint::{TransferOp, ValueRegion};
use dp_lint::domains::{AbsCol, AbsState, Interval, SupportDom};
use dp_lint::{AttrRequirement, CandidateFacts, Diagnostics, TypeClass, WriteTarget};
use dp_stats::sketch::ColumnSummary;

/// Typed attribute reads a profile performs when its violation is
/// evaluated.
fn profile_reads(profile: &Profile) -> Vec<AttrRequirement> {
    match profile {
        Profile::DomainCategorical { attr, .. } | Profile::DomainText { attr, .. } => {
            vec![AttrRequirement::new(attr, TypeClass::Textual)]
        }
        Profile::DomainNumeric { attr, .. } | Profile::Outlier { attr, .. } => {
            vec![AttrRequirement::new(attr, TypeClass::Numeric)]
        }
        Profile::Missing { attr, .. } => vec![AttrRequirement::new(attr, TypeClass::Any)],
        Profile::Selectivity { predicate, .. } => predicate
            .columns()
            .into_iter()
            .map(|c| AttrRequirement::new(c, TypeClass::Any))
            .collect(),
        // Every dependence measure coerces both columns: χ² builds
        // the contingency table over stringified values, and the
        // Pearson/SEM paths integer-code categoricals (Fig 1 row 9
        // supports mixed "categorical, numerical" pairs). No dtype is
        // inadmissible.
        Profile::Indep { a, b, .. } => vec![
            AttrRequirement::new(a, TypeClass::Any),
            AttrRequirement::new(b, TypeClass::Any),
        ],
        Profile::Conditional { condition, inner } => {
            let mut reads: Vec<AttrRequirement> = condition
                .columns()
                .into_iter()
                .map(|c| AttrRequirement::new(c, TypeClass::Any))
                .collect();
            reads.extend(profile_reads(inner));
            reads
        }
    }
}

/// Typed reads, typed writes, and the rewrites-everything flag of a
/// transformation.
fn transform_io(t: &Transform) -> (Vec<AttrRequirement>, Vec<AttrRequirement>, bool) {
    match t {
        Transform::MapToDomain { attr, .. } | Transform::RepairText { attr, .. } => (
            Vec::new(),
            vec![AttrRequirement::new(attr, TypeClass::Textual)],
            false,
        ),
        Transform::LinearRescale { attr, .. }
        | Transform::Winsorize { attr, .. }
        | Transform::ReplaceOutliers { attr, .. } => (
            Vec::new(),
            vec![AttrRequirement::new(attr, TypeClass::Numeric)],
            false,
        ),
        Transform::Impute { attr, .. } => (
            Vec::new(),
            vec![AttrRequirement::new(attr, TypeClass::Any)],
            false,
        ),
        // Row resampling drops/duplicates whole tuples: every
        // attribute is rewritten, so no "fix touches no profile
        // attribute" reasoning applies.
        Transform::ResampleSelectivity { predicate, .. } => (
            predicate
                .columns()
                .into_iter()
                .map(|c| AttrRequirement::new(c, TypeClass::Any))
                .collect(),
            Vec::new(),
            true,
        ),
        Transform::BreakDependenceShuffle { a, b, .. } => (
            vec![AttrRequirement::new(a, TypeClass::Any)],
            vec![AttrRequirement::new(b, TypeClass::Any)],
            false,
        ),
        // Like the dependence profiles they repair, these regress on
        // coerced values (categoricals are integer-coded), so any
        // dtype is admissible on either side.
        Transform::DecorrelateNoise { a, b, .. } | Transform::Residualize { a, b } => (
            vec![AttrRequirement::new(a, TypeClass::Any)],
            vec![AttrRequirement::new(b, TypeClass::Any)],
            false,
        ),
        Transform::Conditional { condition, inner } => {
            let (mut reads, writes, rewrites_all) = transform_io(inner);
            reads.extend(
                condition
                    .columns()
                    .into_iter()
                    .map(|c| AttrRequirement::new(c, TypeClass::Any)),
            );
            (reads, writes, rewrites_all)
        }
    }
}

/// Whether [`Transform::coverage`] returning `0.0` certifies that an
/// application is a **bit-exact identity** on that frame. Only then
/// may L3 emit an `Error` (prunable); otherwise zero coverage is a
/// `Warn`. `LinearRescale` is excluded (its re-mapping arithmetic is
/// not bit-exact even when the range matches within tolerance), as are
/// the stochastic/global transforms and `RepairText` (a value matching
/// the length bounds can still be edited toward the pattern).
fn coverage_is_exact(t: &Transform) -> bool {
    matches!(
        t,
        Transform::MapToDomain { .. }
            | Transform::Winsorize { .. }
            | Transform::Impute { .. }
            | Transform::ReplaceOutliers { .. }
    )
}

/// The statically-known target a transformation writes into an
/// attribute, for L4 conflict detection. `None` when the target is
/// data-dependent (imputation, resampling, noise, …).
fn write_target(t: &Transform) -> Option<(String, WriteTarget)> {
    match t {
        Transform::MapToDomain { attr, values } => {
            Some((attr.clone(), WriteTarget::Domain(values.clone())))
        }
        Transform::LinearRescale { attr, lb, ub } | Transform::Winsorize { attr, lb, ub } => {
            Some((attr.clone(), WriteTarget::Range { lb: *lb, ub: *ub }))
        }
        Transform::Conditional { inner, .. } => write_target(inner),
        _ => None,
    }
}

/// Seed the abstract-interpretation state exactly from `D_fail`: per
/// column, the observed min/max hull (degrading to `Top` when any
/// non-finite value was seen), the exact null fraction, and the
/// distinct string support up to the summary cap. By construction the
/// seeded state *contains* the concrete frame, the soundness
/// precondition of every L6/L7/L9 certificate.
pub fn seed_state(d_fail: &DataFrame) -> AbsState {
    let mut state = AbsState::new();
    for col in d_fail.columns() {
        let s = ColumnSummary::build(col);
        let nf = s.null_fraction();
        let interval = if col.dtype().is_numeric() {
            match (s.min, s.max, s.non_finite) {
                (_, _, true) => Interval::Top,
                (Some(lo), Some(hi), false) => Interval::range(lo, hi),
                _ => Interval::Empty,
            }
        } else if col.dtype().is_string() {
            // String columns hold no numeric values at all.
            Interval::Empty
        } else {
            Interval::Top
        };
        let support = match s.support {
            Some(values) => SupportDom::Set(values.into_iter().collect()),
            None if col.dtype().is_string() => SupportDom::Top,
            // Non-string columns hold no string values.
            None if col.dtype().is_numeric() => SupportDom::Set(Default::default()),
            None => SupportDom::Top,
        };
        state.set(
            col.name(),
            AbsCol {
                interval,
                null_lo: nf,
                null_hi: nf,
                support,
            },
        );
    }
    state
}

/// Lower a transformation chain into the analyzer's abstract transfer
/// ops. Every transformation lowers (the stochastic ones to the
/// `Top`-producing ops, which certify nothing but stay sound), and
/// `Conditional` wraps its inner chain in `Guarded` — the abstract
/// engine then joins the guarded effect with the identity, which is
/// how L9 reaches exact no-ops hidden under a predicate.
fn lower_transfer(t: &Transform) -> Vec<TransferOp> {
    match t {
        Transform::MapToDomain { attr, values } => vec![TransferOp::MapIntoDomain {
            attr: attr.clone(),
            values: values.clone(),
        }],
        Transform::LinearRescale { attr, lb, ub } => vec![TransferOp::AffineToRange {
            attr: attr.clone(),
            lb: *lb,
            ub: *ub,
        }],
        Transform::Winsorize { attr, lb, ub } => vec![TransferOp::Clamp {
            attr: attr.clone(),
            lb: *lb,
            ub: *ub,
        }],
        Transform::RepairText { attr, .. } => {
            vec![TransferOp::RepairPattern { attr: attr.clone() }]
        }
        Transform::ReplaceOutliers { attr, .. } => {
            vec![TransferOp::BoundOutliers { attr: attr.clone() }]
        }
        Transform::Impute { attr, .. } => vec![TransferOp::FillNulls { attr: attr.clone() }],
        Transform::ResampleSelectivity { .. } => vec![TransferOp::ResampleRows],
        Transform::BreakDependenceShuffle { b, .. } => {
            vec![TransferOp::PermuteValues { attr: b.clone() }]
        }
        Transform::DecorrelateNoise { b, .. } | Transform::Residualize { b, .. } => {
            vec![TransferOp::Perturb { attr: b.clone() }]
        }
        Transform::Conditional { inner, .. } => lower_transfer(inner)
            .into_iter()
            .map(|op| TransferOp::Guarded(Box::new(op)))
            .collect(),
    }
}

/// L6's syntactic function key: `Some` iff the transformation is
/// deterministic, in which case equal keys mean the bit-identical
/// pure function — interchangeable in *any* evaluation context, not
/// just on `D_fail`.
fn transform_key(t: &Transform) -> Option<String> {
    t.is_deterministic().then(|| format!("{t:?}"))
}

/// The violated region of a profile constraining a single attribute,
/// for the L7 τ-unreachability certificate. `None` for profiles whose
/// violation is not a simple region-membership fraction (outlier
/// refitting, selectivity, dependence) and for conditional profiles
/// (the violation is computed over a data-dependent subset).
fn profile_region(p: &Profile) -> Option<(String, ValueRegion)> {
    match p {
        Profile::DomainNumeric { attr, lb, ub } => {
            Some((attr.clone(), ValueRegion::Range { lb: *lb, ub: *ub }))
        }
        Profile::DomainCategorical { attr, values } => {
            Some((attr.clone(), ValueRegion::Domain(values.clone())))
        }
        Profile::Missing { attr, theta } => {
            Some((attr.clone(), ValueRegion::NullFracAtMost(*theta)))
        }
        _ => None,
    }
}

/// Lower one candidate PVT into the analyzer's fact record. Public
/// so property tests can compare the lowered transfer chain's
/// abstract post-state against the concrete [`Transform::apply`]
/// result without re-implementing the lowering.
pub fn candidate_facts(pvt: &Pvt, d_fail: &DataFrame) -> CandidateFacts {
    let mut facts = CandidateFacts::new(pvt.id, pvt.profile.template_key());
    let (t_reads, t_writes, rewrites_all) = transform_io(&pvt.transform);
    facts.transform_reads = t_reads.iter().map(|r| r.attr.clone()).collect();
    facts.reads = profile_reads(&pvt.profile);
    facts.reads.extend(t_reads);
    facts.writes = t_writes;
    facts.rewrites_all_attributes = rewrites_all;
    facts.profile_attributes = pvt.profile.attributes();
    facts.profile_violation_on_fail = pvt.violation(d_fail);
    facts.coverage_on_fail = pvt.transform.coverage(d_fail);
    facts.coverage_is_exact = coverage_is_exact(&pvt.transform);
    facts.write_target = write_target(&pvt.transform);
    facts.transfer = lower_transfer(&pvt.transform);
    facts.transform_key = transform_key(&pvt.transform);
    facts.profile_region = profile_region(&pvt.profile);
    facts
}

/// Run the full L1–L9 static analysis over a candidate PVT set
/// against the failing dataset, before any oracle query. `tau` is the
/// run's acceptable-malfunction threshold (Definition 3), the margin
/// the L7 unreachability certificate must clear.
pub fn lint_pvts(pvts: &[Pvt], d_fail: &DataFrame, tau: f64) -> Diagnostics {
    let facts: Vec<CandidateFacts> = pvts.iter().map(|p| candidate_facts(p, d_fail)).collect();
    let edges = PvtAttributeGraph::new(pvts).dependency_edges();
    let state = seed_state(d_fail);
    dp_lint::analyze(&d_fail.schema(), &state, tau, &facts, &edges)
}

/// [`lint_and_prune`] emitting a [`dp_trace::LintSpan`] event with
/// the verdict counts (always emitted, `analyzed = false` under
/// `Lint::Off`, so a trace records that the pass was skipped).
pub(crate) fn lint_and_prune_traced(
    pvts: Vec<Pvt>,
    d_fail: &DataFrame,
    mode: Lint,
    tau: f64,
    tracer: &dp_trace::Tracer,
) -> (Diagnostics, Vec<Pvt>) {
    let (diag, kept) = lint_and_prune(pvts, d_fail, mode, tau);
    tracer.emit(|| {
        dp_trace::Event::Lint(dp_trace::LintSpan {
            analyzed: diag.analyzed,
            errors: diag.count(dp_lint::Severity::Error),
            warnings: diag.count(dp_lint::Severity::Warn),
            infos: diag.count(dp_lint::Severity::Info),
            pruned: diag.pruned.len(),
        })
    });
    if diag.analyzed {
        tracer.emit(|| {
            dp_trace::Event::LintFact(dp_trace::LintFactSpan {
                subsumption_classes: diag.equivalence.len(),
                subsumed: diag.subsumed.len(),
                unreachable: diag.unreachable_ids().len(),
                commuting_pairs: diag.commuting.len(),
                noop_certified: diag
                    .for_rule(dp_lint::RuleId::AbstractNoOp)
                    .iter()
                    .map(|d| d.pvt_ids.len())
                    .sum(),
            })
        });
    }
    (diag, kept)
}

/// Apply the configured lint policy: analyze (unless `Off`) and, under
/// `Prune`, drop the Error-level candidates before ranking (recording
/// their ids in [`Diagnostics::pruned`]) plus the non-representative
/// members of each L6 equivalence class (recorded in
/// [`Diagnostics::subsumed`]): the class applies one bit-identical
/// pure function, so the lowest-id representative's query answers for
/// every sibling — one oracle charge per class instead of one per
/// member, with the explanation unchanged.
pub(crate) fn lint_and_prune(
    pvts: Vec<Pvt>,
    d_fail: &DataFrame,
    mode: Lint,
    tau: f64,
) -> (Diagnostics, Vec<Pvt>) {
    match mode {
        Lint::Off => (Diagnostics::default(), pvts),
        Lint::Report => (lint_pvts(&pvts, d_fail, tau), pvts),
        Lint::Prune => {
            let mut diag = lint_pvts(&pvts, d_fail, tau);
            let errors = diag.error_pvt_ids();
            // The carrying representative is each class's lowest
            // *surviving* member; when every member is an Error the
            // whole class is pruned and nothing is subsumed.
            let subsumed: std::collections::BTreeSet<usize> = diag
                .equivalence
                .iter()
                .flat_map(|class| {
                    class
                        .iter()
                        .copied()
                        .filter(|id| !errors.contains(id))
                        .skip(1)
                })
                .collect();
            let (dropped, kept): (Vec<Pvt>, Vec<Pvt>) = pvts
                .into_iter()
                .partition(|p| errors.contains(&p.id) || subsumed.contains(&p.id));
            diag.pruned = dropped
                .iter()
                .map(|p| p.id)
                .filter(|id| errors.contains(id))
                .collect();
            diag.pruned.sort_unstable();
            diag.subsumed = subsumed.into_iter().collect();
            (diag, kept)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::ImputeStrategy;
    use dp_frame::{Column, DType};
    use dp_lint::{RuleId, Severity};
    use std::collections::BTreeSet;

    fn d_fail() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_strings(
                "target",
                DType::Categorical,
                vec![Some("0".into()), Some("4".into()), Some("1".into())],
            ),
            Column::from_floats("len", vec![Some(3.0), Some(15.0), Some(7.0)]),
        ])
        .unwrap()
    }

    fn domain_pvt(id: usize) -> Pvt {
        let values: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
        Pvt {
            id,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: values.clone(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values,
            },
        }
    }

    /// [`lint_pvts`] at the default τ, the margin the existing L1–L5
    /// tests were written against.
    fn lint_pvts_t(pvts: &[Pvt], d_fail: &DataFrame) -> Diagnostics {
        lint_pvts(pvts, d_fail, 0.2)
    }

    #[test]
    fn healthy_discovery_shaped_candidate_is_clean() {
        let diag = lint_pvts_t(&[domain_pvt(0)], &d_fail());
        assert!(diag.analyzed);
        assert!(diag.is_clean(), "{:?}", diag.diagnostics);
    }

    #[test]
    fn missing_attribute_trips_l1() {
        let pvt = Pvt {
            id: 0,
            profile: Profile::Missing {
                attr: "zip".into(),
                theta: 0.0,
            },
            transform: Transform::Impute {
                attr: "zip".into(),
                strategy: ImputeStrategy::Mode,
            },
        };
        let diag = lint_pvts_t(&[pvt], &d_fail());
        assert!(!diag.for_rule(RuleId::SchemaTyping).is_empty());
        assert!(diag.error_pvt_ids().contains(&0));
    }

    #[test]
    fn mistyped_write_trips_l1() {
        // Winsorize (numeric write) aimed at the categorical column.
        let pvt = Pvt {
            id: 3,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
            transform: Transform::Winsorize {
                attr: "target".into(),
                lb: 0.0,
                ub: 10.0,
            },
        };
        let diag = lint_pvts_t(&[pvt], &d_fail());
        let l1 = diag.for_rule(RuleId::SchemaTyping);
        assert!(
            l1.iter()
                .any(|d| d.severity == Severity::Error && d.attr.as_deref() == Some("target")),
            "{l1:?}"
        );
    }

    #[test]
    fn disjoint_fix_trips_l2() {
        // Profile on "target", fix on "len": provably cannot move the
        // profile's parameter.
        let pvt = Pvt {
            id: 1,
            profile: Profile::Missing {
                attr: "target".into(),
                theta: 0.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
        };
        let diag = lint_pvts_t(&[pvt], &d_fail());
        assert!(!diag.for_rule(RuleId::TransformConsistency).is_empty());
        assert!(diag.error_pvt_ids().contains(&1));
    }

    #[test]
    fn certified_noop_trips_l3_error() {
        // Winsorize bounds already containing the observed range:
        // coverage 0 and bit-exact at coverage 0 ⇒ Error.
        let pvt = Pvt {
            id: 2,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
        };
        let diag = lint_pvts_t(&[pvt], &d_fail());
        let l3 = diag.for_rule(RuleId::NoOpTransform);
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].severity, Severity::Error);
    }

    #[test]
    fn zero_coverage_without_certificate_is_warn() {
        // LinearRescale whose target range matches the observed range:
        // coverage 0, but not bit-exact ⇒ Warn, never pruned. The
        // profile itself is violated (values above 5), so L2 stays
        // quiet and L3 is the only rule in play.
        let pvt = Pvt {
            id: 5,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 5.0,
            },
            transform: Transform::LinearRescale {
                attr: "len".into(),
                lb: 3.0,
                ub: 15.0,
            },
        };
        let diag = lint_pvts_t(&[pvt], &d_fail());
        let l3 = diag.for_rule(RuleId::NoOpTransform);
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].severity, Severity::Warn);
        assert!(diag.error_pvt_ids().is_empty());
    }

    #[test]
    fn incompatible_targets_trip_l4() {
        let mk = |id: usize, lb: f64, ub: f64| Pvt {
            id,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb,
                ub,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb,
                ub,
            },
        };
        // [0,5] and [10,20] are disjoint target ranges on one column.
        let diag = lint_pvts_t(&[mk(0, 0.0, 5.0), mk(1, 10.0, 20.0)], &d_fail());
        let l4 = diag.for_rule(RuleId::WriteConflict);
        assert_eq!(l4.len(), 1);
        assert_eq!(l4[0].pvt_ids, vec![0, 1]);
        assert_eq!(l4[0].severity, Severity::Warn, "conflicts are never pruned");
    }

    #[test]
    fn components_surface_as_l5_info() {
        let other = Pvt {
            id: 7,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
        };
        // domain_pvt touches "target", `other` touches "len": two
        // disconnected components in G_PD.
        let diag = lint_pvts_t(&[domain_pvt(0), other], &d_fail());
        assert!(diag
            .for_rule(RuleId::GraphSanity)
            .iter()
            .any(|d| d.severity == Severity::Info));
    }

    #[test]
    fn prune_drops_only_error_candidates() {
        let noop = Pvt {
            id: 1,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 100.0,
            },
        };
        let (diag, kept) = lint_and_prune(vec![domain_pvt(0), noop], &d_fail(), Lint::Prune, 0.2);
        assert_eq!(diag.pruned, vec![1]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, 0);
    }

    #[test]
    fn off_and_report_keep_everything() {
        let pvts = vec![domain_pvt(0)];
        let (diag, kept) = lint_and_prune(pvts.clone(), &d_fail(), Lint::Off, 0.2);
        assert!(!diag.analyzed);
        assert_eq!(kept.len(), 1);
        let (diag, kept) = lint_and_prune(pvts, &d_fail(), Lint::Report, 0.2);
        assert!(diag.analyzed);
        assert!(diag.pruned.is_empty());
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn conditional_profiles_lower_recursively() {
        let pvt = Pvt {
            id: 0,
            profile: Profile::Conditional {
                condition: dp_frame::Predicate::cmp("target", dp_frame::CmpOp::Eq, "1"),
                inner: Box::new(Profile::DomainNumeric {
                    attr: "len".into(),
                    lb: 0.0,
                    ub: 10.0,
                }),
            },
            transform: Transform::Conditional {
                condition: dp_frame::Predicate::cmp("target", dp_frame::CmpOp::Eq, "1"),
                inner: Box::new(Transform::Winsorize {
                    attr: "len".into(),
                    lb: 0.0,
                    ub: 10.0,
                }),
            },
        };
        let facts = candidate_facts(&pvt, &d_fail());
        assert!(facts.reads.iter().any(|r| r.attr == "target"));
        assert!(facts.reads.iter().any(|r| r.attr == "len"));
        assert!(facts.writes.iter().any(|w| w.attr == "len"));
        assert!(matches!(
            facts.write_target,
            Some((ref a, WriteTarget::Range { .. })) if a == "len"
        ));
        // Conditional transforms lower to Guarded transfer ops and
        // the conditional profile yields no L7 region (the violation
        // is computed on a data-dependent subset).
        assert!(matches!(facts.transfer[..], [TransferOp::Guarded(_)]));
        assert!(facts.profile_region.is_none());
        assert!(facts.transform_key.is_some(), "winsorize is deterministic");
    }

    #[test]
    fn seeded_state_contains_the_frame_exactly() {
        let state = seed_state(&d_fail());
        let len = state.col("len");
        assert_eq!(len.interval, Interval::Range { lo: 3.0, hi: 15.0 });
        assert_eq!((len.null_lo, len.null_hi), (0.0, 0.0));
        assert_eq!(
            len.support,
            SupportDom::Set(Default::default()),
            "numeric columns hold no string values"
        );
        let target = state.col("target");
        assert_eq!(target.interval, Interval::Empty);
        match &target.support {
            SupportDom::Set(s) => {
                assert_eq!(
                    s.iter().cloned().collect::<Vec<_>>(),
                    vec!["0".to_string(), "1".to_string(), "4".to_string()]
                );
            }
            SupportDom::Top => panic!("small categorical support must be exact"),
        }
        // An unseeded column is unknown, not empty.
        assert_eq!(state.col("absent"), dp_lint::domains::AbsCol::top());
    }

    #[test]
    fn lowering_covers_every_transform_kind() {
        let shuffle = Transform::BreakDependenceShuffle {
            a: "len".into(),
            b: "target".into(),
            alpha: 0.1,
        };
        assert!(matches!(
            lower_transfer(&shuffle)[..],
            [TransferOp::PermuteValues { ref attr }] if attr == "target"
        ));
        assert!(transform_key(&shuffle).is_none(), "stochastic: no L6 key");
        let resample = Transform::ResampleSelectivity {
            predicate: dp_frame::Predicate::cmp("target", dp_frame::CmpOp::Eq, "1"),
            theta: 0.5,
        };
        assert!(matches!(
            lower_transfer(&resample)[..],
            [TransferOp::ResampleRows]
        ));
        let impute = Transform::Impute {
            attr: "len".into(),
            strategy: ImputeStrategy::Mode,
        };
        assert!(matches!(
            lower_transfer(&impute)[..],
            [TransferOp::FillNulls { .. }]
        ));
        assert!(transform_key(&impute).is_some());
    }

    #[test]
    fn identical_transforms_are_subsumed_under_prune() {
        // Two healthy candidates applying the bit-identical transform
        // (same key): one oracle charge, the lowest id carries it.
        let (diag, kept) = lint_and_prune(
            vec![domain_pvt(0), domain_pvt(1)],
            &d_fail(),
            Lint::Prune,
            0.2,
        );
        assert_eq!(diag.equivalence, vec![vec![0, 1]]);
        assert_eq!(diag.subsumed, vec![1]);
        assert!(diag.pruned.is_empty(), "subsumption is not an Error prune");
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, 0);
        // Report mode surfaces the class but drops nothing.
        let (diag, kept) = lint_and_prune(
            vec![domain_pvt(0), domain_pvt(1)],
            &d_fail(),
            Lint::Report,
            0.2,
        );
        assert_eq!(diag.equivalence, vec![vec![0, 1]]);
        assert!(diag.subsumed.is_empty());
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn tau_unreachable_candidate_trips_l7() {
        // Winsorize into [20, 30] can never move `len` back inside
        // the profile's [0, 1] region: post-interval [20, 30] is
        // disjoint and the column has no nulls, so the violation is
        // pinned at 1 > τ.
        let pvt = Pvt {
            id: 6,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 1.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 20.0,
                ub: 30.0,
            },
        };
        let diag = lint_pvts_t(std::slice::from_ref(&pvt), &d_fail());
        assert!(
            !diag.for_rule(RuleId::TauUnreachable).is_empty(),
            "{:?}",
            diag.diagnostics
        );
        assert!(diag.unreachable_ids().contains(&6));
        assert!(diag.error_pvt_ids().contains(&6), "L7 is prunable");
    }

    #[test]
    fn disjoint_deterministic_candidates_commute() {
        // domain_pvt writes "target", the winsorize writes "len":
        // disjoint deterministic footprints certify the pair.
        let other = Pvt {
            id: 3,
            profile: Profile::DomainNumeric {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
            transform: Transform::Winsorize {
                attr: "len".into(),
                lb: 0.0,
                ub: 10.0,
            },
        };
        let diag = lint_pvts_t(&[domain_pvt(0), other], &d_fail());
        assert_eq!(diag.commuting, vec![(0, 3)]);
    }

    #[test]
    fn lint_fact_event_follows_lint_event() {
        let tracer = dp_trace::Tracer::collect();
        let (_diag, _kept) = lint_and_prune_traced(
            vec![domain_pvt(0), domain_pvt(1)],
            &d_fail(),
            Lint::Prune,
            0.2,
            &tracer,
        );
        let records = tracer.finish();
        let lint_at = records
            .iter()
            .position(|r| matches!(r.event, dp_trace::Event::Lint(_)))
            .expect("lint event");
        match &records[lint_at + 1].event {
            dp_trace::Event::LintFact(f) => {
                assert_eq!(f.subsumption_classes, 1);
                assert_eq!(f.subsumed, 1);
                assert_eq!(f.unreachable, 0);
                assert_eq!(f.noop_certified, 0);
            }
            other => panic!("expected LintFact after Lint, got {other:?}"),
        }
        // Under Off no fact event is emitted.
        let tracer = dp_trace::Tracer::collect();
        let _ = lint_and_prune_traced(vec![domain_pvt(0)], &d_fail(), Lint::Off, 0.2, &tracer);
        assert!(!tracer
            .finish()
            .iter()
            .any(|r| matches!(r.event, dp_trace::Event::LintFact(_))));
    }
}
