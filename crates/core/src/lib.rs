//! # DataPrism — exposing the disconnect between data and systems
//!
//! A from-scratch Rust reproduction of **"DataPrism: Exposing
//! Disconnect between Data and Systems"** (SIGMOD 2022; preprint
//! title *DataExposer*, arXiv:2105.06058).
//!
//! Given a black-box [`System`] with a malfunction score
//! `m_S(D) ∈ [0, 1]`, a threshold `τ`, a **passing** dataset
//! (`m_S ≤ τ`) and a **failing** dataset (`m_S > τ`), DataPrism finds
//! a minimal set of *PVT triplets* ⟨[`Profile`], violation function,
//! [`Transform`]⟩ whose transformations repair the failing dataset:
//! the profiles are the causally verified root causes of the
//! malfunction, the transformations are the fix.
//!
//! ```
//! use dataprism::{explain_greedy, PrismConfig};
//! use dp_frame::{Column, DType, DataFrame};
//!
//! // A system that assumes labels are "-1"/"1" (the paper's
//! // Sentiment case study in miniature).
//! let mut system = |df: &DataFrame| {
//!     let col = df.column("target").unwrap();
//!     let bad = col.str_values().iter()
//!         .filter(|(_, s)| *s != "-1" && *s != "1").count();
//!     bad as f64 / df.n_rows().max(1) as f64
//! };
//! let pass = DataFrame::from_columns(vec![Column::from_strings(
//!     "target", DType::Categorical,
//!     vec![Some("-1".into()), Some("1".into()), Some("1".into()), Some("-1".into())],
//! )]).unwrap();
//! let fail = DataFrame::from_columns(vec![Column::from_strings(
//!     "target", DType::Categorical,
//!     vec![Some("0".into()), Some("4".into()), Some("4".into()), Some("0".into())],
//! )]).unwrap();
//!
//! let explanation = explain_greedy(
//!     &mut system, &fail, &pass, &PrismConfig::with_threshold(0.2),
//! ).unwrap();
//! assert!(explanation.resolved);
//! assert!(explanation.contains_template("domain_cat(target)"));
//! ```
//!
//! ## Module map
//!
//! | Paper element | Module |
//! |---|---|
//! | Data profiles (Fig 1) | [`profile`] |
//! | Violation functions (Fig 1) | [`mod@violation`] |
//! | Transformation functions (Fig 1) | [`transform`] |
//! | PVT triplets & composition (Defs 8–9) | [`pvt`] |
//! | Profile discovery & discriminative PVTs (§4.1 step 1) | [`discovery`] |
//! | PVT–attribute & dependency graphs (§4.2) | [`graph`] |
//! | Benefit scores (§4.2) | [`benefit`] |
//! | Malfunction oracle & intervention counting (Def 3) | [`oracle`] |
//! | Algorithm 1 (greedy) | [`greedy`] |
//! | Algorithms 2–3 (group testing) + GrpTest baseline | [`group_test`] |
//! | Algorithm 4 (min bisection, appendix A) | [`bisection`] |
//! | Algorithm 5 (decision-tree extension, appendix B) | [`decision_tree_ext`] |
//! | §5 baselines (BugDoc, Anchor) | [`baselines`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod benefit;
pub mod bisection;
pub mod cache;
mod conditional_tests;
pub mod config;
pub mod decision_tree_ext;
pub mod discovery;
pub mod error;
pub mod explanation;
pub mod facade;
pub mod graph;
pub mod greedy;
pub mod group_test;
pub mod lint;
pub mod oracle;
pub mod profile;
pub mod pvt;
pub mod report;
pub mod runtime;
pub mod transform;
pub mod violation;

pub use cache::{ScoreCache, SnapshotError};
pub use config::{DiscoveryConfig, Lint, OracleSampling, Prefilter, PrismConfig, SpeculationMode};
pub use discovery::DiscoveryStats;
pub use dp_lint::{Diagnostic, Diagnostics, RuleId, Severity};
pub use dp_trace::{
    Collector, Event, JsonlSink, LatencyHistogram, NullSink, QueryStat, RunMetrics,
    SampledQuerySpan, SearchTree, TraceConfig, TraceRecord, TraceSink, Tracer,
};
pub use error::{PrismError, Result};
pub use explanation::{Explanation, TraceEvent};
pub use facade::DataPrism;
pub use greedy::{
    explain_greedy, explain_greedy_parallel, explain_greedy_parallel_cached,
    explain_greedy_parallel_cached_with_pvts, explain_greedy_parallel_with_pvts,
    explain_greedy_with_pvts,
};
pub use group_test::{
    explain_group_test, explain_group_test_parallel, explain_group_test_parallel_cached,
    explain_group_test_parallel_cached_with_pvts, explain_group_test_parallel_with_pvts,
    explain_group_test_with_pvts, PartitionStrategy,
};
pub use lint::lint_pvts;
pub use oracle::{fingerprint, fingerprint_reference, CacheStats, Oracle, System, SystemFactory};
pub use profile::{DependenceKind, OutlierSpec, Profile};
pub use pvt::Pvt;
pub use runtime::{
    par_map, InterventionRuntime, ParOracle, Speculated, Speculation, SpeculationPlan,
};
pub use transform::Transform;
pub use violation::violation;
