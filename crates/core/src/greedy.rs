//! Algorithm 1 — `DataPrism-GRD`, the greedy intervention algorithm
//! (the paper's `DataExposerGRD`).
//!
//! One discriminative PVT is intervened on at a time, prioritized by
//! (1) adjacency to the highest-degree attributes of the
//! PVT–attribute graph (observation O1) and (2) benefit score
//! (observations O2/O3). Interventions that reduce the malfunction
//! score are kept and composed; the accumulated explanation is
//! post-processed by Make-Minimal (Definition 11).
//!
//! The algorithm runs over an [`InterventionRuntime`]: the serial
//! [`Oracle`] or the speculative [`crate::runtime::ParOracle`]. With
//! a parallel runtime, each round plans the next `width` serial picks
//! (by simulating the pick sequence under the all-rejected
//! hypothesis — a rejection only removes the candidate from the
//! graph), scores them concurrently as cache warming, and then
//! charges interventions for exactly the prefix a serial run would
//! consume. Results and intervention counts are identical for any
//! thread count.

use crate::benefit::benefit_scores;
use crate::config::PrismConfig;
use crate::discovery::{discriminative_pvts_traced, DiscoveryStats};
use crate::error::{PrismError, Result};
use crate::explanation::{Explanation, TraceEvent};
use crate::graph::PvtAttributeGraph;
use crate::oracle::{CacheStats, Oracle, System, SystemFactory};
use crate::pvt::Pvt;
use crate::runtime::{
    baseline_traced, decide_traced, intervene_traced, InterventionRuntime, ParOracle, Speculation,
};
use dp_frame::DataFrame;
use dp_trace::{DiagnosisSpan, Event, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build the tracer `config.trace` asks for, surfacing sink setup
/// failures (an unwritable JSONL path) as [`PrismError::Trace`]
/// before any oracle query is spent.
pub(crate) fn make_tracer(config: &PrismConfig) -> Result<Tracer> {
    Tracer::from_config(&config.trace).map_err(|e| PrismError::Trace(e.to_string()))
}

/// Emit the run-opening [`Event::DiagnosisBegin`] record.
pub(crate) fn emit_begin(
    tracer: &Tracer,
    algorithm: &str,
    rt: &dyn InterventionRuntime,
    config: &PrismConfig,
    num_threads: usize,
) {
    tracer.emit(|| {
        Event::DiagnosisBegin(DiagnosisSpan {
            algorithm: algorithm.to_string(),
            system: rt.system_name(),
            seed: config.seed,
            threshold: config.threshold,
            num_threads,
            speculation_depth: config.gt_speculation_depth,
        })
    });
}

/// Fold the discovery pre-filter counters into the explanation: the
/// legacy `discovery` field and the `prefilter_*` members of
/// [`dp_trace::RunMetrics`] report the same pass.
pub(crate) fn set_discovery(exp: &mut Explanation, stats: DiscoveryStats) {
    exp.metrics.prefilter_pairs = stats.pairs as u64;
    exp.metrics.prefilter_screened = stats.screened() as u64;
    exp.metrics.prefilter_exact = (stats.chi2_exact + stats.pearson_exact) as u64;
    exp.discovery = stats;
}

/// Validate the problem inputs (Definition 10 items 3–4): the passing
/// dataset must pass and the failing dataset must fail.
pub(crate) fn validate_inputs(
    rt: &mut dyn InterventionRuntime,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    tracer: &Tracer,
) -> Result<f64> {
    let pass_score = baseline_traced(rt, d_pass, tracer);
    if !rt.passes(pass_score) {
        return Err(PrismError::BadInput(format!(
            "passing dataset has malfunction {pass_score:.3} > τ = {:.3}",
            rt.threshold()
        )));
    }
    let fail_score = baseline_traced(rt, d_fail, tracer);
    if rt.passes(fail_score) {
        return Err(PrismError::BadInput(format!(
            "failing dataset has malfunction {fail_score:.3} ≤ τ = {:.3}",
            rt.threshold()
        )));
    }
    Ok(fail_score)
}

/// Make-Minimal (Alg 1 line 20): drop PVTs one at a time; keep the
/// drop whenever the remaining composition still brings the
/// malfunction below τ. Returns the minimal set, the repaired frame,
/// and its score.
///
/// Every drop-candidate reruns the remaining composition on a fresh,
/// stream-independent RNG, so whole scan windows can be materialized
/// and scored speculatively; interventions are still charged one by
/// one in scan order, and a successful drop discards the rest of its
/// window uncharged — exactly the serial consumption.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_minimal(
    rt: &mut dyn InterventionRuntime,
    d_fail: &DataFrame,
    mut selected: Vec<Pvt>,
    repaired: DataFrame,
    score: f64,
    seed: u64,
    trace: &mut Vec<TraceEvent>,
    tracer: &Tracer,
) -> Result<(Vec<Pvt>, DataFrame, f64)> {
    let mut best = (repaired, score);
    let width = rt.speculation_width().max(1);
    let mut i = 0;
    while selected.len() > 1 && i < selected.len() {
        let window_end = (i + width).min(selected.len());
        let jobs: Vec<Speculation<'_>> = (i..window_end)
            .map(|j| Speculation::Apply {
                pvts: selected
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != j)
                    .map(|(_, p)| p)
                    .collect(),
                base: d_fail,
                rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
            })
            .collect();
        let spec = rt.speculate(jobs)?;
        let mut dropped = false;
        for (offset, speculated) in spec.into_iter().enumerate() {
            let j = i + offset;
            // A rejected drop consumes only the verdict, never the
            // score — the one call site where a confidence-bounded
            // sampled FAIL may settle without a full evaluation.
            let (passed, s) = decide_traced(rt, &speculated.frame, tracer);
            if passed {
                let s = s.expect("passing decisions always carry an exact score");
                trace.push(TraceEvent::MinimalityDropped {
                    pvt_id: selected[j].id,
                });
                let dropped_id = selected[j].id;
                tracer.emit(|| Event::MinimalityDrop { pvt: dropped_id });
                selected.remove(j);
                best = (speculated.frame, s);
                // Restart the scan: minimality must hold for every
                // strict subset of the final set.
                i = 0;
                dropped = true;
                break;
            }
        }
        if !dropped {
            i = window_end;
        }
    }
    Ok((selected, best.0, best.1))
}

/// Run `DataPrism-GRD` (Algorithm 1).
///
/// Returns the (minimal, when resolved) explanation of why `system`
/// malfunctions on `d_fail` but not on `d_pass`.
pub fn explain_greedy(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions)
        .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "greedy", &oracle, config, 1);
    // Lines 1–4: discriminative PVTs.
    let (pvts, stats) = discriminative_pvts_traced(d_pass, d_fail, &config.discovery, 1, &tracer);
    let mut exp = run_greedy(&mut oracle, d_fail, d_pass, pvts, config, tracer)?;
    set_discovery(&mut exp, stats);
    Ok(exp)
}

/// Algorithm 1 with a caller-supplied discriminative PVT set.
///
/// The synthetic-pipeline experiments (§5.2, Figs 8–9) control the
/// number of discriminative PVTs directly; this entry point skips
/// rediscovery and runs lines 5–21 on the given candidates.
pub fn explain_greedy_with_pvts(
    system: &mut dyn System,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvts: Vec<Pvt>,
    config: &PrismConfig,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions)
        .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "greedy", &oracle, config, 1);
    run_greedy(&mut oracle, d_fail, d_pass, pvts, config, tracer)
}

/// [`explain_greedy`] on the parallel runtime: profile discovery
/// fans out per attribute and candidate interventions are scored
/// speculatively by `config.num_threads` workers. The explanation is
/// bit-for-bit identical to the serial one.
pub fn explain_greedy_parallel(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::new(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "greedy", &rt, config, config.num_threads);
    let (pvts, stats) = discriminative_pvts_traced(
        d_pass,
        d_fail,
        &config.discovery,
        config.num_threads,
        &tracer,
    );
    let mut exp = run_greedy(&mut rt, d_fail, d_pass, pvts, config, tracer)?;
    set_discovery(&mut exp, stats);
    Ok(exp)
}

/// [`explain_greedy_parallel`] warm-started from — and exporting back
/// into — a cross-run [`crate::ScoreCache`].
///
/// The runtime's fingerprint cache is seeded from `cache` before any
/// oracle query, and everything the run scored (charged and
/// speculative alike) is absorbed back into `cache` afterwards —
/// **including on error**, so a budget-exhausted or assumption-failed
/// run still pays forward its evaluations. The explanation is
/// bit-for-bit identical to a cold run; only `cache_misses` drops and
/// [`dp_trace::RunMetrics::warm_hits`] counts the queries the warm
/// start answered.
pub fn explain_greedy_parallel_cached(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    config: &PrismConfig,
    cache: &mut crate::cache::ScoreCache,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::with_warm_cache(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
        cache,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "greedy", &rt, config, config.num_threads);
    let (pvts, stats) = discriminative_pvts_traced(
        d_pass,
        d_fail,
        &config.discovery,
        config.num_threads,
        &tracer,
    );
    let result = run_greedy(&mut rt, d_fail, d_pass, pvts, config, tracer);
    cache.absorb(&rt.export_cache());
    let mut exp = result?;
    set_discovery(&mut exp, stats);
    Ok(exp)
}

/// [`explain_greedy_parallel_cached`] with a caller-supplied
/// candidate set: the warm-cache runtime, but discovery is skipped —
/// the monitor's targeted re-diagnosis hands in only the drifted
/// profiles' candidates and still reuses the namespace cache.
pub fn explain_greedy_parallel_cached_with_pvts(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvts: Vec<Pvt>,
    config: &PrismConfig,
    cache: &mut crate::cache::ScoreCache,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::with_warm_cache(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
        cache,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "greedy", &rt, config, config.num_threads);
    let result = run_greedy(&mut rt, d_fail, d_pass, pvts, config, tracer);
    cache.absorb(&rt.export_cache());
    result
}

/// [`explain_greedy_with_pvts`] on the parallel runtime.
pub fn explain_greedy_parallel_with_pvts(
    factory: &dyn SystemFactory,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvts: Vec<Pvt>,
    config: &PrismConfig,
) -> Result<Explanation> {
    let tracer = make_tracer(config)?;
    let mut rt = ParOracle::new(
        factory,
        config.threshold,
        config.max_interventions,
        config.num_threads,
    )
    .with_speculation(config.speculation, config.speculation_budget)
    .with_sampling(config.oracle_sampling, config.seed);
    emit_begin(&tracer, "greedy", &rt, config, config.num_threads);
    run_greedy(&mut rt, d_fail, d_pass, pvts, config, tracer)
}

/// Algorithm 1 lines 5–21 over an abstract runtime.
pub(crate) fn run_greedy(
    rt: &mut dyn InterventionRuntime,
    d_fail: &DataFrame,
    d_pass: &DataFrame,
    pvts: Vec<Pvt>,
    config: &PrismConfig,
    tracer: Tracer,
) -> Result<Explanation> {
    let initial_score = validate_inputs(rt, d_fail, d_pass, &tracer)?;
    if pvts.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    // Static L1–L9 analysis of the candidate set, before any oracle
    // query; `Lint::Prune` drops provably futile candidates here.
    let (lint, pvts) =
        crate::lint::lint_and_prune_traced(pvts, d_fail, config.lint, config.threshold, &tracer);
    if pvts.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    let mut trace = vec![TraceEvent::Discovered { n_pvts: pvts.len() }];

    // Lines 5–6: PVT–attribute graph and benefit scores.
    let mut graph = PvtAttributeGraph::new(&pvts);
    let mut benefits = benefit_scores(&pvts, d_fail);

    // Lines 7–8.
    let mut selected: Vec<Pvt> = Vec::new();
    let mut current = d_fail.clone();
    let mut score = initial_score;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let width = rt.speculation_width().max(1);

    // Line 9: intervene until acceptable.
    while !rt.passes(score) && !graph.is_empty() && !rt.exhausted() {
        // Lines 10–11, planned `width` picks ahead: simulate the
        // serial pick sequence under the hypothesis that every
        // candidate is rejected — a rejection removes the pick from
        // the graph but changes neither the dataset, the score, nor
        // the benefit map, so removals on a clone reproduce the
        // serial choices (including high-degree re-ranking and
        // `max_by` tie-breaking) exactly.
        let key = |id: usize| -> f64 {
            if config.use_benefit {
                benefits.get(&id).copied().unwrap_or(0.0)
            } else {
                // Ablation: O2/O3 off ranks in a seed-dependent
                // arbitrary order — a Knuth-hash of the id, so the
                // ablation measures uninformed search rather than a
                // lucky id ordering.
                (id as u64)
                    .wrapping_add(config.seed)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15) as f64
            }
        };
        let mut sim_graph = graph.clone();
        let mut plan: Vec<usize> = Vec::new();
        while plan.len() < width && !sim_graph.is_empty() {
            let hda = if config.use_high_degree {
                sim_graph.high_degree_pvts()
            } else {
                sim_graph.pvt_ids()
            };
            let Some(&chosen_id) = hda.iter().max_by(|&&a, &&b| key(a).total_cmp(&key(b))) else {
                break;
            };
            plan.push(chosen_id);
            sim_graph.remove(chosen_id);
        }
        if plan.is_empty() {
            break;
        }

        // Line 12, batched: materialize each candidate against the
        // *current* dataset with the exact RNG state a serial run
        // would hold. Stochastic transformations consume the stream
        // and must advance it on the main thread; deterministic ones
        // never touch it and are deferred to the runtime's workers.
        let mut plan_rng = rng.clone();
        let mut jobs: Vec<Speculation<'_>> = Vec::with_capacity(plan.len());
        let mut rng_states: Vec<StdRng> = Vec::with_capacity(plan.len());
        for &id in &plan {
            let pvt = pvts
                .iter()
                .find(|p| p.id == id)
                .expect("graph only holds known ids");
            if pvt.transform.is_deterministic() {
                jobs.push(Speculation::Apply {
                    pvts: vec![pvt],
                    base: &current,
                    rng: plan_rng.clone(),
                });
            } else {
                let (frame, _) = pvt.apply(&current, &mut plan_rng)?;
                jobs.push(Speculation::Ready(frame));
            }
            // RNG state after applying candidates 0..=i — the state
            // the serial run holds once candidate i is processed,
            // kept or not.
            rng_states.push(plan_rng.clone());
        }
        let spec = rt.speculate(jobs)?;

        // Decision pass: replay the serial loop, charging exactly the
        // prefix a serial run would consume. A kept candidate changes
        // the dataset and the benefit map, so the rest of the batch
        // is discarded unscored and uncharged.
        for (i, speculated) in spec.into_iter().enumerate() {
            if i > 0 && rt.exhausted() {
                break;
            }
            let chosen_id = plan[i];
            let transformed = speculated.frame;
            let new_score = intervene_traced(rt, &transformed, &tracer);
            let delta = score - new_score;

            // Line 13: mark explored.
            graph.remove(chosen_id);
            benefits.remove(&chosen_id);
            trace.push(TraceEvent::Intervention {
                pvt_ids: vec![chosen_id],
                before: score,
                after: new_score,
                kept: delta > 0.0,
            });
            tracer.emit(|| Event::GreedyPick {
                pvt: chosen_id,
                before: score,
                after: new_score,
                kept: delta > 0.0,
            });
            rng = rng_states[i].clone();

            // Lines 14–19.
            if delta > 0.0 {
                current = transformed;
                score = new_score;
                selected.push(
                    pvts.iter()
                        .find(|p| p.id == chosen_id)
                        .expect("graph only holds known ids")
                        .clone(),
                );
                // Line 17: refresh benefits against the updated
                // dataset.
                let live = graph.pvt_ids();
                crate::benefit::update_benefits(&mut benefits, &pvts, &live, &current);
                break;
            }
        }
    }

    let resolved_before_minimal = rt.passes(score);

    // Line 20: Make-Minimal.
    let (selected, current, score) = if resolved_before_minimal && config.make_minimal {
        make_minimal(
            rt,
            d_fail,
            selected,
            current,
            score,
            config.seed,
            &mut trace,
            &tracer,
        )?
    } else {
        (selected, current, score)
    };

    if !rt.passes(score) && rt.exhausted() {
        return Err(PrismError::BudgetExhausted {
            used: rt.interventions(),
            best_score: score,
        });
    }

    finish_run(
        rt,
        &tracer,
        lint,
        selected,
        initial_score,
        score,
        current,
        trace,
    )
}

/// Shared run epilogue: emit [`Event::DiagnosisEnd`], merge worker
/// metric shards, fold the lint counters into [`RunMetrics`], derive
/// the legacy [`CacheStats`] view, and drain the tracer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_run(
    rt: &mut dyn InterventionRuntime,
    tracer: &Tracer,
    lint: dp_lint::Diagnostics,
    selected: Vec<Pvt>,
    initial_score: f64,
    score: f64,
    current: DataFrame,
    trace: Vec<TraceEvent>,
) -> Result<Explanation> {
    let resolved = rt.passes(score);
    let interventions = rt.interventions();
    tracer.emit(|| Event::DiagnosisEnd {
        resolved,
        interventions,
        final_score: score,
    });
    let mut metrics = rt.run_metrics();
    metrics.lint_errors = lint.count(dp_lint::Severity::Error) as u64;
    metrics.lint_warnings = lint.count(dp_lint::Severity::Warn) as u64;
    metrics.lint_infos = lint.count(dp_lint::Severity::Info) as u64;
    metrics.lint_pruned = lint.pruned.len() as u64;
    metrics.lint_subsumed = lint.subsumed.len() as u64;
    metrics.lint_unreachable = lint.unreachable_ids().len() as u64;
    let cache = CacheStats::from_metrics(&metrics);
    let trace_records = tracer.finish();
    Ok(Explanation {
        pvts: selected,
        interventions,
        initial_score,
        final_score: score,
        resolved,
        repaired: current,
        trace,
        cache,
        discovery: DiscoveryStats::default(),
        lint,
        metrics,
        trace_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrismConfig;
    use crate::violation::violation;
    use dp_frame::{Column, DType, DataFrame};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    /// A miniature sentiment-style scenario: the system expects
    /// target ∈ {-1, 1}; malfunction = fraction of labels outside
    /// that domain (as if every such row were misclassified).
    fn label_domain_system(df: &DataFrame) -> f64 {
        let col = df.column("target").unwrap();
        let bad = col
            .str_values()
            .iter()
            .filter(|(_, s)| *s != "-1" && *s != "1")
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    }

    fn pass_fail() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1", "1", "-1", "1", "-1"]),
            Column::from_ints(
                "len",
                vec![
                    Some(100),
                    Some(150),
                    Some(120),
                    Some(90),
                    Some(140),
                    Some(100),
                    Some(130),
                    Some(95),
                ],
            ),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0", "4", "0", "4", "0"]),
            Column::from_ints(
                "len",
                vec![
                    Some(20),
                    Some(25),
                    Some(22),
                    Some(18),
                    Some(24),
                    Some(21),
                    Some(23),
                    Some(19),
                ],
            ),
        ])
        .unwrap();
        (pass, fail)
    }

    #[test]
    fn finds_the_domain_root_cause() {
        let (pass, fail) = pass_fail();
        let mut system = label_domain_system;
        let config = PrismConfig::with_threshold(0.2);
        let exp = explain_greedy(&mut system, &fail, &pass, &config).unwrap();
        assert!(exp.resolved);
        assert_eq!(exp.pvts.len(), 1, "minimal explanation: {exp}");
        assert!(exp.contains_template("domain_cat(target)"));
        assert!(
            exp.interventions <= 5,
            "took {} interventions",
            exp.interventions
        );
        assert_eq!(exp.final_score, 0.0);
        // The repaired dataset satisfies the cause profile.
        assert_eq!(violation(&exp.repaired, &exp.pvts[0].profile), 0.0);
        assert_eq!(exp.initial_score, 1.0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let (pass, fail) = pass_fail();
        let mut system = label_domain_system;
        let config = PrismConfig::with_threshold(0.2);
        let serial = explain_greedy(&mut system, &fail, &pass, &config).unwrap();
        for threads in [1, 2, 8] {
            let cfg = PrismConfig {
                num_threads: threads,
                ..PrismConfig::with_threshold(0.2)
            };
            let factory = || label_domain_system;
            let par = explain_greedy_parallel(&factory, &fail, &pass, &cfg).unwrap();
            assert_eq!(par.pvt_ids(), serial.pvt_ids(), "{threads} threads");
            assert_eq!(par.interventions, serial.interventions);
            assert_eq!(par.final_score, serial.final_score);
            assert_eq!(par.trace, serial.trace);
            assert_eq!(
                crate::oracle::fingerprint(&par.repaired),
                crate::oracle::fingerprint(&serial.repaired)
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let (pass, fail) = pass_fail();
        let mut system = label_domain_system;
        let config = PrismConfig::with_threshold(0.2);
        // Swapped inputs: "failing" dataset passes.
        let err = explain_greedy(&mut system, &pass, &fail, &config).unwrap_err();
        assert!(matches!(err, PrismError::BadInput(_)));
    }

    #[test]
    fn no_discriminative_pvts_reported() {
        let (pass, _) = pass_fail();
        // A system that fails on the "failing" copy only via row
        // count (not profile-expressible): use an identical dataset
        // so no PVT is discriminative, with a threshold placing one
        // dataset on each side.
        let mut calls = 0usize;
        let mut system = move |_: &DataFrame| {
            calls += 1;
            if calls == 1 {
                0.1 // first query: D_pass
            } else {
                0.9 // second query: D_fail (same content? no-cache different fingerprint needed)
            }
        };
        // Use two structurally identical but distinct frames: the
        // oracle fingerprints content, so make one cell differ in a
        // way discovery tolerates (same profiles).
        let mut fail = pass.clone();
        fail.column_mut("len").unwrap().set(0, 101.into()).unwrap();
        let err = explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2))
            .unwrap_err();
        assert!(matches!(err, PrismError::NoDiscriminativePvts), "{err}");
    }

    #[test]
    fn trace_records_interventions() {
        let (pass, fail) = pass_fail();
        let mut system = label_domain_system;
        let exp =
            explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2)).unwrap();
        assert!(matches!(exp.trace[0], TraceEvent::Discovered { n_pvts } if n_pvts > 0));
        let kept: Vec<bool> = exp
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Intervention { kept, .. } => Some(*kept),
                _ => None,
            })
            .collect();
        assert!(kept.iter().any(|&k| k), "at least one kept intervention");
    }

    #[test]
    fn unresolvable_returns_best_effort() {
        let (pass, fail) = pass_fail();
        // System that always fails badly no matter the data — except
        // on the exact passing dataset (so validation succeeds).
        let pass_fp = crate::oracle::fingerprint(&pass);
        let mut system = move |df: &DataFrame| {
            if crate::oracle::fingerprint(df) == pass_fp {
                0.0
            } else {
                0.9
            }
        };
        let exp =
            explain_greedy(&mut system, &fail, &pass, &PrismConfig::with_threshold(0.2)).unwrap();
        assert!(!exp.resolved);
        assert!(exp.pvts.is_empty(), "nothing reduced the malfunction");
    }
}
