//! The parallel intervention runtime.
//!
//! The paper's algorithms are strictly sequential: every decision
//! (keep a PVT, recurse into a partition) depends on the score of the
//! previous intervention. What *can* run concurrently is the
//! expensive part — materializing candidate datasets and running the
//! system under diagnosis on them. This module exploits that split
//! with **speculation as cache warming**:
//!
//! 1. An algorithm plans the next few candidate datasets a serial run
//!    *might* query (under explicit hypotheses about its own
//!    decisions) and hands them to
//!    [`InterventionRuntime::speculate`].
//! 2. A parallel runtime ([`ParOracle`]) materializes and scores them
//!    on worker threads, each holding its own [`System`] instance
//!    built by a [`SystemFactory`], into a shared, lock-guarded
//!    fingerprint cache. **No interventions are charged.**
//! 3. The algorithm then replays its decisions exactly as a serial
//!    run would, charging interventions one by one through
//!    [`InterventionRuntime::intervene`]; queries the speculation
//!    guessed right become cache hits. Candidates a serial run would
//!    never have reached are simply discarded.
//!
//! Because all charging and all decisions flow through `intervene` in
//! serial order, explanations, malfunction scores, and intervention
//! counts are **bit-for-bit identical for any thread count** (the
//! paper's Fig 7/Fig 9 numbers are preserved); only wall-clock time
//! and the cache hit/miss split change. `tests/parallel_conformance.rs`
//! pins this invariant across every bundled scenario.

use crate::error::Result;
use crate::oracle::{sanitize, CacheStats, Oracle, System, SystemFactory};
use crate::pvt::{apply_composition, Pvt};
use dp_frame::DataFrame;
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// One candidate dataset an algorithm may query soon.
pub enum Speculation<'a> {
    /// Already materialized by the caller (e.g. because its
    /// transformation consumes the algorithm's RNG stream, which must
    /// advance on the main thread).
    Ready(DataFrame),
    /// To be materialized by applying the composition of `pvts` (in
    /// the given order) to `base`, consuming `rng` — a snapshot of
    /// the exact RNG state a serial run would hold at this point, so
    /// deferred materialization is reproducible.
    Apply {
        /// Transformations to compose, in application order.
        pvts: Vec<&'a Pvt>,
        /// Dataset to transform.
        base: &'a DataFrame,
        /// RNG stream snapshot to consume.
        rng: StdRng,
    },
}

/// A materialized speculation.
pub struct Speculated {
    /// The candidate dataset.
    pub frame: DataFrame,
    /// For [`Speculation::Apply`] jobs: the RNG state after the
    /// composition, so the caller can adopt it if (and only if) the
    /// serial decision path turns out to apply this candidate.
    /// `None` for [`Speculation::Ready`] jobs.
    pub rng_after: Option<StdRng>,
}

fn materialize(job: Speculation<'_>) -> Result<Speculated> {
    match job {
        Speculation::Ready(frame) => Ok(Speculated {
            frame,
            rng_after: None,
        }),
        Speculation::Apply {
            pvts,
            base,
            mut rng,
        } => {
            let (frame, _) = apply_composition(&pvts, base, &mut rng)?;
            Ok(Speculated {
                frame,
                rng_after: Some(rng),
            })
        }
    }
}

/// The oracle abstraction the intervention algorithms run against.
///
/// [`Oracle`] implements it serially (speculation only materializes,
/// width 1); [`ParOracle`] scores speculations concurrently. The
/// charged query sequence — and therefore every result the paper
/// reports — must be identical under both.
pub trait InterventionRuntime {
    /// Score a baseline dataset (never charged; stays free forever).
    fn baseline(&mut self, df: &DataFrame) -> f64;
    /// Score a transformed dataset, charging one intervention (cached
    /// or not — an intervention is the act of asking).
    fn intervene(&mut self, df: &DataFrame) -> f64;
    /// Materialize the given candidate datasets, and — in parallel
    /// runtimes — score them into the fingerprint cache without
    /// charging interventions.
    fn speculate(&mut self, jobs: Vec<Speculation<'_>>) -> Result<Vec<Speculated>>;
    /// How many candidates per batch are worth planning ahead (1 ⇒
    /// don't speculate: plan lazily exactly as the serial algorithm
    /// would).
    fn speculation_width(&self) -> usize;
    /// Whether a score is acceptable (`m ≤ τ`).
    fn passes(&self, score: f64) -> bool;
    /// Whether the intervention budget is exhausted.
    fn exhausted(&self) -> bool;
    /// Interventions charged so far.
    fn interventions(&self) -> usize;
    /// The acceptable-malfunction threshold `τ`.
    fn threshold(&self) -> f64;
    /// Cache counters accumulated so far.
    fn cache_stats(&self) -> CacheStats;
    /// Name of the system under diagnosis.
    fn system_name(&self) -> String;
}

impl InterventionRuntime for Oracle<'_> {
    fn baseline(&mut self, df: &DataFrame) -> f64 {
        Oracle::baseline(self, df)
    }

    fn intervene(&mut self, df: &DataFrame) -> f64 {
        Oracle::intervene(self, df)
    }

    fn speculate(&mut self, jobs: Vec<Speculation<'_>>) -> Result<Vec<Speculated>> {
        jobs.into_iter().map(materialize).collect()
    }

    fn speculation_width(&self) -> usize {
        1
    }

    fn passes(&self, score: f64) -> bool {
        Oracle::passes(self, score)
    }

    fn exhausted(&self) -> bool {
        Oracle::exhausted(self)
    }

    fn interventions(&self) -> usize {
        self.interventions
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn cache_stats(&self) -> CacheStats {
        Oracle::cache_stats(self)
    }

    fn system_name(&self) -> String {
        Oracle::system_name(self)
    }
}

/// Shared (worker-visible) cache state: fingerprint → score, plus the
/// speculative-evaluation counter.
struct SharedCache {
    map: HashMap<u64, f64>,
    speculative: usize,
}

/// Parallel intervention runtime: an [`Oracle`]-equivalent whose
/// speculation batches are scored by `num_threads` worker threads
/// (one independent [`System`] instance each, built lazily from the
/// factory) into a shared fingerprint cache.
///
/// With `num_threads ≤ 1` speculation degenerates to serial
/// materialization with no pre-scoring — a true serial baseline.
pub struct ParOracle<'a> {
    factory: &'a dyn SystemFactory,
    workers: Vec<Box<dyn System + Send>>,
    /// Acceptable-malfunction threshold `τ`.
    pub threshold: f64,
    /// Interventions charged so far (thread-count invariant).
    pub interventions: usize,
    /// Hard intervention cap.
    pub budget: usize,
    num_threads: usize,
    hits: usize,
    misses: usize,
    cache: Mutex<SharedCache>,
    free: HashSet<u64>,
}

impl<'a> ParOracle<'a> {
    /// Wrap a system factory with threshold `τ`, an intervention
    /// budget, and a worker count.
    pub fn new(
        factory: &'a dyn SystemFactory,
        threshold: f64,
        budget: usize,
        num_threads: usize,
    ) -> Self {
        ParOracle {
            factory,
            workers: Vec::new(),
            threshold,
            interventions: 0,
            budget,
            num_threads: num_threads.max(1),
            hits: 0,
            misses: 0,
            cache: Mutex::new(SharedCache {
                map: HashMap::new(),
                speculative: 0,
            }),
            free: HashSet::new(),
        }
    }

    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            self.workers.push(self.factory.build());
        }
    }

    /// Score `df` through the shared cache on the primary worker,
    /// without charging. Returns (score, was_cached).
    fn score(&mut self, fp: u64, df: &DataFrame) -> f64 {
        if let Some(&score) = self.cache.lock().expect("cache lock").map.get(&fp) {
            self.hits += 1;
            return score;
        }
        self.misses += 1;
        self.ensure_workers(1);
        let score = sanitize(self.workers[0].malfunction(df));
        self.cache.lock().expect("cache lock").map.insert(fp, score);
        score
    }
}

impl InterventionRuntime for ParOracle<'_> {
    fn baseline(&mut self, df: &DataFrame) -> f64 {
        let fp = crate::oracle::fingerprint(df);
        self.free.insert(fp);
        // Baselines never count toward the hit/miss split either — the
        // problem definition assumes the two baseline scores are known.
        if let Some(&score) = self.cache.lock().expect("cache lock").map.get(&fp) {
            return score;
        }
        self.ensure_workers(1);
        let score = sanitize(self.workers[0].malfunction(df));
        self.cache.lock().expect("cache lock").map.insert(fp, score);
        score
    }

    fn intervene(&mut self, df: &DataFrame) -> f64 {
        let fp = crate::oracle::fingerprint(df);
        if !self.free.contains(&fp) {
            self.interventions += 1;
        }
        self.score(fp, df)
    }

    fn speculate(&mut self, jobs: Vec<Speculation<'_>>) -> Result<Vec<Speculated>> {
        if self.num_threads <= 1 || jobs.len() <= 1 {
            // Serial mode (or nothing to overlap): materialize only,
            // never pre-score — identical work to the serial oracle.
            return jobs.into_iter().map(materialize).collect();
        }
        let n_jobs = jobs.len();
        let n_workers = self.num_threads.min(n_jobs);
        self.ensure_workers(n_workers);
        // Index-tagged pop queue (reversed so workers drain in job
        // order) and one result slot per job; plain `Mutex` state
        // keeps the crate `forbid(unsafe_code)`-clean.
        let queue: Mutex<Vec<(usize, Speculation<'_>)>> =
            Mutex::new(jobs.into_iter().enumerate().rev().collect());
        let results: Vec<Mutex<Option<Result<Speculated>>>> =
            (0..n_jobs).map(|_| Mutex::new(None)).collect();
        let cache = &self.cache;
        let queue_ref = &queue;
        let results_ref = &results;
        std::thread::scope(|scope| {
            for worker in self.workers.iter_mut().take(n_workers) {
                scope.spawn(move || loop {
                    let job = queue_ref.lock().expect("queue lock").pop();
                    let Some((idx, job)) = job else { break };
                    let out = materialize(job).inspect(|speculated| {
                        let fp = crate::oracle::fingerprint(&speculated.frame);
                        let known = cache.lock().expect("cache lock").map.contains_key(&fp);
                        if !known {
                            // Score outside the lock; a racing
                            // duplicate evaluation is harmless (same
                            // deterministic score, idempotent insert).
                            let score = sanitize(worker.malfunction(&speculated.frame));
                            let mut shared = cache.lock().expect("cache lock");
                            shared.map.insert(fp, score);
                            shared.speculative += 1;
                        }
                    });
                    *results_ref[idx].lock().expect("result lock") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result lock")
                    .expect("every queued job produces a result")
            })
            .collect()
    }

    fn speculation_width(&self) -> usize {
        self.num_threads
    }

    fn passes(&self, score: f64) -> bool {
        score <= self.threshold
    }

    fn exhausted(&self) -> bool {
        self.interventions >= self.budget
    }

    fn interventions(&self) -> usize {
        self.interventions
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            speculative: self.cache.lock().expect("cache lock").speculative,
            interventions: self.interventions,
        }
    }

    fn system_name(&self) -> String {
        self.factory.name()
    }
}

/// Map `f` over `items` on up to `num_threads` scoped worker threads,
/// preserving item order in the output. With `num_threads ≤ 1` (or a
/// single item) this is a plain serial map, so results are identical
/// for any thread count as long as `f` is pure.
///
/// This is the fan-out primitive behind parallel discovery — per
/// attribute, per attribute pair, and per frame for the pre-filter
/// sketches — and is public so benchmarks and downstream harnesses
/// can reuse it for deterministic data-parallel work.
pub fn par_map<T, R, F>(items: Vec<T>, num_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if num_threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue_ref = &queue;
    let results_ref = &results;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..num_threads.min(n) {
            scope.spawn(move || loop {
                let item = queue_ref.lock().expect("queue lock").pop();
                let Some((idx, item)) = item else { break };
                *results_ref[idx].lock().expect("result lock") = Some(f_ref(item));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every item produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::Column;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn df(vals: &[i64]) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_ints(
            "x",
            vals.iter().map(|&v| Some(v)).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn speculation_is_never_charged() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        let frames: Vec<DataFrame> = (0..8).map(|i| df(&[i, i + 1])).collect();
        let jobs: Vec<Speculation<'_>> = frames
            .iter()
            .map(|f| Speculation::Ready(f.clone()))
            .collect();
        let out = rt.speculate(jobs).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(rt.interventions, 0, "speculation is free");
        let stats = rt.cache_stats();
        assert_eq!(stats.speculative, 8, "all eight scored by workers");
        // A later charged query of a speculated frame is a cache hit.
        rt.intervene(&frames[3]);
        assert_eq!(rt.interventions, 1);
        let stats = rt.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
    }

    #[test]
    fn serial_mode_materializes_without_scoring() {
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let factory = move || {
            let c = Arc::clone(&c2);
            move |_: &DataFrame| {
                c.fetch_add(1, Ordering::SeqCst);
                0.5
            }
        };
        let mut rt = ParOracle::new(&factory, 0.2, 100, 1);
        let jobs = vec![
            Speculation::Ready(df(&[1])),
            Speculation::Ready(df(&[2])),
            Speculation::Ready(df(&[3])),
        ];
        let out = rt.speculate(jobs).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            counter.load(Ordering::SeqCst),
            0,
            "serial speculation must not run the system"
        );
        assert_eq!(rt.cache_stats().speculative, 0);
    }

    #[test]
    fn par_oracle_matches_oracle_accounting() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        let base = df(&[1]);
        rt.baseline(&base);
        assert_eq!(rt.interventions, 0);
        rt.intervene(&base);
        assert_eq!(rt.interventions, 0, "baseline stays free forever");
        rt.intervene(&df(&[1, 2, 3]));
        rt.intervene(&df(&[1, 2, 3]));
        assert_eq!(rt.interventions, 2, "repeat queries are each charged");
        assert!(rt.passes(0.2) && !rt.passes(0.21));
        assert!(!rt.exhausted());
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 8] {
            let out = par_map((0..100).collect::<Vec<i32>>(), threads, |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
        }
    }
}
